"""Unit tests for the chaos layer: plans, the switchboard, hook sites.

The property tests in ``tests/properties/test_chaos_properties.py``
pin the determinism contract; these cover the plan's validation and
bookkeeping, the process-wide switchboard semantics, and that the WAL
and transport hook sites actually translate a firing point into the
documented failure (OSError, torn tail on disk, refused dial).
"""

import pytest

from repro.chaos import (
    DEFAULT_RATES,
    FAULT_POINTS,
    FaultPlan,
    InjectedFault,
)
from repro.chaos import points as chaos_points
from repro.durable import WriteAheadLog, read_wal
from repro.durable.records import BATCH


# ---------------------------------------------------------------- plan
class TestFaultPlan:
    def test_unknown_point_in_rates_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan(1, rates={"wal.write": 0.5, "nope": 0.1})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(1, rates={"net.send": 1.5})

    def test_bad_delay_range_rejected(self):
        with pytest.raises(ValueError, match="delay_range"):
            FaultPlan(1, delay_range=(0.5, 0.1))

    def test_fire_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan(1).fire("wal.nope")

    def test_default_rates_keep_storage_faults_opt_in(self):
        # WAL corruption and SIGKILL must never fire unless a drill
        # explicitly asks: they are not survivable-by-default faults.
        for point in ("wal.write", "wal.fsync", "wal.torn_tail",
                      "proc.kill"):
            assert DEFAULT_RATES[point] == 0.0
        plan = FaultPlan(3)
        assert all(
            plan.fire("wal.write") is None for _ in range(200)
        )

    def test_fired_fault_carries_point_index_action(self):
        plan = FaultPlan(5, rates={"net.send": 1.0})
        first = plan.fire("net.send")
        second = plan.fire("net.send")
        assert first == InjectedFault("net.send", 0, "reset", 0.0)
        assert second.index == 1
        assert plan.counts() == {"net.send": 2}
        assert plan.queries() == {"net.send": 2}

    def test_delay_faults_draw_seconds_in_range(self):
        plan = FaultPlan(
            7, rates={"net.delay": 1.0}, delay_range=(0.02, 0.04),
            max_per_point=None,
        )
        for _ in range(50):
            fault = plan.fire("net.delay")
            assert fault.action == "delay"
            assert 0.02 <= fault.seconds <= 0.04

    def test_non_delay_faults_have_zero_seconds(self):
        plan = FaultPlan(7, rates={"wal.fsync": 1.0})
        assert plan.fire("wal.fsync").seconds == 0.0

    def test_max_per_point_caps_fires_not_queries(self):
        plan = FaultPlan(
            9, rates={"proc.stall": 1.0}, max_per_point=3
        )
        fires = [plan.fire("proc.stall") for _ in range(10)]
        assert sum(f is not None for f in fires) == 3
        assert plan.queries() == {"proc.stall": 10}
        assert plan.counts() == {"proc.stall": 3}

    def test_describe_is_json_friendly_and_ordered(self):
        plan = FaultPlan(11, rates={"net.send": 1.0})
        plan.fire("net.send")
        desc = plan.describe()
        assert desc["seed"] == 11
        assert desc["rates"]["net.send"] == 1.0
        assert "wal.write" not in desc["rates"]  # zero rates elided
        assert desc["injected"] == [
            {"point": "net.send", "index": 0, "action": "reset",
             "seconds": 0.0}
        ]

    def test_every_point_has_a_default_rate(self):
        assert set(DEFAULT_RATES) == set(FAULT_POINTS)


# ---------------------------------------------------------- switchboard
class TestSwitchboard:
    def teardown_method(self):
        chaos_points.uninstall()

    def test_fire_is_noop_when_nothing_installed(self):
        assert chaos_points.active() is None
        assert chaos_points.fire("net.send") is None
        assert chaos_points.injected_counts() == {}

    def test_install_requires_a_plan(self):
        with pytest.raises(TypeError):
            chaos_points.install(object())

    def test_install_routes_fire_to_the_plan(self):
        plan = FaultPlan(13, rates={"net.send": 1.0})
        chaos_points.install(plan)
        assert chaos_points.active() is plan
        assert chaos_points.fire("net.send") is not None
        assert chaos_points.injected_counts() == {"net.send": 1}
        chaos_points.uninstall()
        assert chaos_points.fire("net.send") is None

    def test_installed_scope_restores_previous_plan(self):
        outer = FaultPlan(1)
        chaos_points.install(outer)
        inner = FaultPlan(2, rates={"net.send": 1.0})
        with chaos_points.installed(inner) as plan:
            assert plan is inner
            assert chaos_points.active() is inner
        assert chaos_points.active() is outer

    def test_installed_scope_uninstalls_when_none_before(self):
        with chaos_points.installed(FaultPlan(2)):
            assert chaos_points.active() is not None
        assert chaos_points.active() is None


# ----------------------------------------------------------- hook sites
class TestWalHooks:
    def test_injected_write_error_surfaces_as_oserror(self, tmp_path):
        plan = FaultPlan(17, rates={"wal.write": 1.0})
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            with chaos_points.installed(plan):
                with pytest.raises(OSError, match="chaos"):
                    wal.append(BATCH, b"payload")
            # Chaos off again: the log keeps working.
            wal.append(BATCH, b"payload")
            wal.sync()
        assert len(read_wal(tmp_path).records) == 1

    def test_injected_fsync_error_surfaces_as_oserror(self, tmp_path):
        plan = FaultPlan(19, rates={"wal.fsync": 1.0})
        wal = WriteAheadLog(tmp_path, fsync="always")
        try:
            with chaos_points.installed(plan):
                with pytest.raises(OSError, match="chaos"):
                    wal.append(BATCH, b"payload")
        finally:
            chaos_points.uninstall()
            try:
                wal.close()
            except OSError:
                pass

    def test_torn_tail_is_truncated_by_recovery(self, tmp_path):
        # Healthy prefix, then a torn append: the partial frame must
        # reach disk (that is the fault) and the next reader must
        # repair it away, leaving exactly the durable prefix.
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            for i in range(3):
                wal.append(BATCH, b"ok%d" % i)
            wal.sync()
            plan = FaultPlan(23, rates={"wal.torn_tail": 1.0})
            with chaos_points.installed(plan):
                with pytest.raises(OSError, match="torn"):
                    wal.append(BATCH, b"never-lands")
        scan = read_wal(tmp_path)
        assert scan.torn_tail
        payloads = [r.payload for r in scan.records]
        assert payloads == [b"ok0", b"ok1", b"ok2"]


class TestTransportHooks:
    def test_injected_dial_refusal_exhausts_retries(self):
        from repro.net.transport import connect

        plan = FaultPlan(29, rates={"net.connect": 1.0})
        with chaos_points.installed(plan):
            with pytest.raises(ConnectionError, match="chaos"):
                # The injected refusal fires before any real dial, so
                # no listener is needed; the short deadline bounds the
                # retry loop.
                connect(("127.0.0.1", 1), timeout=0.3)
        assert plan.counts()["net.connect"] >= 1
