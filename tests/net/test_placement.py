"""PlacementMap: the mutable shard→host table behind both pools."""

import pytest

from repro.net.placement import PlacementMap, shard_ranges


class TestShardRanges:
    def test_matches_worker_pool_split(self):
        from repro.workers.pool import shard_ranges as pool_ranges

        # One implementation: the pipe pool re-exports this function.
        assert pool_ranges is shard_ranges

    def test_contiguous_and_complete(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        covered = [s for lo, hi in ranges for s in range(lo, hi)]
        assert covered == list(range(10))

    def test_more_hosts_than_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(2, 3)


class TestPlacementMap:
    def test_seeded_contiguous(self):
        pm = PlacementMap(6, 2)
        assert pm.num_shards == 6
        assert pm.num_hosts == 2
        assert [pm.owner_of(s) for s in range(6)] == [0, 0, 0, 1, 1, 1]
        assert pm.shards_of(0) == [0, 1, 2]
        assert pm.describe() == [
            {"host": 0, "lo": 0, "hi": 3},
            {"host": 1, "lo": 3, "hi": 6},
        ]

    def test_move_returns_previous_owner(self):
        pm = PlacementMap(4, 2)
        assert pm.move(1, 1) == 0
        assert pm.owner_of(1) == 1
        assert pm.shards_of(0) == [0]
        assert pm.shards_of(1) == [1, 2, 3]

    def test_describe_collapses_runs_after_moves(self):
        pm = PlacementMap(4, 2)
        pm.move(0, 1)
        assert pm.describe() == [
            {"host": 1, "lo": 0, "hi": 1},
            {"host": 0, "lo": 1, "hi": 2},
            {"host": 1, "lo": 2, "hi": 4},
        ]

    def test_move_increments_epoch(self):
        pm = PlacementMap(4, 2)
        assert pm.epoch == 0
        pm.move(1, 1)
        assert pm.epoch == 1
        pm.move(2, 0)
        pm.move(3, 0)
        assert pm.epoch == 3

    def test_bounds_checked(self):
        pm = PlacementMap(4, 2)
        with pytest.raises(IndexError):
            pm.owner_of(4)
        with pytest.raises(IndexError):
            pm.owner_of(-1)
        with pytest.raises(IndexError):
            pm.move(0, 2)
        with pytest.raises(IndexError):
            pm.shards_of(5)
