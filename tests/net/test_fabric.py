"""End-to-end tests for the socket shard fabric.

The acceptance bar from ISSUE-6: the full pipeline over real sockets
produces truths bit-for-bit identical to the single-process path, a
shard can be re-homed between live hosts mid-stream without perturbing
a single bit, and teardown is idempotent and crash-safe.

Every fabric here is 2 shard-host subprocesses launched through the
real ``repro serve-shard`` CLI entrypoint (cold interpreter + NumPy
import each), so the streams are kept deliberately small.
"""

import os
import signal

import numpy as np
import pytest

from repro.service import IngestService, LoadGenerator, ServiceConfig


def make_service(hosts, *, num_shards=4, **overrides):
    defaults = dict(num_shards=num_shards, max_batch=256)
    defaults.update(overrides)
    return IngestService(ServiceConfig(**defaults), hosts=hosts)


def stream_campaigns(service, *, num_campaigns=3, claims=3000, seed=23,
                     midstream=None, **register_kwargs):
    """Stream identical bulk traffic; optionally call ``midstream`` at
    the halfway pump.  Returns campaign_id -> snapshot."""
    generators = []
    per_campaign = []
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"net-c{c}", num_users=30, num_objects=16, random_state=seed + c
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=30,
            user_ids=gen.user_ids,
            **register_kwargs,
        )
        generators.append(gen)
        per_campaign.append(
            list(
                gen.column_chunks(
                    max(claims // num_campaigns, 1), chunk_size=250
                )
            )
        )
    chunks = [c for group in zip(*per_campaign) for c in group]
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        if i % 3 == 2:
            service.pump()
        if midstream is not None and i == len(chunks) // 2:
            midstream(service)
            midstream = None
    service.flush()
    return {
        gen.campaign_id: service.snapshot(gen.campaign_id)
        for gen in generators
    }


def assert_snapshots_bitwise_equal(expected, got):
    for cid, snap in expected.items():
        other = got[cid]
        assert np.array_equal(snap.truths, other.truths)
        assert np.array_equal(snap.seen_objects, other.seen_objects)
        assert snap.weights_by_user == other.weights_by_user
        assert snap.claims_ingested == other.claims_ingested
        assert snap.batches_ingested == other.batches_ingested


@pytest.fixture(scope="module")
def single_process_snapshots():
    with IngestService(ServiceConfig(num_shards=4, max_batch=256)) as single:
        return stream_campaigns(single)


class TestBitwiseOverSockets:
    def test_two_hosts_match_single_process(self, single_process_snapshots):
        with make_service(2) as service:
            got = stream_campaigns(service)
            assert service.num_workers == 2
        assert_snapshots_bitwise_equal(single_process_snapshots, got)

    def test_rebalance_midstream_is_invisible(self, single_process_snapshots):
        """Re-home a live shard between hosts halfway through the
        stream: truths must stay bit-for-bit identical, and routing
        must follow the placement."""
        moves = {}

        def rebalance(service):
            placement = service.worker_pool.placement
            # Pick a shard that actually owns campaigns, so the move
            # ships state (an empty shard would be pure routing).
            shard_index = next(
                s
                for s in range(service.num_shards)
                for cid in service.campaign_ids
                if service.shard_of(cid) == s
            )
            source = placement.owner_of(shard_index)
            target = 1 - source
            moves["count"] = service.rebalance_shard(shard_index, target)
            moves["shard"] = shard_index
            moves["target"] = target

        with make_service(2) as service:
            got = stream_campaigns(service, midstream=rebalance)
            placement = service.worker_pool.placement
            assert placement.owner_of(moves["shard"]) == moves["target"]
            stats = service.fabric_stats()
        assert moves["count"] >= 1
        assert stats["workers"] == 2
        assert_snapshots_bitwise_equal(single_process_snapshots, got)

    def test_rebalance_to_current_owner_is_a_noop(self):
        with make_service(2, num_shards=2) as service:
            service.register_campaign("net-noop", ["o1", "o2"], max_users=5)
            shard = service.shard_of("net-noop")
            owner = service.worker_pool.placement.owner_of(shard)
            assert service.rebalance_shard(shard, owner) == 0


class TestFabricLifecycle:
    def test_workers_and_hosts_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            IngestService(ServiceConfig(), workers=1, hosts=1)

    def test_close_idempotent_and_ping(self):
        service = make_service(2, num_shards=2)
        rtt = service.worker_pool.ping(0)
        assert 0 < rtt < 5.0
        processes = [h.process for h in service.worker_pool.handles]
        service.close()
        for process in processes:
            assert process.exitcode == 0
        service.close()  # second close is a no-op

    def test_close_after_host_crash_does_not_raise(self):
        """ISSUE-6 satellite: close() must be safe after a crash —
        never raise, never hang on a dead host."""
        service = make_service(2, num_shards=2)
        victim = service.worker_pool.handles[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(10.0)
        service.close()
        service.close()
