"""Supervised failover: kill a shard host, recover bitwise.

ISSUE-6 satellite (c): kill a shard-host subprocess mid-stream and
assert the supervisor's restart-from-checkpoint replay yields truths
bitwise-equal to a run that never crashed — and that privacy budget
spent before the crash stays spent.
"""

import os
import signal

import numpy as np
import pytest

from repro.durable import records as rec
from repro.net.supervisor import JOURNALLED_TYPES, HostJournal, Supervisor
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.service import BudgetLedger, IngestService, ServiceConfig
from repro.workers import WorkerCrashedError
from repro.workers import protocol as proto

from test_fabric import assert_snapshots_bitwise_equal, stream_campaigns

COST = LDPGuarantee(epsilon=0.002, delta=0.0)


def make_budgeted_service(hosts, *, supervise=True):
    return IngestService(
        ServiceConfig(num_shards=4, max_batch=256),
        ledger=BudgetLedger(epsilon_cap=50.0, accountant=PrivacyAccountant()),
        hosts=hosts,
        supervise=supervise,
    )


class TestHostJournal:
    def test_register_unregister_track_specs(self):
        journal = HostJournal()
        spec = {"campaign_id": "c1", "num_users": 3, "num_objects": 2}
        journal.record(rec.REGISTER, rec.encode_json_payload(spec))
        assert journal.specs == {"c1": spec}
        journal.record(
            rec.UNREGISTER, rec.encode_json_payload({"campaign_id": "c1"})
        )
        assert journal.specs == {}
        assert len(journal.frames) == 2

    def test_batch_frames_count_claims(self):
        journal = HostJournal()
        item = rec.WorkItem(
            "c1",
            np.array([0, 1, 2], dtype=np.int64),
            np.array([0, 0, 1], dtype=np.int64),
            np.array([1.0, 2.0, 3.0]),
        )
        journal.record(rec.BATCH, item.to_bytes())
        assert journal.claims_since_capture == 3

    def test_capture_restarts_the_journal(self):
        journal = HostJournal()
        spec = {"campaign_id": "c1", "num_users": 3, "num_objects": 2}
        journal.record(rec.REGISTER, rec.encode_json_payload(spec))
        journal.capture({"c1": {"kind": "streaming"}})
        assert journal.captured["c1"][0] == spec
        assert journal.frames == []
        assert journal.claims_since_capture == 0
        assert journal.captures == 1
        # The registration itself lives in the capture now, not the
        # frame tail — replay must not register twice.

    def test_journalled_types_cover_state_changes(self):
        assert rec.REGISTER in JOURNALLED_TYPES
        assert rec.UNREGISTER in JOURNALLED_TYPES
        assert rec.BATCH in JOURNALLED_TYPES
        assert rec.REFRESH in JOURNALLED_TYPES
        assert proto.LOAD_STATE in JOURNALLED_TYPES
        # RPC requests and control frames are not replayed.
        assert proto.SNAPSHOT_REQ not in JOURNALLED_TYPES
        assert proto.SYNC_REQ not in JOURNALLED_TYPES

    def test_supervisor_rejects_silly_cadence(self):
        with pytest.raises(ValueError):
            Supervisor(None, checkpoint_every_claims=0)


def kill_owner_of(service, campaign_id):
    """SIGKILL the shard host owning ``campaign_id`` and reap it."""
    victim = service.worker_pool.handle_for(service.shard_of(campaign_id))
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(10.0)


class TestFailover:
    def test_kill_mid_stream_recovers_bitwise_and_budget_stays_spent(self):
        with make_budgeted_service(0) as baseline:
            expected = stream_campaigns(baseline, cost=COST)
            expected_spent = {
                user: baseline.ledger.spent(user).epsilon
                for user in ("user0", "user7", "user29")
            }

        crashed = {}

        def crash(service):
            crashed["spent_before"] = service.ledger.spent("user0").epsilon
            kill_owner_of(service, "net-c0")
            crashed["spent_after_kill"] = service.ledger.spent(
                "user0"
            ).epsilon

        with make_budgeted_service(2) as service:
            got = stream_campaigns(service, cost=COST, midstream=crash)
            stats = service.fabric_stats()["supervision"]
            final_spent = {
                user: service.ledger.spent(user).epsilon
                for user in expected_spent
            }

        # The crash was absorbed: exactly one restart, and the time it
        # took is on the record.
        assert stats["restarts"] == 1
        assert stats["last_failover_seconds"] > 0
        assert len(stats["failover_seconds"]) == 1
        # Budget charged before the crash was not refunded by recovery.
        assert crashed["spent_after_kill"] == crashed["spent_before"]
        assert crashed["spent_before"] > 0
        # End state: bitwise-identical truths AND identical ledgers.
        assert final_spent == expected_spent
        assert_snapshots_bitwise_equal(expected, got)

    def test_kill_after_checkpoint_replays_only_the_suffix(self):
        """With an aggressive checkpoint cadence the journal is
        captured mid-stream, so failover replays capture + suffix
        rather than the whole history — and is still bitwise-exact."""
        with IngestService(ServiceConfig(num_shards=4, max_batch=256)) \
                as baseline:
            expected = stream_campaigns(baseline)

        service = IngestService(
            ServiceConfig(num_shards=4, max_batch=256), hosts=2
        )
        service.worker_pool.supervisor.checkpoint_every_claims = 400
        try:
            got = stream_campaigns(
                service, midstream=lambda s: kill_owner_of(s, "net-c1")
            )
            stats = service.fabric_stats()["supervision"]
            # The cadence fired: more captures than the 2 the failover
            # itself takes (initial epoch is lazy; failover adds one).
            assert stats["restarts"] == 1
            assert stats["captures"] >= 2
        finally:
            service.close()
        assert_snapshots_bitwise_equal(expected, got)

    def test_snapshot_rpc_failover_retries(self):
        """A host dying right before the first read: the snapshot RPC
        fails over and retries against the replacement, transparently."""

        def run(crash):
            with IngestService(
                ServiceConfig(num_shards=2, max_batch=64), hosts=2
            ) as service:
                service.register_campaign(
                    "net-rpc", [f"o{i}" for i in range(6)], max_users=8
                )
                rng = np.random.default_rng(3)
                for _ in range(4):
                    service.submit_columns(
                        "net-rpc",
                        rng.integers(0, 8, 32),
                        rng.integers(0, 6, 32),
                        rng.normal(size=32),
                    )
                    service.pump()
                service.sync_workers()
                if crash:
                    kill_owner_of(service, "net-rpc")
                # First read: nothing cached, so this is a live RPC —
                # in the crash run it lands on a dead socket.
                snap = service.snapshot("net-rpc")
                restarts = service.fabric_stats()["supervision"]["restarts"]
            return snap, restarts

        expected, baseline_restarts = run(crash=False)
        got, crash_restarts = run(crash=True)
        assert baseline_restarts == 0
        assert crash_restarts == 1
        assert np.array_equal(expected.truths, got.truths)

    def test_host_loss_rehomes_bitwise_and_budget_stays_spent(self):
        """ISSUE-10 tentpole (a): when every respawn attempt is refused
        (``proc.spawn`` fault at rate 1.0), the supervisor declares the
        host lost and re-homes its shards onto the survivor from the
        journal — truths bitwise-equal to an uncrashed run, budget
        spent before the loss stays spent, placement epoch advanced."""
        from repro.chaos import DEFAULT_RATES, FaultPlan, install, uninstall

        with make_budgeted_service(0) as baseline:
            expected = stream_campaigns(baseline, cost=COST)
            expected_spent = {
                user: baseline.ledger.spent(user).epsilon
                for user in ("user0", "user7", "user29")
            }

        rates = {point: 0.0 for point in DEFAULT_RATES}
        rates["proc.spawn"] = 1.0
        install(FaultPlan(5, rates=rates))
        try:
            with make_budgeted_service(2) as service:
                got = stream_campaigns(
                    service,
                    cost=COST,
                    midstream=lambda s: kill_owner_of(s, "net-c0"),
                )
                stats = service.fabric_stats()["supervision"]
                placement_epoch = (
                    service.worker_pool.placement.epoch
                )
                final_spent = {
                    user: service.ledger.spent(user).epsilon
                    for user in expected_spent
                }
                metrics = service.metrics_snapshot()
        finally:
            uninstall()

        # The loss was permanent: no restart succeeded, every bounded
        # respawn attempt was burned, and exactly one rehome happened.
        assert stats["restarts"] == 0
        assert stats["rehomes"] == 1
        assert stats["respawn_retries"] == 4
        assert stats["hosts_lost"] == [
            stats["hosts_lost"][0]
        ]  # exactly one host on the casualty list
        assert stats["last_rehome_seconds"] > 0
        assert stats["rehome_seconds"] == [stats["last_rehome_seconds"]]
        # Both of the dead host's shards moved, each bumping the epoch.
        assert placement_epoch == 2
        assert stats["placement_epoch"] == 2
        # Budget charged before the loss was not refunded by the rehome.
        assert final_spent == expected_spent
        assert_snapshots_bitwise_equal(expected, got)
        # The degraded mode is on the telemetry surface (ISSUE-10
        # tentpole (c)): lost-host gauge, placement epoch, rehome
        # counters, and the rehome-duration histogram.
        assert metrics.value("repro_degraded_hosts") == 1
        assert metrics.value("repro_placement_epoch") == 2
        assert metrics.value("repro_fabric_rehomes_total") == 1
        assert metrics.value("repro_fabric_hosts_lost_total") == 1
        assert metrics.value("repro_fabric_restarts_total") == 0
        rehome_hist = metrics.histograms.get(
            ("repro_fabric_rehome_seconds", ())
        )
        assert rehome_hist is not None and rehome_hist["count"] == 1

    def test_rehome_with_no_survivors_raises(self):
        """A single-host fabric has nowhere to re-home: permanent loss
        must surface as WorkerCrashedError, not hang or heal."""
        from repro.chaos import DEFAULT_RATES, FaultPlan, install, uninstall

        rates = {point: 0.0 for point in DEFAULT_RATES}
        rates["proc.spawn"] = 1.0
        install(FaultPlan(5, rates=rates))
        try:
            with IngestService(
                ServiceConfig(num_shards=2, max_batch=64), hosts=1
            ) as service:
                service.register_campaign(
                    "net-lone", ["o1", "o2"], max_users=4
                )
                kill_owner_of(service, "net-lone")
                with pytest.raises(WorkerCrashedError):
                    for _ in range(50):
                        service.submit_columns(
                            "net-lone",
                            np.array([0, 1], dtype=np.int64),
                            np.array([0, 1], dtype=np.int64),
                            np.array([1.0, 2.0]),
                        )
                        service.pump()
                        service.sync_workers()
        finally:
            uninstall()

    def test_unsupervised_fabric_fails_fast(self):
        """supervise=False restores the pipe pool's contract: a dead
        host surfaces as WorkerCrashedError instead of healing."""
        with IngestService(
            ServiceConfig(num_shards=2, max_batch=64),
            hosts=2,
            supervise=False,
        ) as service:
            assert service.worker_pool.supervisor is None
            service.register_campaign("net-ff", ["o1", "o2"], max_users=4)
            kill_owner_of(service, "net-ff")
            with pytest.raises(WorkerCrashedError):
                for _ in range(50):
                    service.submit_columns(
                        "net-ff",
                        np.array([0, 1], dtype=np.int64),
                        np.array([0, 1], dtype=np.int64),
                        np.array([1.0, 2.0]),
                    )
                    service.pump()
                    service.sync_workers()
