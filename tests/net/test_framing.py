"""The shared frame decoder: exactness under arbitrary stream splits.

ISSUE-6 satellite: both the pipe path (``decode_frame``) and the socket
path (:class:`~repro.net.transport.SocketConnection`,
:class:`~repro.net.host.ShardHost`) decode through one
:class:`~repro.net.framing.FrameReader` — so this file is the single
place the framing contract is pinned down, including the property that
matters on a real socket: ``recv`` may split the byte stream anywhere,
and the decoded frame sequence must not depend on where.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.framing import FrameReader, FramingError
from repro.workers import protocol as proto


def encode_all(frames):
    return b"".join(proto.encode_frame(t, p) for t, p in frames)


class TestBasics:
    def test_single_frame(self):
        reader = FrameReader()
        assert reader.feed(proto.encode_frame(7, b"abc")) == [(7, b"abc")]
        assert reader.pending_bytes == 0
        assert reader.at_boundary

    def test_empty_payload(self):
        reader = FrameReader()
        assert reader.feed(proto.encode_frame(40, b"")) == [(40, b"")]

    def test_many_frames_one_chunk(self):
        frames = [(1, b"x"), (5, b"y" * 100), (32, b""), (255, b"z")]
        reader = FrameReader()
        assert reader.feed(encode_all(frames)) == frames

    def test_byte_at_a_time(self):
        frames = [(2, b"hello"), (3, b""), (4, b"\x00" * 17)]
        wire = encode_all(frames)
        reader = FrameReader()
        out = []
        for i in range(len(wire)):
            out.extend(reader.feed(wire[i:i + 1]))
        assert out == frames
        assert reader.at_boundary

    def test_partial_tail_is_silent_but_visible(self):
        wire = encode_all([(9, b"done")]) + proto.encode_frame(9, b"cut")[:-2]
        reader = FrameReader()
        assert reader.feed(wire) == [(9, b"done")]
        assert reader.pending_bytes > 0
        assert not reader.at_boundary

    def test_zero_length_header_rejected(self):
        # length must cover at least the type byte
        reader = FrameReader()
        with pytest.raises(FramingError):
            reader.feed(b"\x00\x00\x00\x00\x01")

    def test_oversized_header_rejected(self):
        reader = FrameReader()
        huge = ((1 << 30) + 1).to_bytes(4, "little") + b"\x05"
        with pytest.raises(FramingError):
            reader.feed(huge)

    def test_decode_frame_rejects_trailing_garbage(self):
        blob = proto.encode_frame(5, b"ok") + b"xx"
        with pytest.raises(proto.ProtocolError):
            proto.decode_frame(blob)

    def test_decode_frame_rejects_truncation(self):
        blob = proto.encode_frame(5, b"chopped")[:-3]
        with pytest.raises(proto.ProtocolError):
            proto.decode_frame(blob)


frames_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=255),
        st.binary(max_size=300),
    ),
    min_size=1,
    max_size=8,
)


class TestSplitInvariance:
    @given(frames=frames_strategy, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_any_split_decodes_identically(self, frames, data):
        """The decoded sequence is independent of chunk boundaries."""
        wire = encode_all(frames)
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(wire)),
                    max_size=12,
                )
            )
        )
        reader = FrameReader()
        out = []
        last = 0
        for cut in cuts + [len(wire)]:
            out.extend(reader.feed(wire[last:cut]))
            last = cut
        assert out == frames
        assert reader.pending_bytes == 0
        assert reader.at_boundary

    @given(frames=frames_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncated_tail_never_corrupts_prefix(self, frames, data):
        """Cutting the stream anywhere yields exactly the complete
        prefix frames, and the reader reports the leftover bytes."""
        wire = encode_all(frames)
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        reader = FrameReader()
        out = reader.feed(wire[:cut])
        # Complete frames before the cut decode; nothing else appears.
        expected = []
        consumed = 0
        for rtype, payload in frames:
            end = consumed + len(proto.encode_frame(rtype, payload))
            if end <= cut:
                expected.append((rtype, payload))
                consumed = end
            else:
                break
        assert out == expected
        assert reader.pending_bytes == cut - consumed
        assert reader.at_boundary == (cut == consumed)
        # Feeding the remainder always completes the stream.
        out.extend(reader.feed(wire[cut:]))
        assert out == frames
        assert reader.at_boundary
