"""SocketListener / SocketConnection: the mp.Connection surface on TCP."""

import socket
import threading

import pytest

from repro.net.framing import FramingError
from repro.net.transport import SocketListener, connect
from repro.workers import protocol as proto


@pytest.fixture
def pair():
    """An accepted (server_conn, client_conn) pair on localhost."""
    with SocketListener() as listener:
        result = {}

        def dial():
            result["client"] = connect(listener.address, timeout=10.0)

        t = threading.Thread(target=dial)
        t.start()
        server = listener.accept(timeout=10.0)
        t.join(10.0)
        client = result["client"]
        try:
            yield server, client
        finally:
            server.close()
            client.close()


class TestRoundTrip:
    def test_frames_both_directions(self, pair):
        server, client = pair
        client.send_bytes(proto.encode_frame(5, b"to-server"))
        assert server.poll(5.0)
        assert proto.recv_frame(server) == (5, b"to-server")
        server.send_bytes(proto.encode_frame(33, b"to-client"))
        assert proto.recv_frame(client) == (33, b"to-client")

    def test_large_frame_survives_partial_sends(self, pair):
        server, client = pair
        payload = bytes(range(256)) * 16384  # 4 MiB: many recv chunks
        # Send from a thread: a frame this size overflows the kernel
        # socket buffers, so the sender blocks until the receiver
        # drains — which is exactly the partial-send path under test.
        sender = threading.Thread(
            target=client.send_bytes,
            args=(proto.encode_frame(35, payload),),
        )
        sender.start()
        try:
            rtype, got = proto.recv_frame(server)
        finally:
            sender.join(30.0)
        assert rtype == 35
        assert got == payload

    def test_many_small_frames_coalesced(self, pair):
        server, client = pair
        frames = [(i % 250 + 1, bytes([i % 251])) for i in range(200)]
        blob = b"".join(proto.encode_frame(t, p) for t, p in frames)
        client.send_bytes(blob)
        got = [proto.recv_frame(server) for _ in frames]
        assert got == frames

    def test_poll_zero_without_data(self, pair):
        server, _client = pair
        assert not server.poll(0)

    def test_poll_sees_buffered_frame_without_new_bytes(self, pair):
        server, client = pair
        client.send_bytes(
            proto.encode_frame(1, b"a") + proto.encode_frame(2, b"b")
        )
        assert server.poll(5.0)
        assert proto.recv_frame(server) == (1, b"a")
        # The second frame is already buffered; poll must not block on
        # the (now idle) socket.
        assert server.poll(0)
        assert proto.recv_frame(server) == (2, b"b")


class TestEdges:
    def test_clean_close_raises_eof(self, pair):
        server, client = pair
        client.close()
        with pytest.raises(EOFError):
            server.recv_frame()

    def test_poll_true_at_eof(self, pair):
        server, client = pair
        client.close()
        assert server.poll(5.0)  # EOF is a readable event

    def test_close_mid_frame_raises_framing_error(self):
        with SocketListener() as listener:
            raw = socket.create_connection(listener.address, timeout=10.0)
            server = listener.accept(timeout=10.0)
            try:
                raw.sendall(proto.encode_frame(5, b"payload")[:3])
            finally:
                raw.close()
            with pytest.raises(FramingError):
                server.recv_frame()
            server.close()

    def test_connect_refused_after_deadline(self):
        # Grab a port and close it so nothing listens there.
        probe = SocketListener()
        address = probe.address
        probe.close()
        with pytest.raises(ConnectionError):
            connect(address, timeout=0.3)

    def test_close_idempotent(self, pair):
        server, client = pair
        server.close()
        server.close()
        assert server.closed
        client.close()
        client.close()

    def test_send_after_peer_close_raises_broken_pipe(self, pair):
        server, client = pair
        server.close()
        with pytest.raises((BrokenPipeError, ConnectionError)):
            # The first send may land in kernel buffers; keep writing
            # until the RST surfaces.
            for _ in range(64):
                client.send_bytes(proto.encode_frame(5, b"x" * 65536))
