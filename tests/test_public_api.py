"""Public-API contract tests.

Guards the import surface a downstream user relies on: every ``__all__``
name must resolve, carry a docstring, and the headline workflow from the
README must work verbatim.
"""

import importlib
import inspect

import numpy as np
import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.crowdsensing",
    "repro.datasets",
    "repro.durable",
    "repro.experiments",
    "repro.metrics",
    "repro.privacy",
    "repro.service",
    "repro.theory",
    "repro.truthdiscovery",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert undocumented == [], (
        f"{module_name} exports without docstrings: {undocumented}"
    )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_workflow():
    from repro import PrivateTruthDiscovery
    from repro.datasets import generate_synthetic

    dataset = generate_synthetic(
        num_users=150, num_objects=30, lambda1=4.0, random_state=7
    )
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=0.5)
    evaluation = pipeline.evaluate_utility(dataset.claims, random_state=7)
    assert evaluation.mae < 0.2
    assert 0.5 < evaluation.average_absolute_noise < 2.0
    assert "mae=" in evaluation.summary()


def test_readme_privacy_first_workflow():
    from repro import PrivateTruthDiscovery
    from repro.datasets import generate_synthetic

    dataset = generate_synthetic(
        num_users=50, num_objects=10, lambda1=4.0, random_state=7
    )
    pipeline = PrivateTruthDiscovery.for_privacy_target(
        epsilon=1.0, delta=0.3, sensitivity=1.0
    )
    outcome = pipeline.run(dataset.claims, random_state=7)
    assert outcome.guarantee.epsilon == pytest.approx(1.0)
    assert outcome.guarantee.delta == 0.3


def test_module_docstring_quickstart_runs():
    """The doctest-style example in repro/__init__.py must stay true."""
    from repro import ClaimMatrix, PrivateTruthDiscovery

    rng = np.random.default_rng(7)
    claims = ClaimMatrix(rng.normal(20.0, 2.0, size=(50, 12)))
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
    outcome = pipeline.run(claims, random_state=7)
    assert outcome.truths.shape == (12,)
