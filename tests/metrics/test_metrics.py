"""Tests for accuracy metrics, weight comparison, and empirical privacy."""

import math

import numpy as np
import pytest

from repro.metrics.accuracy import (
    AccuracyReport,
    mae,
    max_abs_error,
    relative_mae,
    rmse,
)
from repro.metrics.empirical_privacy import (
    distinguishing_advantage,
    empirical_epsilon,
)
from repro.metrics.weights import (
    WeightComparison,
    true_weights,
    weight_rank_agreement,
)
from repro.privacy.mechanisms import (
    ExponentialVarianceGaussianMechanism,
    FixedGaussianMechanism,
    NullMechanism,
)
from repro.truthdiscovery.crh import CRH


class TestAccuracy:
    def test_mae_exact(self):
        assert mae(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 1.5

    def test_rmse_exact(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            math.sqrt(12.5)
        )

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 5.0])) == 3.0

    def test_relative_mae(self):
        assert relative_mae(np.array([2.0, 2.0]), np.array([3.0, 3.0])) == 0.5

    def test_identical_vectors_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert mae(v, v) == 0.0
        assert rmse(v, v) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros(2), np.zeros(3))

    def test_rmse_at_least_mae(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert rmse(a, b) >= mae(a, b)

    def test_report_compare(self):
        report = AccuracyReport.compare(
            np.array([1.0, 2.0]), np.array([1.5, 2.5])
        )
        assert report.mae == 0.5
        assert report.max_abs_error == 0.5
        assert "MAE" in str(report)


class TestWeights:
    def test_true_weights_normalised(self, graded_quality_dataset):
        w = true_weights(
            CRH(),
            graded_quality_dataset.claims,
            graded_quality_dataset.ground_truth,
        )
        assert w.mean() == pytest.approx(1.0)

    def test_true_weights_order_matches_quality(self, graded_quality_dataset):
        w = true_weights(
            CRH(),
            graded_quality_dataset.claims,
            graded_quality_dataset.ground_truth,
        )
        # variances increase with index; true weights must trend down
        assert w[:3].mean() > w[-3:].mean()

    def test_true_weights_shape_validated(self, graded_quality_dataset):
        with pytest.raises(ValueError):
            true_weights(
                CRH(), graded_quality_dataset.claims, np.zeros(3)
            )

    def test_comparison_perfect_correlation(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        cmp = WeightComparison.compare(w, w * 2.0)
        assert cmp.pearson == pytest.approx(1.0)
        assert cmp.spearman == pytest.approx(1.0)

    def test_comparison_anti_correlation(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        cmp = WeightComparison.compare(w, -w)
        assert cmp.pearson == pytest.approx(-1.0)

    def test_comparison_constant_input(self):
        cmp = WeightComparison.compare(np.ones(5), np.arange(5.0))
        assert cmp.pearson == 0.0

    def test_comparison_needs_two(self):
        with pytest.raises(ValueError):
            WeightComparison.compare(np.ones(1), np.ones(1))

    def test_rank_agreement_perfect(self):
        w = np.arange(20.0)
        assert weight_rank_agreement(w, w, top_k=5) == 1.0

    def test_rank_agreement_disjoint(self):
        est = np.arange(20.0)
        true = -np.arange(20.0)
        assert weight_rank_agreement(est, true, top_k=5) == 0.0

    def test_rank_agreement_k_capped(self):
        w = np.arange(3.0)
        assert weight_rank_agreement(w, w, top_k=10) == 1.0


class TestEmpiricalPrivacy:
    def test_null_mechanism_fully_distinguishable(self):
        adv = distinguishing_advantage(
            NullMechanism(), 0.0, 1.0, num_samples=500, random_state=0
        )
        assert adv == pytest.approx(1.0)

    def test_noise_reduces_advantage(self):
        quiet = FixedGaussianMechanism(variance=0.001)
        loud = FixedGaussianMechanism(variance=25.0)
        adv_quiet = distinguishing_advantage(
            quiet, 0.0, 1.0, num_samples=2000, random_state=0
        )
        adv_loud = distinguishing_advantage(
            loud, 0.0, 1.0, num_samples=2000, random_state=0
        )
        assert adv_loud < adv_quiet
        assert adv_loud < 0.65

    def test_empirical_epsilon_bounded_by_theory(self):
        # Fixed Gaussian with variance y: density-ratio bound inside the
        # bulk is eps = Delta^2/(2y) + interval slack; the empirical scan
        # should land in that ballpark, not far above.
        y, delta_gap = 4.0, 1.0
        mech = FixedGaussianMechanism(variance=y)
        est = empirical_epsilon(
            mech, 0.0, delta_gap, num_samples=8000, random_state=0
        )
        assert est.epsilon < 1.5  # theory: bulk ratio ~ Delta^2/2y = 0.125

    def test_empirical_epsilon_grows_with_separation(self):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        near = empirical_epsilon(mech, 0.0, 0.2, num_samples=4000, random_state=0)
        far = empirical_epsilon(mech, 0.0, 5.0, num_samples=4000, random_state=0)
        assert far.epsilon > near.epsilon

    def test_excluded_mass_reported(self):
        mech = FixedGaussianMechanism(variance=1.0)
        est = empirical_epsilon(mech, 0.0, 1.0, num_samples=2000, random_state=0)
        assert 0.0 <= est.excluded_mass <= 1.0

    def test_validation(self):
        mech = NullMechanism()
        with pytest.raises(ValueError):
            empirical_epsilon(mech, 0.0, 1.0, num_samples=10)
