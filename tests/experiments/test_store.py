"""Tests for the experiment result store and CLI save/show."""

import json

import pytest

from repro.cli import main
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.store import (
    ResultStore,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    save_figure,
)


@pytest.fixture
def figure():
    return FigureResult(
        figure_id="figX",
        title="Saved Figure",
        panels=(
            Panel(
                title="p1",
                x_label="x",
                y_label="y",
                series=(
                    Series(label="a", x=(1.0, 2.0), y=(3.0, 4.0)),
                    Series(label="b", x=(1.0, 2.0), y=(5.0, 6.0)),
                ),
            ),
        ),
        metadata={"trials": 3, "note": "hello", "nested": {"k": (1, 2)}},
    )


class TestSerialization:
    def test_round_trip(self, figure):
        rebuilt = figure_from_dict(figure_to_dict(figure))
        assert rebuilt.figure_id == figure.figure_id
        assert rebuilt.title == figure.title
        assert rebuilt.panel("p1").series_by_label("a").y == (3.0, 4.0)
        assert rebuilt.metadata["trials"] == 3

    def test_dict_is_json_compatible(self, figure):
        json.dumps(figure_to_dict(figure))  # must not raise

    def test_non_jsonable_metadata_stringified(self):
        fig = FigureResult(
            figure_id="f",
            title="t",
            panels=(
                Panel(
                    title="p",
                    x_label="x",
                    y_label="y",
                    series=(Series(label="s", x=(1.0,), y=(1.0,)),),
                ),
            ),
            metadata={"obj": object()},
        )
        payload = figure_to_dict(fig)
        assert isinstance(payload["metadata"]["obj"], str)

    def test_schema_version_checked(self, figure):
        payload = figure_to_dict(figure)
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            figure_from_dict(payload)

    def test_file_round_trip(self, figure, tmp_path):
        path = save_figure(figure, tmp_path / "sub" / "fig.json")
        assert path.exists()
        loaded = load_figure(path)
        assert loaded.figure_id == "figX"


class TestResultStore:
    def test_put_get_list(self, figure, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(figure)
        assert store.list() == ["figX"]
        assert "figX" in store
        loaded = store.get("figX")
        assert loaded.title == "Saved Figure"

    def test_get_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyError, match="no saved result"):
            store.get("nope")

    def test_put_overwrites(self, figure, tmp_path):
        store = ResultStore(tmp_path)
        store.put(figure)
        updated = FigureResult(
            figure_id="figX",
            title="Updated",
            panels=figure.panels,
        )
        store.put(updated)
        assert store.get("figX").title == "Updated"

    def test_invalid_id_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store._path("../escape")


class TestCliIntegration:
    def test_run_with_save_then_show(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.runner as runner_mod
        from repro.experiments.runner import Profile

        tiny = Profile(
            name="quick", num_trials=2, grid_points=3, num_users=24, num_objects=8
        )
        monkeypatch.setitem(runner_mod._PROFILES, "quick", tiny)
        store_dir = str(tmp_path / "store")
        assert main(["run", "fig3", "--save", store_dir]) == 0
        capsys.readouterr()
        assert main(["show", "fig3", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "legend" in out

    def test_show_missing_result(self, tmp_path, capsys):
        assert main(["show", "fig2", "--store", str(tmp_path)]) == 2
        assert "no saved result" in capsys.readouterr().err
