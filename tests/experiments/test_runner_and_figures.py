"""Tests for the experiment runner and the per-figure experiments.

Figure experiments run under a tiny ad-hoc profile so the whole module
stays fast; shape assertions mirror the qualitative claims the paper
makes about each figure (the benchmarks run the real profiles).
"""

import numpy as np
import pytest

from repro.core.mechanism import PrivateTruthDiscovery
from repro.experiments import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6, fig7, fig8
from repro.experiments.figures.common import check_tradeoff_shape
from repro.experiments.runner import (
    FULL,
    QUICK,
    Profile,
    TrialStats,
    epsilon_grid,
    get_profile,
    measure_utility,
    sweep,
)

TINY = Profile(name="quick", num_trials=2, grid_points=3, num_users=30, num_objects=8)


class TestProfile:
    def test_lookup(self):
        assert get_profile("quick") is QUICK
        assert get_profile("full") is FULL
        assert get_profile(TINY) is TINY

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_profile("huge")

    def test_validation(self):
        with pytest.raises(ValueError):
            Profile(name="bad", num_trials=0, grid_points=3, num_users=5, num_objects=5)


class TestTrialStats:
    def test_from_values(self):
        stats = TrialStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialStats.from_values([])


class TestMeasureUtility:
    def test_statistics_collected(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        point = measure_utility(
            synthetic_dataset.claims, pipeline, num_trials=3, base_seed=0
        )
        assert point.mae.count == 3
        assert point.noise.mean > 0
        assert point.rmse.mean >= point.mae.mean

    def test_deterministic(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        a = measure_utility(
            synthetic_dataset.claims, pipeline, num_trials=2, base_seed=1
        )
        b = measure_utility(
            synthetic_dataset.claims, pipeline, num_trials=2, base_seed=1
        )
        assert a.mae.mean == b.mae.mean

    def test_label_changes_seeds(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        a = measure_utility(
            synthetic_dataset.claims, pipeline, num_trials=2, base_seed=1, label="x"
        )
        b = measure_utility(
            synthetic_dataset.claims, pipeline, num_trials=2, base_seed=1, label="y"
        )
        assert a.mae.mean != b.mae.mean


class TestSweepHelpers:
    def test_sweep(self):
        xs, ys = sweep([1, 2, 3], lambda v: (v, v * v))
        assert xs == (1.0, 2.0, 3.0)
        assert ys == (1.0, 4.0, 9.0)

    def test_epsilon_grid(self):
        grid = epsilon_grid(TINY)
        assert len(grid) == TINY.grid_points
        assert grid[0] == pytest.approx(0.25)
        assert grid[-1] == pytest.approx(3.0)


class TestRegistry:
    def test_all_figures_present(self):
        names = available_experiments()
        for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert fig in names
        assert "ablation-methods" in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")


class TestFig2:
    def test_structure_and_shape(self):
        result = fig2.run(TINY, base_seed=11)
        assert result.figure_id == "fig2"
        assert len(result.panels) == 2
        assert len(result.panels[0].series) == 4  # four deltas
        problems = check_tradeoff_shape(result)
        assert problems == [], problems

    def test_delta_ordering_of_noise(self):
        # At fixed epsilon, larger delta allows smaller noise.
        result = fig2.run(TINY, base_seed=11)
        noise = result.panel("(b) Average of Added Noise")
        first_x = {
            s.label: s.y[0] for s in noise.series
        }
        assert first_x["delta=0.2"] > first_x["delta=0.5"]


class TestFig3:
    def test_both_panels_decrease(self):
        result = fig3.run(TINY, base_seed=11)
        noise = result.panel("(b) Average of Added Noise").series[0].y
        mae = result.panel("(a) MAE").series[0].y
        # noise strictly decreases with lambda1 (deterministic mapping)
        assert all(a > b for a, b in zip(noise, noise[1:]))
        # MAE trends down end-to-end (stochastic, so endpoint comparison)
        assert mae[-1] < mae[0]


class TestFig4:
    def test_noise_flat_and_mae_falls(self):
        result = fig4.run(TINY, base_seed=11)
        noise = result.panel("(b) Average of Added Noise").series[0].y
        mae = result.panel("(a) MAE").series[0].y
        spread = (max(noise) - min(noise)) / np.mean(noise)
        assert spread < 0.35  # flat in S up to sampling noise
        assert mae[-1] < mae[0]  # more users help utility


class TestFig5:
    def test_gtm_same_shape(self):
        result = fig5.run(TINY, base_seed=11)
        assert result.figure_id == "fig5"
        assert result.metadata["method"] == "gtm"
        problems = check_tradeoff_shape(result)
        assert problems == [], problems


class TestFig6:
    def test_floorplan_tradeoff(self):
        result = fig6.run(TINY, base_seed=11)
        assert result.figure_id == "fig6"
        problems = check_tradeoff_shape(result)
        assert problems == [], problems


class TestFig7:
    def test_panels_and_correlations(self):
        result = fig7.run(TINY, base_seed=11)
        assert len(result.panels) == 2
        for panel in result.panels:
            assert {s.label for s in panel.series} == {"true", "estimated"}
            assert len(panel.series[0].x) == 7
        # estimated weights track true weights on the full population
        assert float(result.metadata["pearson_original"]) > 0.5
        assert float(result.metadata["pearson_perturbed"]) > 0.5

    def test_noisiest_user_downweighted(self):
        result = fig7.run(TINY, base_seed=11)
        w_orig = float(result.metadata["noisiest_user_weight_original"])
        w_pert = float(result.metadata["noisiest_user_weight_perturbed"])
        assert w_pert < w_orig


class TestFig8:
    def test_two_series_present(self):
        result = fig8.run(TINY, base_seed=11)
        panel = result.panels[0]
        labels = {s.label for s in panel.series}
        assert labels == {"perturbed", "original (baseline)"}

    def test_time_roughly_flat_in_noise(self):
        result = fig8.run(TINY, base_seed=11)
        times = result.panels[0].series_by_label("perturbed").y
        assert max(times) < 20 * max(min(times), 1e-6)


class TestRunExperimentDispatch:
    def test_run_by_name(self):
        result = run_experiment("fig3", TINY, base_seed=5)
        assert result.figure_id == "fig3"

    def test_every_registered_experiment_runs(self):
        for name in EXPERIMENTS:
            result = run_experiment(name, TINY, base_seed=5)
            assert result.panels
