"""Tests for experiment result containers, ASCII plotting, and reporting."""

import pytest

from repro.experiments.plotting import ascii_chart, sparkline
from repro.experiments.reporting import (
    figure_markdown,
    format_table,
    panel_table,
)
from repro.experiments.results import FigureResult, Panel, Series


@pytest.fixture
def panel():
    return Panel(
        title="test",
        x_label="x",
        y_label="y",
        series=(
            Series(label="a", x=(1.0, 2.0, 3.0), y=(1.0, 4.0, 9.0)),
            Series(label="b", x=(1.0, 2.0, 3.0), y=(2.0, 3.0, 4.0)),
        ),
    )


@pytest.fixture
def figure(panel):
    return FigureResult(
        figure_id="figX",
        title="Test Figure",
        panels=(panel,),
        metadata={"note": "unit-test"},
    )


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="x values"):
            Series(label="s", x=(1.0,), y=(1.0, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Series(label="s", x=(), y=())

    def test_values_coerced_to_float(self):
        s = Series(label="s", x=(1,), y=(2,))
        assert isinstance(s.x[0], float)


class TestPanel:
    def test_duplicate_labels_rejected(self):
        s = Series(label="a", x=(1.0,), y=(1.0,))
        with pytest.raises(ValueError, match="duplicate"):
            Panel(title="p", x_label="x", y_label="y", series=(s, s))

    def test_series_by_label(self, panel):
        assert panel.series_by_label("a").y == (1.0, 4.0, 9.0)
        with pytest.raises(KeyError):
            panel.series_by_label("zzz")

    def test_no_series_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            Panel(title="p", x_label="x", y_label="y", series=())


class TestFigureResult:
    def test_panel_lookup(self, figure):
        assert figure.panel("test").title == "test"
        with pytest.raises(KeyError):
            figure.panel("missing")

    def test_to_rows(self, figure):
        rows = figure.to_rows()
        assert len(rows) == 6  # 2 series x 3 points
        assert rows[0]["figure"] == "figX"
        assert rows[0]["x"] == 1.0

    def test_render_contains_everything(self, figure):
        text = figure.render()
        assert "figX" in text
        assert "unit-test" in text
        assert "legend" in text

    def test_empty_panels_rejected(self):
        with pytest.raises(ValueError):
            FigureResult(figure_id="f", title="t", panels=())


class TestAsciiChart:
    def test_contains_markers_and_labels(self, panel):
        chart = ascii_chart(panel, width=40, height=10)
        assert "o" in chart and "x" in chart
        assert "x: x" in chart
        assert "legend" in chart

    def test_handles_constant_series(self):
        p = Panel(
            title="flat",
            x_label="x",
            y_label="y",
            series=(Series(label="c", x=(1.0, 2.0), y=(5.0, 5.0)),),
        )
        chart = ascii_chart(p)
        assert "o" in chart

    def test_size_validation(self, panel):
        with pytest.raises(ValueError):
            ascii_chart(panel, width=5, height=10)

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert sparkline([]) == ""
        assert len(set(sparkline([2, 2, 2]))) == 1


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "longer"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        table = format_table(rows)
        assert "a" in table and "b" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_panel_table_wide_format(self, panel):
        table = panel_table(panel)
        assert "a" in table and "b" in table
        assert "1" in table and "9" in table

    def test_figure_markdown(self, figure):
        md = figure_markdown(figure)
        assert "### figX" in md
        assert "| x | a | b |" in md
        assert "unit-test" in md
