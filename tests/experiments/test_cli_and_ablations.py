"""Tests for the CLI and the ablation experiments."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablations import (
    mechanisms_ablation,
    methods_ablation,
    scaling_experiment,
)
from repro.experiments.runner import Profile

TINY = Profile(name="quick", num_trials=2, grid_points=3, num_users=24, num_objects=8)


class TestAblations:
    def test_methods_ablation_structure(self):
        result = methods_ablation(TINY, base_seed=3)
        labels = {s.label for s in result.panels[0].series}
        assert {"crh", "gtm", "catd", "mean", "median"} <= labels

    def test_weighted_beats_mean_under_adversaries(self):
        result = methods_ablation(TINY, base_seed=3, adversary_fraction=0.25)
        panel = result.panels[0]
        crh = panel.series_by_label("crh").y
        mean = panel.series_by_label("mean").y
        # averaged across the noise grid, CRH should beat plain averaging
        assert sum(crh) < sum(mean)

    def test_mechanisms_ablation_structure(self):
        result = mechanisms_ablation(TINY, base_seed=3)
        labels = {s.label for s in result.panels[0].series}
        assert labels == {"exp-gaussian", "fixed-gaussian", "laplace"}

    def test_scaling_monotone(self):
        result = scaling_experiment(TINY, base_seed=3)
        times = result.panels[0].series[0].y
        # larger problems cannot be systematically faster end-to-end
        assert times[-1] > times[0] * 0.5


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig8" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_service_bench_quick(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        code = main(
            [
                "service-bench",
                "--claims", "20000",
                "--submission-claims", "4000",
                "--baseline-claims", "2000",
                "--read-claims", "10000",
                "--output", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bulk path:" in out and "claims/s" in out
        assert "streaming vs batch crh RMSE" in out
        assert "read path [gtm]" in out
        import json

        report = json.loads(out_json.read_text())
        assert report["bulk"]["claims"] > 0
        assert report["streaming_vs_batch_rmse"] < 1e-3
        for method in ("crh", "gtm", "catd"):
            section = report["methods"][method]
            assert section["streaming_vs_batch_rmse"] < 1e-3
            assert section["streaming"]["claims"] == 10000
            # The >=10x claim is asserted by the regression gate on the
            # committed full-size report; here only sanity-check shape
            # (tiny workloads make timing ratios noisy).
            assert section["read_speedup_final"] > 0.0
            assert section["full"]["reads"] == section["streaming"]["reads"]

    def test_durable_bench_smoke(self, capsys, tmp_path):
        out_json = tmp_path / "durable.json"
        code = main(
            ["durable-bench", "--smoke", "--output", str(out_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "durability benchmark" in out
        assert "fsync=batch" in out
        import json

        report = json.loads(out_json.read_text())
        assert report["unlogged"]["claims"] > 0
        assert report["recovery"]["replay_only"]["truths_match_bitwise"]
        assert report["recovery"]["checkpointed"]["truths_match_bitwise"]

    def test_recover_command(self, capsys, tmp_path):
        import numpy as np

        from repro.durable import DurabilityManager
        from repro.service.ingest import IngestService, ServiceConfig

        wal_dir = tmp_path / "wal"
        manager = DurabilityManager(wal_dir)
        service = IngestService(
            ServiceConfig(num_shards=1, max_batch=32), durability=manager
        )
        service.register_campaign("cli-c0", ["a", "b"], max_users=4)
        rng = np.random.default_rng(0)
        service.submit_columns(
            "cli-c0",
            rng.integers(0, 4, size=64),
            rng.integers(0, 2, size=64),
            rng.normal(size=64),
        )
        service.flush()
        manager.close()

        out_json = tmp_path / "report.json"
        code = main(
            [
                "recover", str(wal_dir),
                "--campaign", "cli-c0",
                "--output", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered 1 campaign(s)" in out
        assert "campaign cli-c0" in out
        import json

        report = json.loads(out_json.read_text())
        assert report["claims_replayed"] == 64

    def test_recover_missing_directory_errors(self, capsys, tmp_path):
        code = main(["recover", str(tmp_path / "absent")])
        assert code == 2
        assert "no durability directory" in capsys.readouterr().err

    def test_recover_corrupt_log_errors_cleanly(self, capsys, tmp_path):
        # Mid-log damage must exit 2 with a message, not a traceback.
        from repro.durable import records as rec
        from repro.durable.wal import WriteAheadLog, list_segments

        with WriteAheadLog(tmp_path, max_segment_bytes=128) as wal:
            for i in range(6):
                wal.append(
                    rec.REFRESH,
                    rec.encode_json_payload({"campaign_id": f"c{i}"}),
                )
        first = list_segments(tmp_path)[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF
        first.write_bytes(bytes(data))
        code = main(["recover", str(tmp_path)])
        assert code == 2
        assert "corrupt frame mid-log" in capsys.readouterr().err

    def test_run_fig3_quick(self, capsys, monkeypatch):
        # Patch the quick profile lookup to the tiny one to keep CI fast.
        import repro.experiments.runner as runner_mod

        monkeypatch.setitem(runner_mod._PROFILES, "quick", TINY)
        assert main(["run", "fig3", "--profile", "quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "legend" in out

    def test_run_markdown_output(self, capsys, monkeypatch):
        import repro.experiments.runner as runner_mod

        monkeypatch.setitem(runner_mod._PROFILES, "quick", TINY)
        assert main(["run", "fig3", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "### fig3" in out
        assert "|" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verbose_flag(self, capsys, monkeypatch):
        import logging

        import repro.experiments.runner as runner_mod

        monkeypatch.setitem(runner_mod._PROFILES, "quick", TINY)
        assert main(["-v", "run", "fig3"]) == 0
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_console", False):
                logger.removeHandler(handler)
