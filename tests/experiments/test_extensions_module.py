"""Tests for the extension experiments module."""


from repro.experiments import run_experiment
from repro.experiments.extensions import (
    categorical_rr,
    privacy_audit,
    theory_check,
    tradeoff_window,
)
from repro.experiments.runner import Profile

TINY = Profile(name="quick", num_trials=2, grid_points=3, num_users=24, num_objects=8)


class TestPrivacyAudit:
    def test_structure(self):
        result = privacy_audit(TINY, base_seed=1)
        labels = {s.label for s in result.panels[0].series}
        assert labels == {
            "threshold", "marginal-lr", "known-variance-lr", "theory",
        }

    def test_accuracy_decreases_with_noise(self):
        result = privacy_audit(TINY, base_seed=1)
        theory = result.panels[0].series_by_label("theory").y
        # lambda2 grid is increasing => noise decreasing => accuracy up
        assert all(a <= b for a, b in zip(theory, theory[1:]))


class TestCategoricalRR:
    def test_structure_and_shape(self):
        result = categorical_rr(TINY, base_seed=1)
        panel = result.panels[0]
        assert {s.label for s in panel.series} == {
            "majority", "weighted-voting", "accuracy-em",
        }
        for series in panel.series:
            assert series.y[-1] <= series.y[0] + 1e-9


class TestTheoryCheck:
    def test_bound_dominates_empirical(self):
        result = theory_check(TINY, base_seed=1)
        panel = result.panels[0]
        empirical = panel.series_by_label("empirical").y
        bound = panel.series_by_label("theorem bound").y
        for emp, thm in zip(empirical, bound):
            assert emp <= thm + 1e-9


class TestTradeoffWindow:
    def test_bounds_monotone(self):
        result = tradeoff_window(TINY, base_seed=1)
        panel = result.panels[0]
        c_min = panel.series_by_label("c_min (privacy, Thm 4.8)").y
        c_max = panel.series_by_label("c_max (utility, Thm 4.3)").y
        assert all(a > b for a, b in zip(c_min, c_min[1:]))
        assert all(a < b for a, b in zip(c_max, c_max[1:]))

    def test_knife_edge_recorded(self):
        result = tradeoff_window(TINY, base_seed=1)
        knife = float(result.metadata["knife_edge_lambda1"])
        assert 0.01 < knife < 10.0

    def test_registered(self):
        result = run_experiment("ext-tradeoff-window", TINY, base_seed=1)
        assert result.figure_id == "ext-tradeoff-window"
