"""Tests for the indoor floorplan simulator."""

import numpy as np
import pytest

from repro.datasets.floorplan import (
    PAPER_NUM_SEGMENTS,
    PAPER_NUM_USERS,
    FloorplanDataset,
    WalkerProfile,
    generate_floorplan_dataset,
    generate_segment_lengths,
    sample_walker_profiles,
)


class TestSegmentLengths:
    def test_within_bounds(self):
        lengths = generate_segment_lengths(200, random_state=0)
        assert (lengths >= 4.0).all()
        assert (lengths <= 40.0).all()

    def test_deterministic(self):
        a = generate_segment_lengths(50, random_state=1)
        b = generate_segment_lengths(50, random_state=1)
        np.testing.assert_array_equal(a, b)

    def test_custom_bounds(self):
        lengths = generate_segment_lengths(
            30, min_length=2.0, max_length=8.0, random_state=0
        )
        assert (lengths >= 2.0).all() and (lengths <= 8.0).all()

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="exceed"):
            generate_segment_lengths(10, min_length=5.0, max_length=5.0)


class TestWalkerProfiles:
    def test_count_and_validity(self):
        profiles = sample_walker_profiles(40, random_state=0)
        assert len(profiles) == 40
        for p in profiles:
            assert 0.4 <= p.true_stride <= 1.1
            assert p.estimated_stride > 0
            assert p.stride_jitter >= 0
            assert p.miscount_rate >= 0

    def test_heterogeneous_quality(self):
        profiles = sample_walker_profiles(100, random_state=0)
        miscounts = [p.miscount_rate for p in profiles]
        assert np.std(miscounts) > 0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WalkerProfile(
                true_stride=0.0,
                estimated_stride=0.7,
                stride_jitter=0.0,
                miscount_rate=0.0,
            )


class TestDataset:
    def test_paper_shape_constants(self):
        assert PAPER_NUM_USERS == 247
        assert PAPER_NUM_SEGMENTS == 129

    def test_generation_shape(self):
        ds = generate_floorplan_dataset(
            num_users=30, num_segments=20, random_state=0
        )
        assert ds.num_users == 30
        assert ds.num_segments == 20
        assert ds.claims.is_complete

    def test_deterministic(self):
        a = generate_floorplan_dataset(num_users=10, num_segments=8, random_state=5)
        b = generate_floorplan_dataset(num_users=10, num_segments=8, random_state=5)
        np.testing.assert_array_equal(a.claims.values, b.claims.values)

    def test_claims_positive_distances(self):
        ds = generate_floorplan_dataset(
            num_users=30, num_segments=20, random_state=0
        )
        assert (ds.claims.values[ds.claims.mask] > 0).all()

    def test_claims_near_true_lengths(self):
        ds = generate_floorplan_dataset(
            num_users=50, num_segments=30, random_state=1
        )
        relative_error = np.abs(
            ds.claims.values - ds.segment_lengths[None, :]
        ) / ds.segment_lengths[None, :]
        # walking estimates are within tens of percent, mostly much closer
        assert np.median(relative_error) < 0.15
        assert relative_error.mean() < 0.3

    def test_user_quality_heterogeneous(self):
        ds = generate_floorplan_dataset(
            num_users=60, num_segments=40, random_state=2
        )
        per_user_err = np.abs(
            ds.claims.values - ds.segment_lengths[None, :]
        ).mean(axis=1)
        assert per_user_err.max() > 2 * per_user_err.min()

    def test_partial_coverage(self):
        ds = generate_floorplan_dataset(
            num_users=20, num_segments=15, coverage=0.5, random_state=3
        )
        assert 0.3 < ds.claims.density < 0.75
        assert ds.claims.mask.any(axis=0).all()
        assert ds.claims.mask.any(axis=1).all()

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            generate_floorplan_dataset(coverage=0.0)

    def test_as_synthetic_view(self):
        ds = generate_floorplan_dataset(
            num_users=15, num_segments=10, random_state=4
        )
        view = ds.as_synthetic()
        np.testing.assert_array_equal(view.ground_truth, ds.segment_lengths)
        assert view.error_variances.shape == (15,)
        assert (view.error_variances >= 0).all()

    def test_dataset_validation(self):
        ds = generate_floorplan_dataset(
            num_users=5, num_segments=4, random_state=0
        )
        with pytest.raises(ValueError, match="segment_lengths"):
            FloorplanDataset(
                claims=ds.claims,
                segment_lengths=np.ones(3),
                profiles=ds.profiles,
            )
        with pytest.raises(ValueError, match="profiles"):
            FloorplanDataset(
                claims=ds.claims,
                segment_lengths=ds.segment_lengths,
                profiles=ds.profiles[:-1],
            )

    def test_crh_recovers_lengths(self):
        # End-to-end sanity: truth discovery on simulated walks lands near
        # the measured lengths (the paper's aggregation target).
        from repro.truthdiscovery.crh import CRH

        ds = generate_floorplan_dataset(
            num_users=80, num_segments=25, random_state=6
        )
        result = CRH().fit(ds.claims)
        rel = np.abs(result.truths - ds.segment_lengths) / ds.segment_lengths
        assert np.median(rel) < 0.05
