"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets.io import (
    load_claims_csv,
    load_claims_npz,
    load_dataset_npz,
    save_claims_csv,
    save_claims_npz,
    save_dataset_npz,
)
from repro.datasets.synthetic import generate_synthetic
from repro.truthdiscovery.claims import ClaimMatrix


class TestNpzClaims:
    def test_round_trip_dense(self, small_claims, tmp_path):
        path = tmp_path / "claims.npz"
        save_claims_npz(path, small_claims)
        loaded = load_claims_npz(path)
        np.testing.assert_array_equal(loaded.values, small_claims.values)
        np.testing.assert_array_equal(loaded.mask, small_claims.mask)
        assert loaded.user_ids == small_claims.user_ids

    def test_round_trip_sparse(self, sparse_claims, tmp_path):
        path = tmp_path / "claims.npz"
        save_claims_npz(path, sparse_claims)
        loaded = load_claims_npz(path)
        np.testing.assert_array_equal(loaded.mask, sparse_claims.mask)

    def test_string_ids_preserved(self, tmp_path):
        cm = ClaimMatrix.from_records(
            [("alice", "hall-1", 3.5), ("bob", "hall-1", 3.7)]
        )
        path = tmp_path / "c.npz"
        save_claims_npz(path, cm)
        loaded = load_claims_npz(path)
        assert loaded.user_ids == ("alice", "bob")
        assert loaded.object_ids == ("hall-1",)


class TestNpzDataset:
    def test_round_trip(self, tmp_path):
        ds = generate_synthetic(num_users=12, num_objects=6, random_state=0)
        path = tmp_path / "ds.npz"
        save_dataset_npz(path, ds)
        loaded = load_dataset_npz(path)
        np.testing.assert_array_equal(loaded.claims.values, ds.claims.values)
        np.testing.assert_array_equal(loaded.ground_truth, ds.ground_truth)
        np.testing.assert_array_equal(
            loaded.error_variances, ds.error_variances
        )
        assert loaded.lambda1 == ds.lambda1

    def test_none_lambda1_round_trips(self, tmp_path):
        from repro.datasets.synthetic import generate_with_variances

        ds = generate_with_variances([0.1, 0.2], num_objects=3, random_state=0)
        path = tmp_path / "ds.npz"
        save_dataset_npz(path, ds)
        assert load_dataset_npz(path).lambda1 is None


class TestCsv:
    def test_round_trip_values(self, tmp_path):
        cm = ClaimMatrix.from_records(
            [("a", "x", 1.25), ("b", "x", -3.5), ("a", "y", 0.001)]
        )
        path = tmp_path / "claims.csv"
        save_claims_csv(path, cm)
        loaded = load_claims_csv(path)
        original = {(u, o): v for u, o, v in cm.to_records()}
        rebuilt = {(u, o): v for u, o, v in loaded.to_records()}
        assert original == rebuilt

    def test_float_precision_preserved(self, tmp_path):
        value = 1.0 / 3.0
        cm = ClaimMatrix.from_records([("a", "x", value), ("b", "x", 1.0)])
        path = tmp_path / "c.csv"
        save_claims_csv(path, cm)
        loaded = load_claims_csv(path)
        assert loaded.values[0, 0] == value  # repr round-trip is exact

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("who,what,how\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_claims_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user_id,object_id,value\na,x\n")
        with pytest.raises(ValueError, match="malformed"):
            load_claims_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("user_id,object_id,value\n")
        with pytest.raises(ValueError, match="no claims"):
            load_claims_csv(path)
