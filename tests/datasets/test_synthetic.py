"""Tests for the Section 5.1 synthetic generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    PAPER_NUM_OBJECTS,
    PAPER_NUM_USERS,
    SyntheticDataset,
    generate_synthetic,
    generate_with_adversaries,
    generate_with_variances,
    sample_error_variances,
)
from repro.truthdiscovery.claims import ClaimMatrix


class TestGenerateSynthetic:
    def test_paper_defaults(self):
        ds = generate_synthetic(random_state=0)
        assert ds.num_users == PAPER_NUM_USERS == 150
        assert ds.num_objects == PAPER_NUM_OBJECTS == 30

    def test_deterministic(self):
        a = generate_synthetic(num_users=20, num_objects=5, random_state=3)
        b = generate_synthetic(num_users=20, num_objects=5, random_state=3)
        np.testing.assert_array_equal(a.claims.values, b.claims.values)
        np.testing.assert_array_equal(a.ground_truth, b.ground_truth)

    def test_seed_changes_data(self):
        a = generate_synthetic(num_users=20, num_objects=5, random_state=3)
        b = generate_synthetic(num_users=20, num_objects=5, random_state=4)
        assert not np.allclose(a.claims.values, b.claims.values)

    def test_error_variances_follow_exponential(self):
        ds = generate_synthetic(
            num_users=100_000, num_objects=1, lambda1=4.0, random_state=0
        )
        assert ds.error_variances.mean() == pytest.approx(0.25, rel=0.02)

    def test_claims_centred_on_truth(self):
        ds = generate_synthetic(
            num_users=5000, num_objects=3, lambda1=4.0, random_state=1
        )
        residual = (ds.claims.values - ds.ground_truth[None, :]).mean()
        assert abs(residual) < 0.05

    def test_per_user_error_scale_matches_variance(self):
        ds = generate_synthetic(
            num_users=5, num_objects=20_000, lambda1=1.0, random_state=2
        )
        errors = ds.user_errors()
        for s in range(5):
            assert errors[s].std() == pytest.approx(
                np.sqrt(ds.error_variances[s]), rel=0.05
            )

    def test_custom_truth_sampler(self):
        ds = generate_synthetic(
            num_users=5,
            num_objects=4,
            truth_sampler=lambda rng, n: np.full(n, 42.0),
            random_state=0,
        )
        np.testing.assert_array_equal(ds.ground_truth, np.full(4, 42.0))

    def test_truth_sampler_shape_checked(self):
        with pytest.raises(ValueError, match="truth_sampler"):
            generate_synthetic(
                num_users=5,
                num_objects=4,
                truth_sampler=lambda rng, n: np.zeros(n + 1),
                random_state=0,
            )

    def test_missing_rate(self):
        ds = generate_synthetic(
            num_users=50, num_objects=20, missing_rate=0.3, random_state=0
        )
        assert 0.6 < ds.claims.density < 0.8
        # coverage guarantees
        assert ds.claims.mask.any(axis=0).all()
        assert ds.claims.mask.any(axis=1).all()

    def test_high_missing_rate_keeps_coverage(self):
        ds = generate_synthetic(
            num_users=10, num_objects=10, missing_rate=0.95, random_state=0
        )
        assert ds.claims.mask.any(axis=0).all()
        assert ds.claims.mask.any(axis=1).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_synthetic(num_users=0)
        with pytest.raises(ValueError):
            generate_synthetic(lambda1=0.0)
        with pytest.raises(ValueError):
            generate_synthetic(missing_rate=1.0)


class TestGenerateWithVariances:
    def test_explicit_variances_stored(self):
        variances = [0.1, 0.5, 2.0]
        ds = generate_with_variances(variances, num_objects=10, random_state=0)
        np.testing.assert_array_equal(ds.error_variances, variances)
        assert ds.lambda1 is None

    def test_explicit_truths(self):
        ds = generate_with_variances(
            [0.1, 0.2], num_objects=3, truths=[1.0, 2.0, 3.0], random_state=0
        )
        np.testing.assert_array_equal(ds.ground_truth, [1.0, 2.0, 3.0])

    def test_zero_variance_user_is_exact(self):
        ds = generate_with_variances(
            [0.0, 1.0], num_objects=8, random_state=0
        )
        np.testing.assert_allclose(ds.claims.values[0], ds.ground_truth)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_with_variances([])
        with pytest.raises(ValueError):
            generate_with_variances([-1.0])
        with pytest.raises(ValueError, match="truths"):
            generate_with_variances([0.1], num_objects=2, truths=[1.0])


class TestAdversaries:
    def test_bias_applied_to_minority(self):
        ds = generate_with_adversaries(
            num_users=20,
            num_objects=50,
            adversary_fraction=0.25,
            adversary_bias=10.0,
            random_state=0,
        )
        errors = ds.claims.values - ds.ground_truth[None, :]
        assert errors[:5].mean() == pytest.approx(10.0, abs=0.5)
        assert abs(errors[5:].mean()) < 0.5

    def test_zero_fraction_is_clean(self):
        base = generate_with_adversaries(
            num_users=10, num_objects=5, adversary_fraction=0.0, random_state=1
        )
        assert isinstance(base, SyntheticDataset)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            generate_with_adversaries(adversary_fraction=1.5)


class TestHelpers:
    def test_sample_error_variances(self):
        v = sample_error_variances(2.0, 10, random_state=0)
        assert v.shape == (10,)
        assert (v > 0).all()

    def test_dataset_validation(self):
        claims = ClaimMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="ground_truth"):
            SyntheticDataset(
                claims=claims,
                ground_truth=np.zeros(2),
                error_variances=np.zeros(2),
            )
        with pytest.raises(ValueError, match="error_variances"):
            SyntheticDataset(
                claims=claims,
                ground_truth=np.zeros(3),
                error_variances=np.zeros(3),
            )
