"""Tests for the pair-deviation distribution (proof machinery of Thm 4.3)."""

import math

import numpy as np
import pytest

from repro.theory.distributions import (
    PairDeviationDistribution,
    expected_pairwise_gap,
    pair_deviation_from_noise_level,
)


class TestDensity:
    @pytest.mark.parametrize("lambda1,lambda2", [(4.0, 2.0), (1.0, 3.0), (2.0, 2.0)])
    def test_normalised(self, lambda1, lambda2):
        dist = PairDeviationDistribution(lambda1, lambda2)
        assert dist.normalisation_numeric() == pytest.approx(1.0, abs=1e-6)

    def test_matches_paper_h_for_c_not_1(self):
        # Paper: h(y) = 2 l1^2 l2/(l2-l1) y^3 e^{-l1 y^2}
        #             - 2 l1^2 l2/(l2-l1)^2 (y e^{-l1 y^2} - y e^{-l2 y^2})
        l1, l2 = 4.0, 1.5
        dist = PairDeviationDistribution(l1, l2)
        y = np.linspace(0.05, 3.0, 50)
        paper = 2 * l1**2 * l2 / (l2 - l1) * y**3 * np.exp(-l1 * y**2) - (
            2 * l1**2 * l2 / (l2 - l1) ** 2
        ) * (y * np.exp(-l1 * y**2) - y * np.exp(-l2 * y**2))
        np.testing.assert_allclose(dist.pdf_y(y), paper, rtol=1e-10)

    def test_matches_appendix_h_for_c_1(self):
        # Appendix A: h'(y) = lambda1^3 y^5 e^{-lambda1 y^2}
        l1 = 2.5
        dist = PairDeviationDistribution(l1, l1)
        y = np.linspace(0.05, 3.0, 50)
        np.testing.assert_allclose(
            dist.pdf_y(y), l1**3 * y**5 * np.exp(-l1 * y**2), rtol=1e-10
        )

    def test_zero_below_origin(self):
        dist = PairDeviationDistribution(1.0, 1.0)
        assert dist.pdf_y(np.array([-1.0, 0.0]))[0] == 0.0
        assert dist.pdf_t(np.array([-1.0]))[0] == 0.0


class TestMoments:
    @pytest.mark.parametrize(
        "lambda1,lambda2",
        [(4.0, 2.0), (1.0, 3.0), (2.0, 2.0), (10.0, 0.5), (0.7, 0.7)],
    )
    def test_mean_matches_quadrature(self, lambda1, lambda2):
        dist = PairDeviationDistribution(lambda1, lambda2)
        assert dist.mean() == pytest.approx(dist.mean_numeric(), rel=1e-7)

    @pytest.mark.parametrize("lambda1,lambda2", [(4.0, 2.0), (2.0, 2.0)])
    def test_mean_square_matches_quadrature(self, lambda1, lambda2):
        dist = PairDeviationDistribution(lambda1, lambda2)
        assert dist.mean_square() == pytest.approx(
            dist.mean_square_numeric(), rel=1e-7
        )

    def test_mean_square_paper_formula(self):
        # E(Y^2) = (2 lambda2 + lambda1) / (lambda1 lambda2)
        l1, l2 = 3.0, 1.2
        dist = PairDeviationDistribution(l1, l2)
        assert dist.mean_square() == pytest.approx((2 * l2 + l1) / (l1 * l2))

    def test_c1_mean_closed_form(self):
        # E(Y) = (15/16) sqrt(pi / lambda1) at c = 1.
        l1 = 2.0
        dist = PairDeviationDistribution(l1, l1)
        assert dist.mean() == pytest.approx(
            15.0 * math.sqrt(math.pi) / (16.0 * math.sqrt(l1))
        )

    def test_c1_mean_square_is_3_over_lambda1(self):
        dist = PairDeviationDistribution(2.0, 2.0)
        assert dist.mean_square() == pytest.approx(1.5)

    def test_variance_positive(self):
        for l1, l2 in [(4.0, 2.0), (1.0, 1.0), (0.5, 5.0)]:
            assert PairDeviationDistribution(l1, l2).variance() > 0

    def test_continuity_near_equal_rates(self):
        # The closed form must not blow up as lambda2 -> lambda1.
        l1 = 3.0
        exact = PairDeviationDistribution(l1, l1).mean()
        near = PairDeviationDistribution(l1, l1 * (1 + 1e-5)).mean()
        assert near == pytest.approx(exact, rel=1e-3)

    def test_monte_carlo_agreement(self):
        dist = PairDeviationDistribution(4.0, 1.0)
        samples = dist.sample(400_000, random_state=0)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.01)
        assert (samples**2).mean() == pytest.approx(dist.mean_square(), rel=0.01)


class TestHelpers:
    def test_noise_level_roundtrip(self):
        dist = pair_deviation_from_noise_level(4.0, c=2.0)
        assert dist.lambda2 == pytest.approx(2.0)
        assert dist.noise_level == pytest.approx(2.0)

    def test_expected_pairwise_gap_eq10(self):
        # Eq. 10: mean |x - xhat| = sqrt(2/pi) E[Y]; verify Monte Carlo.
        lambda1, c = 4.0, 1.5
        gap = expected_pairwise_gap(lambda1, c)
        rng = np.random.default_rng(1)
        n = 300_000
        s2a = rng.exponential(1 / lambda1, n)
        s2b = rng.exponential(1 / lambda1, n)
        d2 = rng.exponential(c / lambda1, n)
        diffs = rng.standard_normal(n) * np.sqrt(s2a + s2b + d2)
        assert np.abs(diffs).mean() == pytest.approx(gap, rel=0.01)

    def test_more_noise_bigger_gap(self):
        assert expected_pairwise_gap(4.0, 3.0) > expected_pairwise_gap(4.0, 0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PairDeviationDistribution(0.0, 1.0)
        with pytest.raises(ValueError):
            pair_deviation_from_noise_level(1.0, 0.0)
