"""Tests for Theorem 4.3 / Appendix A utility bounds."""

import math

import numpy as np
import pytest

from repro.theory.utility import (
    alpha_threshold,
    alpha_threshold_c1,
    alpha_threshold_paper,
    max_noise_level,
    min_alpha_for_beta,
    satisfies_utility,
    utility_failure_bound,
    utility_failure_bound_c1,
)


class TestMaxNoiseLevel:
    def test_eq15_formula(self):
        lambda1, alpha, beta, s = 2.0, 0.5, 0.1, 100
        expected = (
            lambda1
            * math.sqrt(math.pi)
            * (
                alpha**2 * beta * s**2 / (4 * math.sqrt(2))
                + alpha**2 * math.sqrt(math.pi) / 8
                + alpha
                + 2 / math.sqrt(math.pi)
            )
            - 2
        )
        assert max_noise_level(lambda1, alpha, beta, s) == pytest.approx(expected)

    def test_monotone_in_users(self):
        # Paper: "the upper bound of c increases with ... S".
        values = [max_noise_level(2.0, 0.5, 0.1, s) for s in (10, 100, 1000)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_monotone_in_alpha(self):
        values = [max_noise_level(2.0, a, 0.1, 100) for a in (0.1, 0.5, 1.0)]
        assert values == sorted(values)

    def test_monotone_in_beta(self):
        values = [max_noise_level(2.0, 0.5, b, 100) for b in (0.01, 0.1, 0.5)]
        assert values == sorted(values)

    def test_monotone_in_lambda1(self):
        # Paper: "a larger lambda1 ... can tolerate more noise".
        values = [
            max_noise_level(lam, 0.5, 0.1, 100) for lam in (0.5, 2.0, 8.0)
        ]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_noise_level(-1.0, 0.5, 0.1, 10)
        with pytest.raises(ValueError):
            max_noise_level(1.0, 0.5, 1.5, 10)
        with pytest.raises(ValueError):
            max_noise_level(1.0, 0.5, 0.1, 0)


class TestAlphaThreshold:
    def test_equals_2sqrt2pi_expected_y(self):
        from repro.theory.distributions import PairDeviationDistribution

        lambda1, c = 4.0, 0.5
        dist = PairDeviationDistribution(lambda1, lambda1 / c)
        assert alpha_threshold(lambda1, c) == pytest.approx(
            2 * math.sqrt(2 / math.pi) * dist.mean()
        )

    def test_increases_with_noise_level(self):
        values = [alpha_threshold(4.0, c) for c in (0.2, 1.0, 3.0)]
        assert values == sorted(values)

    def test_decreases_with_lambda1(self):
        assert alpha_threshold(8.0, 1.0) < alpha_threshold(1.0, 1.0)

    def test_c1_specialisation_consistent(self):
        # alpha_threshold at c=1 equals the Appendix A closed form.
        lambda1 = 3.0
        assert alpha_threshold(lambda1, 1.0) == pytest.approx(
            alpha_threshold_c1(lambda1), rel=1e-9
        )

    def test_c1_closed_form(self):
        assert alpha_threshold_c1(2.0) == pytest.approx((15 / 8) * math.sqrt(1.0))

    def test_paper_form_real_only_below_1(self):
        value = alpha_threshold_paper(4.0, 0.5)
        assert np.isfinite(value)
        with pytest.raises(ValueError, match="c < 1"):
            alpha_threshold_paper(4.0, 1.5)


class TestFailureBound:
    def test_indicator_fires_below_threshold(self):
        lambda1, c = 4.0, 1.0
        small_alpha = alpha_threshold(lambda1, c) * 0.5
        assert utility_failure_bound(lambda1, c, small_alpha, 100) == 1.0

    def test_chebyshev_term_above_threshold(self):
        lambda1, c, s = 4.0, 1.0, 100
        alpha = alpha_threshold(lambda1, c) * 2.0
        bound = utility_failure_bound(lambda1, c, alpha, s)
        assert 0.0 <= bound < 1.0

    def test_vanishes_with_many_users(self):
        lambda1, c = 4.0, 1.0
        alpha = alpha_threshold(lambda1, c) * 2.0
        b_small = utility_failure_bound(lambda1, c, alpha, 10)
        b_large = utility_failure_bound(lambda1, c, alpha, 10_000)
        assert b_large < b_small
        assert b_large < 1e-4

    def test_c1_specialisation_matches_general(self):
        lambda1, s = 3.0, 50
        alpha = alpha_threshold_c1(lambda1) * 1.5
        general = utility_failure_bound(lambda1, 1.0, alpha, s)
        special = utility_failure_bound_c1(lambda1, alpha, s)
        assert special == pytest.approx(general, rel=1e-6)

    def test_theorem_a1_limit(self):
        # lim_{S -> inf} Pr{...} = 0 for alpha above the threshold.
        lambda1 = 2.0
        alpha = alpha_threshold_c1(lambda1) * 1.01
        assert utility_failure_bound_c1(lambda1, alpha, 10**6) < 1e-9


class TestSatisfiesUtility:
    def test_requires_alpha_above_threshold(self):
        lambda1, c = 4.0, 0.5
        alpha_bad = alpha_threshold(lambda1, c) * 0.9
        assert not satisfies_utility(lambda1, c, alpha_bad, 0.5, 100)

    def test_requires_c_below_bound(self):
        lambda1, beta, s = 4.0, 0.1, 100
        c_ok = 0.5
        alpha = alpha_threshold(lambda1, c_ok) * 1.5
        c_max = max_noise_level(lambda1, alpha, beta, s)
        assert c_ok <= c_max  # sanity: generous parameters open the window
        assert satisfies_utility(lambda1, c_ok, alpha, beta, s)
        assert not satisfies_utility(lambda1, c_max * 1.1, alpha, beta, s)


class TestMinAlphaForBeta:
    def test_at_least_threshold(self):
        lambda1, c = 4.0, 1.0
        alpha = min_alpha_for_beta(lambda1, c, beta=0.5, num_users=1000)
        assert alpha >= alpha_threshold(lambda1, c)

    def test_small_beta_needs_larger_alpha(self):
        a_loose = min_alpha_for_beta(4.0, 1.0, beta=0.5, num_users=10)
        a_tight = min_alpha_for_beta(4.0, 1.0, beta=1e-4, num_users=10)
        assert a_tight >= a_loose

    def test_respects_bound(self):
        lambda1, c, beta, s = 4.0, 1.0, 0.2, 50
        alpha = min_alpha_for_beta(lambda1, c, beta=beta, num_users=s)
        assert utility_failure_bound(lambda1, c, alpha * 1.001, s) <= beta + 1e-9
