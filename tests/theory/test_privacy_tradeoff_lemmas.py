"""Tests for Theorem 4.8, Theorem 4.9 (trade-off), and the lemmas."""

import math

import numpy as np
import pytest

from repro.theory.lemmas import (
    chebyshev_sum_gap,
    gaussian_tail_bound,
    gaussian_tail_probability_exact,
    mean_absolute_gaussian,
    weighted_average_bound_holds,
)
from repro.theory.privacy import (
    epsilon_from_noise_level,
    min_noise_level,
    min_noise_level_from_sensitivity,
    min_noise_level_paper,
)
from repro.theory.tradeoff import (
    choose_noise_level,
    lambda2_for_noise_level,
    matched_lambda1,
    noise_level_window,
)


class TestTheorem48:
    def test_formula(self):
        # c >= gamma^2 / (2 eps lambda1 ln(1/(1-delta)))
        lambda1, eps, delta, b, eta = 2.0, 1.0, 0.3, 3.0, 0.95
        gamma = b * math.sqrt(2 * math.log(1 / (1 - eta)))
        expected = gamma**2 / (2 * eps * lambda1 * math.log(1 / (1 - delta)))
        assert min_noise_level(lambda1, eps, delta, b=b, eta=eta) == pytest.approx(
            expected
        )

    def test_paper_form_is_epsilon_1(self):
        assert min_noise_level_paper(2.0, 0.3) == pytest.approx(
            min_noise_level(2.0, 1.0, 0.3)
        )

    def test_stronger_privacy_needs_more_noise(self):
        # Paper: "Smaller eps and delta ... ask for a bigger bound".
        assert min_noise_level(2.0, 0.5, 0.3) > min_noise_level(2.0, 2.0, 0.3)
        assert min_noise_level(2.0, 1.0, 0.1) > min_noise_level(2.0, 1.0, 0.5)

    def test_better_data_needs_less_noise(self):
        # Paper: "The bigger lambda1 ... less noise is required".
        assert min_noise_level(8.0, 1.0, 0.3) < min_noise_level(1.0, 1.0, 0.3)

    def test_sensitivity_form(self):
        lambda1, sens, eps, delta = 2.0, 1.5, 1.0, 0.3
        expected = lambda1 * sens**2 / (2 * eps * math.log(1 / (1 - delta)))
        assert min_noise_level_from_sensitivity(
            lambda1, sens, eps, delta
        ) == pytest.approx(expected)

    def test_epsilon_inversion(self):
        lambda1, delta = 2.0, 0.3
        c = min_noise_level(lambda1, 1.3, delta)
        assert epsilon_from_noise_level(lambda1, c, delta) == pytest.approx(1.3)

    def test_mechanism_level_guarantee_monte_carlo(self):
        # End-to-end: choose c via Theorem 4.8, map to lambda2, and check
        # that the variance exceeds the Eq. 18 threshold with prob >= 1-delta.
        lambda1, eps, delta = 2.0, 1.0, 0.3
        sens = 0.8
        c = min_noise_level_from_sensitivity(lambda1, sens, eps, delta)
        lambda2 = lambda2_for_noise_level(lambda1, c)
        threshold = sens**2 / (2 * eps)
        rng = np.random.default_rng(0)
        draws = rng.exponential(1.0 / lambda2, size=400_000)
        assert (draws >= threshold).mean() >= (1 - delta) - 0.005


class TestTradeoff:
    def test_window_feasible_for_generous_parameters(self):
        window = noise_level_window(
            lambda1=4.0, alpha=1.0, beta=0.2, num_users=500,
            epsilon=1.0, delta=0.3,
        )
        assert window.feasible
        assert window.c_min < window.c_max

    def test_window_infeasible_for_harsh_privacy(self):
        window = noise_level_window(
            lambda1=0.05, alpha=0.01, beta=0.0, num_users=2,
            epsilon=1e-6, delta=0.01,
        )
        assert not window.feasible

    def test_contains(self):
        window = noise_level_window(
            lambda1=4.0, alpha=1.0, beta=0.2, num_users=500,
            epsilon=1.0, delta=0.3,
        )
        mid = choose_noise_level(window)
        assert window.contains(mid)
        assert not window.contains(window.c_max * 2)

    def test_choose_noise_level_none_when_infeasible(self):
        window = noise_level_window(
            lambda1=0.05, alpha=0.01, beta=0.0, num_users=2,
            epsilon=1e-6, delta=0.01,
        )
        assert choose_noise_level(window) is None

    def test_matched_lambda1_closes_window(self):
        # At the knife-edge lambda1 the two bounds coincide (Eq. 19).
        alpha, beta, s, eps, delta = 0.5, 0.1, 100, 1.0, 0.3
        lambda1 = matched_lambda1(alpha, beta, s, eps, delta)
        window = noise_level_window(lambda1, alpha, beta, s, eps, delta)
        assert window.c_min == pytest.approx(window.c_max, rel=1e-6)

    def test_matched_lambda1_raises_when_always_open(self):
        with pytest.raises(ValueError, match="already open"):
            matched_lambda1(
                10.0, 0.9, 10_000, 100.0, 0.9, bracket=(1.0, 100.0)
            )

    def test_lambda2_for_noise_level(self):
        assert lambda2_for_noise_level(4.0, 2.0) == pytest.approx(2.0)

    def test_window_dataclass_width(self):
        window = noise_level_window(
            lambda1=4.0, alpha=1.0, beta=0.2, num_users=500,
            epsilon=1.0, delta=0.3,
        )
        assert window.width == pytest.approx(window.c_max - window.c_min)


class TestLemma44:
    def test_holds_for_decreasing_f(self):
        t = np.array([1.0, 2.0, 5.0, 0.3])
        assert weighted_average_bound_holds(t, lambda x: 1.0 / (x + 1.0))

    def test_holds_for_exp_decay(self):
        t = np.linspace(0, 10, 25)
        assert weighted_average_bound_holds(t, lambda x: np.exp(-x))

    def test_violated_for_increasing_f(self):
        t = np.array([1.0, 2.0, 5.0])
        assert not weighted_average_bound_holds(t, lambda x: x + 1.0)

    def test_equality_for_constant_f(self):
        t = np.array([1.0, 2.0, 3.0])
        assert weighted_average_bound_holds(t, lambda x: np.ones_like(x))

    def test_chebyshev_gap_sign(self):
        t = np.array([0.5, 1.5, 3.0, 7.0])
        w = 1.0 / (t + 0.1)
        assert chebyshev_sum_gap(t, w) <= 0
        assert chebyshev_sum_gap(t, t.copy()) >= 0  # increasing weights

    def test_gap_validation(self):
        with pytest.raises(ValueError, match="same length"):
            chebyshev_sum_gap(np.ones(3), np.ones(4))

    def test_bad_weights_rejected(self):
        t = np.array([1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            weighted_average_bound_holds(t, lambda x: -np.ones_like(x))


class TestGaussianHelpers:
    def test_tail_bound_dominates_exact(self):
        for b in (1.0, 2.0, 3.0):
            assert gaussian_tail_bound(b) >= gaussian_tail_probability_exact(b)

    def test_mean_absolute_gaussian_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = np.abs(rng.normal(0.0, 2.5, size=400_000))
        assert samples.mean() == pytest.approx(
            mean_absolute_gaussian(2.5), rel=0.01
        )
