"""Tests for perturbation mechanisms."""

import math

import numpy as np
import pytest

from repro.privacy.mechanisms import (
    ExponentialVarianceGaussianMechanism,
    FixedGaussianMechanism,
    LaplaceMechanism,
    NullMechanism,
    create_mechanism,
)
from repro.truthdiscovery.claims import ClaimMatrix


@pytest.fixture
def claims():
    rng = np.random.default_rng(0)
    return ClaimMatrix(rng.normal(10.0, 1.0, size=(30, 20)))


class TestExponentialVarianceGaussian:
    def test_output_shape_and_mask(self, sparse_claims):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        result = mech.perturb(sparse_claims, random_state=0)
        assert result.perturbed.shape == sparse_claims.shape
        np.testing.assert_array_equal(result.perturbed.mask, sparse_claims.mask)
        # unobserved entries remain zero (never perturbed)
        assert result.perturbed.values[0, 1] == 0.0
        assert result.noise[0, 1] == 0.0

    def test_perturbed_equals_original_plus_noise(self, claims):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        result = mech.perturb(claims, random_state=1)
        np.testing.assert_allclose(
            result.perturbed.values, claims.values + result.noise
        )

    def test_deterministic_given_seed(self, claims):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        a = mech.perturb(claims, random_state=5)
        b = mech.perturb(claims, random_state=5)
        np.testing.assert_array_equal(a.noise, b.noise)
        np.testing.assert_array_equal(a.noise_variances, b.noise_variances)

    def test_different_seeds_differ(self, claims):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        a = mech.perturb(claims, random_state=1)
        b = mech.perturb(claims, random_state=2)
        assert not np.allclose(a.noise, b.noise)

    def test_per_user_variance_distribution(self):
        # Over many users, sampled variances follow Exp(lambda2).
        claims = ClaimMatrix(np.zeros((50_000, 1)))
        mech = ExponentialVarianceGaussianMechanism(lambda2=2.0)
        result = mech.perturb(claims, random_state=0)
        assert result.noise_variances.mean() == pytest.approx(0.5, rel=0.05)

    def test_row_noise_matches_sampled_variance(self):
        claims = ClaimMatrix(np.zeros((3, 50_000)))
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        result = mech.perturb(claims, random_state=0)
        for s in range(3):
            assert result.noise[s].std() == pytest.approx(
                math.sqrt(result.noise_variances[s]), rel=0.05
            )

    def test_expected_noise_magnitude(self):
        mech = ExponentialVarianceGaussianMechanism(lambda2=2.0)
        assert mech.expected_noise_magnitude() == pytest.approx(0.5)

    def test_average_absolute_noise_tracks_expectation(self):
        claims = ClaimMatrix(np.zeros((3000, 10)))
        mech = ExponentialVarianceGaussianMechanism(lambda2=2.0)
        result = mech.perturb(claims, random_state=0)
        assert result.average_absolute_noise == pytest.approx(0.5, rel=0.1)

    def test_guarantee(self):
        mech = ExponentialVarianceGaussianMechanism(lambda2=1.0)
        g = mech.guarantee(sensitivity=1.0, delta=0.3)
        assert g.delta == 0.3
        assert g.epsilon == pytest.approx(1.0 / (2.0 * math.log(1 / 0.7)))

    def test_for_epsilon_round_trip(self):
        mech = ExponentialVarianceGaussianMechanism.for_epsilon(
            epsilon=1.5, sensitivity=2.0, delta=0.2
        )
        g = mech.guarantee(sensitivity=2.0, delta=0.2)
        assert g.epsilon == pytest.approx(1.5)

    def test_invalid_lambda2(self):
        with pytest.raises(ValueError):
            ExponentialVarianceGaussianMechanism(lambda2=-1.0)


class TestFixedGaussian:
    def test_constant_variance(self, claims):
        mech = FixedGaussianMechanism(variance=0.25)
        result = mech.perturb(claims, random_state=0)
        assert (result.noise_variances == 0.25).all()

    def test_matching_expected_noise(self):
        mech = FixedGaussianMechanism.matching_expected_noise(0.7)
        assert mech.expected_noise_magnitude() == pytest.approx(0.7)

    def test_strict_guarantee_positive(self):
        mech = FixedGaussianMechanism(variance=1.0)
        g = mech.guarantee(sensitivity=0.5, delta=0.1)
        assert g.epsilon > 0

    def test_empirical_noise_scale(self):
        claims = ClaimMatrix(np.zeros((100, 1000)))
        mech = FixedGaussianMechanism(variance=4.0)
        result = mech.perturb(claims, random_state=0)
        assert result.noise.std() == pytest.approx(2.0, rel=0.05)


class TestLaplace:
    def test_expected_noise_is_scale(self):
        assert LaplaceMechanism(scale=0.3).expected_noise_magnitude() == 0.3

    def test_empirical_absolute_mean(self):
        claims = ClaimMatrix(np.zeros((100, 1000)))
        mech = LaplaceMechanism(scale=0.5)
        result = mech.perturb(claims, random_state=0)
        assert np.abs(result.noise).mean() == pytest.approx(0.5, rel=0.05)

    def test_pure_epsilon_guarantee(self):
        g = LaplaceMechanism(scale=0.5).guarantee(sensitivity=1.0)
        assert g.epsilon == pytest.approx(2.0)
        assert g.delta == 0.0


class TestNullMechanism:
    def test_identity(self, claims):
        result = NullMechanism().perturb(claims, random_state=0)
        np.testing.assert_array_equal(result.perturbed.values, claims.values)
        assert result.average_absolute_noise == 0.0
        assert result.max_absolute_noise == 0.0

    def test_guarantee_is_vacuous(self):
        g = NullMechanism().guarantee(1.0, 0.1)
        assert math.isinf(g.epsilon)


class TestFactory:
    def test_create_each(self):
        assert isinstance(
            create_mechanism("exp-gaussian", lambda2=1.0),
            ExponentialVarianceGaussianMechanism,
        )
        assert isinstance(
            create_mechanism("fixed-gaussian", variance=1.0),
            FixedGaussianMechanism,
        )
        assert isinstance(
            create_mechanism("laplace", scale=1.0), LaplaceMechanism
        )
        assert isinstance(create_mechanism("null"), NullMechanism)

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            create_mechanism("nope")
