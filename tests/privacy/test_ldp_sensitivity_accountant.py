"""Tests for LDP accounting, sensitivity, and the accountant."""

import math

import numpy as np
import pytest

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import (
    LDPGuarantee,
    epsilon_for_variance,
    epsilon_of_mechanism,
    guarantee_of_mechanism,
    lambda2_for_epsilon,
    laplace_epsilon,
    strict_gaussian_epsilon,
    variance_for_epsilon,
)
from repro.privacy.sensitivity import (
    gamma_factor,
    global_claim_range,
    lemma47_bound,
    normalized_sensitivity,
    per_user_claim_range,
)
from repro.truthdiscovery.claims import ClaimMatrix


class TestLDPGuarantee:
    def test_validation(self):
        with pytest.raises(ValueError):
            LDPGuarantee(epsilon=-1.0, delta=0.1)
        with pytest.raises(ValueError):
            LDPGuarantee(epsilon=1.0, delta=1.5)

    def test_dominance(self):
        strong = LDPGuarantee(epsilon=0.5, delta=0.1)
        weak = LDPGuarantee(epsilon=1.0, delta=0.2)
        assert strong.is_stronger_than(weak)
        assert not weak.is_stronger_than(strong)


class TestConversions:
    def test_epsilon_for_variance(self):
        # eps = Delta^2 / (2y)
        assert epsilon_for_variance(2.0, 2.0) == pytest.approx(1.0)

    def test_variance_epsilon_round_trip(self):
        y = variance_for_epsilon(0.7, 1.5)
        assert epsilon_for_variance(y, 1.5) == pytest.approx(0.7)

    def test_epsilon_of_mechanism_formula(self):
        eps = epsilon_of_mechanism(lambda2=2.0, sensitivity=1.0, delta=0.5)
        assert eps == pytest.approx(2.0 / (2.0 * math.log(2.0)))

    def test_lambda2_round_trip(self):
        lam = lambda2_for_epsilon(epsilon=1.2, sensitivity=0.8, delta=0.3)
        assert epsilon_of_mechanism(lam, 0.8, 0.3) == pytest.approx(1.2)

    def test_more_noise_means_smaller_epsilon(self):
        # smaller lambda2 => bigger noise => stronger privacy
        eps_hi = epsilon_of_mechanism(2.0, 1.0, 0.3)
        eps_lo = epsilon_of_mechanism(0.5, 1.0, 0.3)
        assert eps_lo < eps_hi

    def test_larger_delta_means_smaller_epsilon(self):
        eps_small_delta = epsilon_of_mechanism(1.0, 1.0, 0.2)
        eps_big_delta = epsilon_of_mechanism(1.0, 1.0, 0.5)
        assert eps_big_delta < eps_small_delta

    def test_variance_threshold_probability(self):
        # By construction, P(variance >= Delta^2/(2 eps)) = 1 - delta.
        lam, delta, sens = 1.3, 0.25, 1.1
        eps = epsilon_of_mechanism(lam, sens, delta)
        threshold = variance_for_epsilon(eps, sens)
        rng = np.random.default_rng(0)
        draws = rng.exponential(1.0 / lam, size=400_000)
        assert (draws >= threshold).mean() == pytest.approx(1 - delta, abs=0.005)

    def test_guarantee_of_mechanism(self):
        g = guarantee_of_mechanism(1.0, 1.0, 0.3)
        assert isinstance(g, LDPGuarantee)
        assert g.delta == 0.3

    def test_strict_gaussian_epsilon(self):
        eps = strict_gaussian_epsilon(noise_std=2.0, sensitivity=1.0, delta=0.05)
        assert eps == pytest.approx(math.sqrt(2 * math.log(25.0)) / 2.0)

    def test_laplace_epsilon(self):
        assert laplace_epsilon(scale=0.5, sensitivity=1.0) == pytest.approx(2.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            epsilon_of_mechanism(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            epsilon_of_mechanism(1.0, 1.0, 1.0)


class TestSensitivity:
    def test_gamma_factor_formula(self):
        gamma = gamma_factor(b=3.0, eta=0.95)
        assert gamma == pytest.approx(3.0 * math.sqrt(2 * math.log(20.0)))

    def test_lemma47_bound_inverse_in_lambda1(self):
        b1 = lemma47_bound(1.0).value
        b4 = lemma47_bound(4.0).value
        assert b4 == pytest.approx(b1 / 4.0)

    def test_lemma47_probability_in_unit_interval(self):
        bound = lemma47_bound(2.0, b=3.0, eta=0.95)
        assert 0.0 <= bound.holds_probability <= 1.0

    def test_lemma47_probability_formula(self):
        bound = lemma47_bound(2.0, b=3.0, eta=0.9)
        tail = 1.0 - 2.0 * math.exp(-4.5) / 3.0
        assert bound.holds_probability == pytest.approx(0.9 * tail)

    def test_lemma47_empirical_coverage(self):
        # Monte Carlo: with sigma^2 ~ Exp(lambda1) and x1,x2 ~ N(truth,
        # sigma^2), |x1 - x2| <= gamma/lambda1 should hold with at least
        # the stated probability.
        lambda1, b, eta = 1.5, 3.0, 0.95
        bound = lemma47_bound(lambda1, b=b, eta=eta)
        rng = np.random.default_rng(42)
        n = 200_000
        sigma2 = rng.exponential(1.0 / lambda1, size=n)
        gaps = np.abs(rng.standard_normal(n) - rng.standard_normal(n)) * np.sqrt(
            sigma2
        )
        coverage = (gaps <= bound.value).mean()
        assert coverage >= bound.holds_probability

    def test_per_user_claim_range(self, sparse_claims):
        ranges = per_user_claim_range(sparse_claims)
        assert ranges.shape == (4,)
        assert ranges[0] == pytest.approx(2.0)  # claims 1.0 and 3.0

    def test_single_claim_user_range_zero(self):
        values = np.array([[1.0, 0.0], [2.0, 5.0]])
        mask = np.array([[True, False], [True, True]])
        ranges = per_user_claim_range(ClaimMatrix(values, mask=mask))
        assert ranges[0] == 0.0

    def test_global_claim_range(self, small_claims):
        assert global_claim_range(small_claims) == pytest.approx(8.0 - 0.9)

    def test_normalized_sensitivity_positive(self, small_claims):
        assert normalized_sensitivity(small_claims) > 0


class TestAccountant:
    def test_single_event(self):
        acct = PrivacyAccountant()
        acct.record("u1", LDPGuarantee(1.0, 0.1), mechanism="exp-gaussian")
        g = acct.composed_guarantee("u1")
        assert g.epsilon == 1.0
        assert g.delta == 0.1

    def test_basic_composition_adds(self):
        acct = PrivacyAccountant()
        acct.record("u1", LDPGuarantee(1.0, 0.1))
        acct.record("u1", LDPGuarantee(0.5, 0.05))
        g = acct.composed_guarantee("u1")
        assert g.epsilon == pytest.approx(1.5)
        assert g.delta == pytest.approx(0.15)

    def test_delta_capped_at_one(self):
        acct = PrivacyAccountant()
        for _ in range(5):
            acct.record("u1", LDPGuarantee(0.1, 0.4))
        assert acct.composed_guarantee("u1").delta == 1.0

    def test_unknown_user_has_perfect_privacy(self):
        acct = PrivacyAccountant()
        g = acct.composed_guarantee("ghost")
        assert g.epsilon == 0.0 and g.delta == 0.0

    def test_record_for_all(self):
        acct = PrivacyAccountant()
        acct.record_for_all(["a", "b"], LDPGuarantee(1.0, 0.1), label="round1")
        assert acct.num_events == 2
        assert len(acct.events_for("a")) == 1

    def test_worst_case(self):
        acct = PrivacyAccountant()
        acct.record("a", LDPGuarantee(1.0, 0.1))
        acct.record("b", LDPGuarantee(2.0, 0.1))
        assert acct.worst_case().epsilon == 2.0

    def test_worst_case_empty(self):
        assert PrivacyAccountant().worst_case().epsilon == 0.0

    def test_reset(self):
        acct = PrivacyAccountant()
        acct.record("a", LDPGuarantee(1.0, 0.1))
        acct.reset()
        assert acct.num_events == 0
