"""Tests for the adversarial auditing module."""

import math

import numpy as np
import pytest

from repro.privacy.attacks import (
    LikelihoodRatioAttacker,
    ThresholdAttacker,
    audit_mechanism,
    gaussian_density_known_variance,
    marginal_density,
    marginal_density_numeric,
    theoretical_marginal_advantage,
)
from repro.privacy.ldp import marginal_laplace_epsilon


class TestThresholdAttacker:
    def test_midpoint_rule(self):
        attacker = ThresholdAttacker(0.0, 1.0)
        assert attacker.guess_is_x1(0.2)
        assert not attacker.guess_is_x1(0.8)

    def test_reversed_order(self):
        attacker = ThresholdAttacker(1.0, 0.0)
        assert attacker.guess_is_x1(0.8)
        assert not attacker.guess_is_x1(0.2)

    def test_equal_inputs_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAttacker(1.0, 1.0)


class TestDensityModels:
    def test_known_variance_is_gaussian(self):
        density = gaussian_density_known_variance(4.0)
        assert density(0.0, 0.0) == pytest.approx(
            1.0 / math.sqrt(8.0 * math.pi)
        )

    def test_marginal_is_laplace_closed_form(self):
        # The Gaussian-scale-mixture identity, checked against quadrature.
        lam = 0.7
        closed = marginal_density(lam)
        numeric = marginal_density_numeric(lam)
        for x in (-2.0, -0.3, 0.0, 0.5, 1.7, 4.0):
            assert closed(x, 0.0) == pytest.approx(numeric(x, 0.0), rel=1e-6)

    def test_marginal_integrates_to_one(self):
        from scipy import integrate

        density = marginal_density(1.3)
        total, _err = integrate.quad(lambda x: density(x, 0.0), -np.inf, np.inf)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_lr_attacker_prefers_closer_centre(self):
        attacker = LikelihoodRatioAttacker(0.0, 2.0, marginal_density(1.0))
        assert attacker.guess_is_x1(0.1)
        assert not attacker.guess_is_x1(1.9)


class TestAudit:
    def test_reports_structure(self):
        reports = audit_mechanism(1.0, 0.0, 1.0, num_trials=500, random_state=0)
        assert set(reports) == {"threshold", "marginal-lr", "known-variance-lr"}
        for report in reports.values():
            assert 0.0 <= report.accuracy <= 1.0
            assert report.num_trials == 500

    def test_marginal_attacker_matches_theory(self):
        lam, gap = 0.5, 1.0
        reports = audit_mechanism(
            lam, 0.0, gap, num_trials=20_000, random_state=0
        )
        theory = 0.5 + theoretical_marginal_advantage(lam, gap)
        assert reports["marginal-lr"].accuracy == pytest.approx(
            theory, abs=0.02
        )

    def test_known_variance_no_better_for_single_claim(self):
        # Symmetric location test: equal variance under both hypotheses
        # makes the LR test the midpoint rule, so knowing the variance
        # adds nothing for ONE observation — the quantitative content of
        # the private-variance design at the single-record level.
        reports = audit_mechanism(
            0.5, 0.0, 1.0, num_trials=20_000, random_state=1
        )
        assert reports["known-variance-lr"].accuracy == pytest.approx(
            reports["marginal-lr"].accuracy, abs=0.01
        )

    def test_more_noise_weakens_all_attackers(self):
        strong = audit_mechanism(5.0, 0.0, 1.0, num_trials=5000, random_state=2)
        weak = audit_mechanism(0.05, 0.0, 1.0, num_trials=5000, random_state=2)
        assert weak["marginal-lr"].accuracy < strong["marginal-lr"].accuracy

    def test_validation(self):
        with pytest.raises(ValueError):
            audit_mechanism(1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            audit_mechanism(1.0, 0.0, 1.0, num_trials=10)


class TestMarginalLaplaceEpsilon:
    def test_formula(self):
        assert marginal_laplace_epsilon(2.0, 1.0) == pytest.approx(2.0)

    def test_bounds_empirical_density_ratio(self):
        # Per-record pure-eps claim: max log ratio of the two marginal
        # densities equals Delta/b = marginal_laplace_epsilon.
        lam, gap = 0.8, 1.5
        eps = marginal_laplace_epsilon(lam, gap)
        density = marginal_density(lam)
        xs = np.linspace(-10, 10, 2001)
        ratios = np.array(
            [math.log(density(x, 0.0)) - math.log(density(x, gap)) for x in xs]
        )
        assert np.abs(ratios).max() <= eps + 1e-9

    def test_advantage_consistent_with_epsilon(self):
        # Distinguishing advantage is bounded by (e^eps - 1)/(e^eps + 1)
        # for a pure-eps mechanism; the Laplace TV formula must respect it.
        lam, gap = 0.5, 1.0
        eps = marginal_laplace_epsilon(lam, gap)
        adv = theoretical_marginal_advantage(lam, gap)
        assert adv <= (math.exp(eps) - 1) / (math.exp(eps) + 1) / 2 + 0.25
        # (loose sanity bound; exact TV is 1 - e^{-eps/2} over 2)
        assert adv == pytest.approx((1 - math.exp(-eps / 2)) / 2)
