"""Tests tying the marginal-Laplace epsilon to empirical measurements."""

import math

import numpy as np
import pytest

from repro.metrics.empirical_privacy import empirical_epsilon
from repro.privacy.ldp import (
    epsilon_of_mechanism,
    marginal_laplace_epsilon,
)
from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism


class TestMarginalLaplaceEpsilon:
    def test_scaling_in_lambda2(self):
        assert marginal_laplace_epsilon(4.0, 1.0) == pytest.approx(
            2 * marginal_laplace_epsilon(1.0, 1.0)
        )

    def test_linear_in_sensitivity(self):
        assert marginal_laplace_epsilon(1.0, 3.0) == pytest.approx(
            3 * marginal_laplace_epsilon(1.0, 1.0)
        )

    def test_zero_sensitivity(self):
        assert marginal_laplace_epsilon(1.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            marginal_laplace_epsilon(0.0, 1.0)

    def test_empirical_epsilon_respects_pure_bound(self):
        # The histogram-scan epsilon of the actual mechanism must not
        # exceed the pure-epsilon bound (up to binning/sampling slack).
        lambda2, gap = 0.5, 1.0
        mech = ExponentialVarianceGaussianMechanism(lambda2)
        # mass_floor keeps the scan in the bulk: bins below ~75 samples
        # are sampling noise, which the delta term absorbs by definition.
        estimate = empirical_epsilon(
            mech, 0.0, gap,
            num_samples=15_000, num_bins=40, mass_floor=5e-3, random_state=0,
        )
        bound = marginal_laplace_epsilon(lambda2, gap)
        assert estimate.epsilon <= bound + 0.3

    def test_comparison_with_paper_accounting(self):
        # For moderate delta, the pure marginal bound can be *tighter*
        # than the paper's (eps, delta) accounting at equal lambda2 —
        # the reproduction's analytic observation.
        lambda2, sensitivity = 1.0, 1.0
        pure = marginal_laplace_epsilon(lambda2, sensitivity)
        paper_small_delta = epsilon_of_mechanism(lambda2, sensitivity, 0.05)
        assert pure < paper_small_delta

    def test_output_marginal_is_laplace(self):
        # KS-style check: output CDF of the mechanism on input 0 matches
        # the Laplace CDF with scale 1/sqrt(2 lambda2).
        lambda2 = 0.8
        rng = np.random.default_rng(0)
        n = 200_000
        variances = rng.exponential(1.0 / lambda2, size=n)
        outputs = rng.standard_normal(n) * np.sqrt(variances)
        b = 1.0 / math.sqrt(2.0 * lambda2)
        xs = np.linspace(-4 * b, 4 * b, 41)
        empirical_cdf = np.searchsorted(np.sort(outputs), xs) / n
        laplace_cdf = np.where(
            xs < 0, 0.5 * np.exp(xs / b), 1.0 - 0.5 * np.exp(-xs / b)
        )
        assert np.abs(empirical_cdf - laplace_cdf).max() < 0.01
