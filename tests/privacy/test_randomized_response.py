"""Tests for the randomized-response extension."""

import math

import numpy as np
import pytest

from repro.privacy.randomized_response import (
    PrivatePreferenceRandomizedResponse,
    RandomizedResponseMechanism,
    debias_vote_counts,
    epsilon_for_keep_probability,
    keep_probability,
)
from repro.truthdiscovery.categorical import (
    CategoricalClaimMatrix,
    WeightedVoting,
    generate_categorical_dataset,
)


class TestKeepProbability:
    def test_formula(self):
        assert keep_probability(math.log(3), 3) == pytest.approx(0.6)

    def test_inverse(self):
        for eps in (0.3, 1.0, 2.5):
            p = keep_probability(eps, 4)
            assert epsilon_for_keep_probability(p, 4) == pytest.approx(eps)

    def test_monotone_in_epsilon(self):
        assert keep_probability(2.0, 3) > keep_probability(0.5, 3)

    def test_approaches_chance_at_zero(self):
        assert keep_probability(1e-9, 5) == pytest.approx(0.2, abs=1e-6)

    def test_below_chance_rejected(self):
        with pytest.raises(ValueError, match="chance"):
            epsilon_for_keep_probability(0.2, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            keep_probability(-1.0, 3)
        with pytest.raises(ValueError):
            keep_probability(1.0, 1)


class TestRandomizedResponseMechanism:
    def test_flip_rate_matches_theory(self):
        claims, _t, _a = generate_categorical_dataset(
            200, 200, 4, random_state=0
        )
        eps = 1.0
        result = RandomizedResponseMechanism(eps).perturb(claims, random_state=1)
        expected_flip = 1.0 - keep_probability(eps, 4)
        assert result.flip_rate == pytest.approx(expected_flip, abs=0.01)

    def test_labels_stay_in_range(self):
        claims, _t, _a = generate_categorical_dataset(30, 30, 3, random_state=0)
        result = RandomizedResponseMechanism(0.5).perturb(claims, random_state=1)
        assert result.perturbed.labels.min() >= 0
        assert result.perturbed.labels.max() < 3

    def test_flips_change_labels(self):
        # A flip always lands on a *different* label.
        claims, _t, _a = generate_categorical_dataset(50, 50, 4, random_state=0)
        result = RandomizedResponseMechanism(1.0).perturb(claims, random_state=2)
        changed = result.perturbed.labels != claims.labels
        np.testing.assert_array_equal(
            changed[claims.mask], result.flipped[claims.mask]
        )

    def test_deterministic(self):
        claims, _t, _a = generate_categorical_dataset(20, 10, 3, random_state=0)
        a = RandomizedResponseMechanism(1.0).perturb(claims, random_state=9)
        b = RandomizedResponseMechanism(1.0).perturb(claims, random_state=9)
        np.testing.assert_array_equal(a.perturbed.labels, b.perturbed.labels)

    def test_pure_ldp_guarantee(self):
        g = RandomizedResponseMechanism(1.5).guarantee()
        assert g.epsilon == 1.5
        assert g.delta == 0.0

    def test_mask_respected(self):
        labels = np.array([[0, 1], [1, 0]])
        mask = np.array([[True, False], [True, True]])
        claims = CategoricalClaimMatrix(labels=labels, num_categories=2, mask=mask)
        result = RandomizedResponseMechanism(0.1).perturb(claims, random_state=0)
        assert result.perturbed.labels[0, 1] == labels[0, 1]  # untouched

    def test_density_ratio_is_bounded(self):
        # Empirical check of Def 4.5 on the discrete domain: report
        # probabilities for two different inputs differ by <= e^eps.
        eps, k = 1.2, 4
        p = keep_probability(eps, k)
        q = (1 - p) / (k - 1)
        for output in range(k):
            for x1 in range(k):
                for x2 in range(k):
                    p1 = p if output == x1 else q
                    p2 = p if output == x2 else q
                    assert p1 <= math.exp(eps) * p2 + 1e-12


class TestPrivatePreference:
    def test_per_user_epsilons_above_floor(self):
        claims, _t, _a = generate_categorical_dataset(100, 10, 3, random_state=0)
        mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.5, rate=2.0)
        result = mech.perturb(claims, random_state=1)
        assert (result.epsilons >= 0.5).all()
        assert result.epsilons.std() > 0  # genuinely heterogeneous

    def test_epsilon_distribution(self):
        claims, _t, _a = generate_categorical_dataset(5000, 2, 3, random_state=0)
        mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.5, rate=2.0)
        result = mech.perturb(claims, random_state=1)
        assert result.epsilons.mean() == pytest.approx(1.0, rel=0.05)

    def test_high_probability_guarantee(self):
        mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.5, rate=2.0)
        g = mech.guarantee(delta=0.05)
        assert g.epsilon == pytest.approx(0.5 + math.log(20) / 2.0)
        assert g.delta == 0.05

    def test_guarantee_empirically_holds(self):
        mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.5, rate=2.0)
        claims, _t, _a = generate_categorical_dataset(
            20_000, 1, 3, random_state=0
        )
        result = mech.perturb(claims, random_state=3)
        g = mech.guarantee(delta=0.05)
        exceed = (result.epsilons > g.epsilon).mean()
        assert exceed <= 0.06

    def test_invalid_delta(self):
        mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.5, rate=2.0)
        with pytest.raises(ValueError):
            mech.guarantee(delta=0.0)


class TestDebias:
    def test_unbiased_recovery(self):
        # Large-sample: debiased counts approximate the true counts.
        claims, truths, _a = generate_categorical_dataset(
            3000, 5, 3, accuracy_low=0.95, accuracy_high=0.99, random_state=0
        )
        eps = 0.8
        perturbed = RandomizedResponseMechanism(eps).perturb(
            claims, random_state=1
        )
        raw = perturbed.perturbed.vote_counts()
        debiased = debias_vote_counts(raw, eps, 3)
        recovered = debiased.argmax(axis=1)
        np.testing.assert_array_equal(recovered, truths)

    def test_clipped_at_zero(self):
        counts = np.array([[100.0, 0.0, 0.0]])
        debiased = debias_vote_counts(counts, 0.5, 3)
        assert (debiased >= 0).all()


class TestEndToEndCategoricalPipeline:
    def test_weighted_voting_survives_rr(self):
        claims, truths, _a = generate_categorical_dataset(
            150, 50, 3, accuracy_low=0.7, accuracy_high=0.95, random_state=0
        )
        perturbed = RandomizedResponseMechanism(1.5).perturb(
            claims, random_state=1
        )
        clean_err = (WeightedVoting().fit(claims).truths != truths).mean()
        private_err = (
            WeightedVoting().fit(perturbed.perturbed).truths != truths
        ).mean()
        assert clean_err <= 0.02
        assert private_err <= 0.25  # degraded but far above chance (0.67)
