"""Tests for noise primitives."""

import math

import numpy as np
import pytest

from repro.privacy.noise import (
    expected_absolute_noise,
    gaussian_absolute_moment,
    lambda2_for_expected_noise,
    sample_exponential_variances,
    sample_gaussian_noise,
)


class TestExponentialVariances:
    def test_shape(self):
        v = sample_exponential_variances(2.0, 100, random_state=0)
        assert v.shape == (100,)
        assert (v > 0).all()

    def test_mean_matches_rate(self):
        v = sample_exponential_variances(2.0, 200_000, random_state=0)
        assert v.mean() == pytest.approx(0.5, rel=0.02)

    def test_deterministic(self):
        a = sample_exponential_variances(1.0, 10, random_state=3)
        b = sample_exponential_variances(1.0, 10, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            sample_exponential_variances(0.0, 10)

    def test_zero_count(self):
        assert sample_exponential_variances(1.0, 0).size == 0


class TestGaussianNoise:
    def test_shape(self):
        noise = sample_gaussian_noise(np.array([1.0, 4.0]), 5, random_state=0)
        assert noise.shape == (2, 5)

    def test_per_row_scale(self):
        variances = np.array([0.01, 100.0])
        noise = sample_gaussian_noise(variances, 50_000, random_state=0)
        assert noise[0].std() == pytest.approx(0.1, rel=0.05)
        assert noise[1].std() == pytest.approx(10.0, rel=0.05)

    def test_zero_variance_row_is_zero(self):
        noise = sample_gaussian_noise(np.array([0.0, 1.0]), 100, random_state=0)
        np.testing.assert_array_equal(noise[0], np.zeros(100))

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_gaussian_noise(np.array([-1.0]), 5)

    def test_2d_variances_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            sample_gaussian_noise(np.ones((2, 2)), 5)


class TestClosedForms:
    def test_expected_absolute_noise_formula(self):
        assert expected_absolute_noise(2.0) == pytest.approx(0.5)
        assert expected_absolute_noise(0.5) == pytest.approx(1.0)

    def test_expected_absolute_noise_monte_carlo(self):
        # E|xi| with delta^2 ~ Exp(lambda2), xi ~ N(0, delta^2).
        rng = np.random.default_rng(0)
        lam = 1.7
        variances = rng.exponential(1.0 / lam, size=400_000)
        noise = rng.standard_normal(400_000) * np.sqrt(variances)
        assert np.abs(noise).mean() == pytest.approx(
            expected_absolute_noise(lam), rel=0.01
        )

    def test_lambda2_inversion(self):
        for magnitude in (0.1, 0.5, 1.0, 2.0):
            lam = lambda2_for_expected_noise(magnitude)
            assert expected_absolute_noise(lam) == pytest.approx(magnitude)

    def test_gaussian_absolute_moment(self):
        assert gaussian_absolute_moment(1.0) == pytest.approx(
            math.sqrt(2.0 / math.pi)
        )
        assert gaussian_absolute_moment(0.0) == 0.0
