"""Write-ahead-log framing, rotation, retention, and damage handling."""

import os

import pytest

from repro.durable import records as rec
from repro.durable.wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    list_segments,
    read_wal,
)


def payload(i):
    return rec.encode_json_payload({"campaign_id": f"c{i}"})


def write_records(directory, count, **kwargs):
    with WriteAheadLog(directory, **kwargs) as wal:
        lsns = [wal.append(rec.REFRESH, payload(i)) for i in range(count)]
    return lsns


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        lsns = write_records(tmp_path, 5)
        assert lsns == [1, 2, 3, 4, 5]
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == lsns
        assert [r.decode()["campaign_id"] for r in scan.records] == [
            f"c{i}" for i in range(5)
        ]
        assert scan.last_lsn == 5
        assert not scan.torn_tail

    def test_after_lsn_filter(self, tmp_path):
        write_records(tmp_path, 6)
        scan = read_wal(tmp_path, after_lsn=4)
        assert [r.lsn for r in scan.records] == [5, 6]
        # last_lsn still reflects the whole log, not the filtered view.
        assert scan.last_lsn == 6

    def test_empty_directory(self, tmp_path):
        scan = read_wal(tmp_path)
        assert scan.records == [] and scan.last_lsn == 0

    def test_unknown_record_type_refused_at_append(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(ValueError, match="unknown record type"):
                wal.append(42, b"")

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_fsync_policies_all_write(self, tmp_path):
        for policy in ("never", "batch", "always"):
            directory = tmp_path / policy
            with WriteAheadLog(directory, fsync=policy) as wal:
                wal.append(rec.REFRESH, payload(0))
                wal.sync()
            assert len(read_wal(directory).records) == 1


class TestRotation:
    def test_segments_rotate_and_names_carry_lsn(self, tmp_path):
        # Each frame is ~50 bytes; a 128-byte cap forces rotation.
        write_records(tmp_path, 10, max_segment_bytes=128)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == list(range(1, 11))

    def test_resume_starts_fresh_segment(self, tmp_path):
        write_records(tmp_path, 3)
        with WriteAheadLog(tmp_path, start_lsn=4) as wal:
            wal.append(rec.REFRESH, payload(3))
        assert len(list_segments(tmp_path)) == 2
        assert [r.lsn for r in read_wal(tmp_path).records] == [1, 2, 3, 4]

    def test_colliding_start_lsn_refused(self, tmp_path):
        write_records(tmp_path, 3)
        with pytest.raises(WalError, match="collides"):
            WriteAheadLog(tmp_path, start_lsn=2)

    def test_retention_drops_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=128) as wal:
            for i in range(10):
                wal.append(rec.REFRESH, payload(i))
            total = len(list_segments(tmp_path))
            assert total > 2
            removed = wal.retain(wal.last_lsn)
            # Everything but the last (possibly active) segment goes.
            assert len(removed) == total - 1
        # Only the final segment's records can remain on disk.
        lsns = [r.lsn for r in read_wal(tmp_path).records]
        assert lsns[-1] == 10 and len(lsns) <= 3

    def test_retention_keeps_uncovered_suffix(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=128) as wal:
            for i in range(10):
                wal.append(rec.REFRESH, payload(i))
            wal.retain(3)
        lsns = [r.lsn for r in read_wal(tmp_path).records]
        assert lsns and lsns[-1] == 10
        # Nothing above the retention point may disappear.
        assert all(lsn > 3 for lsn in lsns) or min(lsns) <= 3


class TestDamage:
    def test_torn_tail_truncated_and_reported(self, tmp_path):
        write_records(tmp_path, 4)
        segment = list_segments(tmp_path)[-1]
        intact = segment.read_bytes()
        segment.write_bytes(intact + b"\x99\x02partial frame")
        scan = read_wal(tmp_path)
        assert scan.torn_tail and scan.truncated_bytes > 0
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4]
        # repair=True restored the intact prefix on disk.
        assert segment.read_bytes() == intact
        assert not read_wal(tmp_path).torn_tail

    def test_repair_false_leaves_file(self, tmp_path):
        write_records(tmp_path, 2)
        segment = list_segments(tmp_path)[-1]
        damaged = segment.read_bytes() + b"xx"
        segment.write_bytes(damaged)
        scan = read_wal(tmp_path, repair=False)
        assert scan.torn_tail
        assert segment.read_bytes() == damaged

    def test_crc_flip_in_tail_is_torn(self, tmp_path):
        write_records(tmp_path, 3)
        segment = list_segments(tmp_path)[-1]
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last record's body
        segment.write_bytes(bytes(data))
        scan = read_wal(tmp_path)
        assert scan.torn_tail
        assert [r.lsn for r in scan.records] == [1, 2]

    def test_corruption_mid_log_raises(self, tmp_path):
        write_records(tmp_path, 6, max_segment_bytes=128)
        segments = list_segments(tmp_path)
        assert len(segments) >= 2
        first = segments[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF  # damage a non-final segment
        first.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="mid-log"):
            read_wal(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        write_records(tmp_path, 2)
        segment = list_segments(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[0] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="bad header"):
            read_wal(tmp_path)

    def test_empty_trailing_segment_is_removed(self, tmp_path):
        write_records(tmp_path, 2)
        # Simulate a crash between segment creation and the magic write.
        orphan = tmp_path / "wal-00000000000000000003.seg"
        orphan.write_bytes(b"RP")
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_tail
        assert not orphan.exists()

    def test_process_kill_between_syncs_keeps_synced_prefix(self, tmp_path):
        # Emulate the "crash" the service cares about: the writer is
        # never closed, but everything up to the last sync survives.
        wal = WriteAheadLog(tmp_path, fsync="batch")
        wal.append(rec.REFRESH, payload(0))
        wal.sync()
        wal.append(rec.REFRESH, payload(1))
        wal.sync()
        # No close(): the object is simply abandoned mid-life.
        del wal
        assert [r.lsn for r in read_wal(tmp_path).records] == [1, 2]

    def test_sync_counts_are_observable(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="batch") as wal:
            wal.append(rec.REFRESH, payload(0))
            wal.sync()
            wal.sync()  # clean: no second physical sync
            assert wal.syncs == 1
            assert wal.records_written == 1
            assert wal.bytes_written > 0
        if os.name == "posix":
            assert list_segments(tmp_path)[0].stat().st_size > 8


class TestConcurrency:
    def test_concurrent_appends_stay_framed_and_monotonic(self, tmp_path):
        import threading

        wal = WriteAheadLog(tmp_path, fsync="never", max_segment_bytes=4096)
        per_thread = 300

        def worker(tag):
            for i in range(per_thread):
                wal.append(rec.CHARGE, payload(i))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        wal.close()
        scan = read_wal(tmp_path)
        lsns = [r.lsn for r in scan.records]
        assert lsns == list(range(1, 6 * per_thread + 1))
        for record in scan.records:
            record.decode()  # every frame intact


class TestFramelessSegments:
    def test_frameless_torn_segment_is_removed(self, tmp_path):
        lsns = write_records(tmp_path, 4)
        # Crash right after rotation: a new segment exists with only
        # the magic (or a torn first frame) and zero intact records.
        from repro.durable.wal import SEGMENT_MAGIC, segment_path

        orphan = segment_path(tmp_path, lsns[-1] + 1)
        orphan.write_bytes(SEGMENT_MAGIC + b"\x40\x00torn first frame")
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == lsns
        assert not orphan.exists()

    def test_resume_after_frameless_torn_segment(self, tmp_path):
        # The full regression: recovery repaired the log, and a resumed
        # writer must be able to reuse the orphaned LSN range.
        lsns = write_records(tmp_path, 4)
        from repro.durable.wal import SEGMENT_MAGIC, segment_path

        orphan = segment_path(tmp_path, lsns[-1] + 1)
        orphan.write_bytes(SEGMENT_MAGIC)
        scan = read_wal(tmp_path)
        assert scan.last_lsn == lsns[-1]
        with WriteAheadLog(tmp_path, start_lsn=scan.last_lsn + 1) as wal:
            wal.append(rec.REFRESH, payload(99))
        assert [r.lsn for r in read_wal(tmp_path).records] == lsns + [
            lsns[-1] + 1
        ]

    def test_writer_replaces_frameless_leftover_even_unrepaired(
        self, tmp_path
    ):
        lsns = write_records(tmp_path, 2)
        from repro.durable.wal import SEGMENT_MAGIC, segment_path

        orphan = segment_path(tmp_path, lsns[-1] + 1)
        orphan.write_bytes(SEGMENT_MAGIC)
        # No read_wal repair pass: the writer itself must cope.
        with WriteAheadLog(tmp_path, start_lsn=lsns[-1] + 1) as wal:
            wal.append(rec.REFRESH, payload(7))
        assert read_wal(tmp_path).last_lsn == lsns[-1] + 1


class TestGapDetection:
    def test_missing_middle_segment_raises(self, tmp_path):
        write_records(tmp_path, 9, max_segment_bytes=128)
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        segments[1].unlink()  # lose a middle segment's records
        with pytest.raises(WalCorruptionError, match="LSN gap"):
            read_wal(tmp_path)

    def test_first_lsn_reported(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=128) as wal:
            for i in range(9):
                wal.append(rec.REFRESH, payload(i))
            wal.retain(4)
        scan = read_wal(tmp_path)
        assert scan.first_lsn >= 1
        assert scan.first_lsn == scan.records[0].lsn
