"""DurabilityManager contract: binding, cadence, spec logging."""

import numpy as np
import pytest

from repro.durable import DurabilityConfig, DurabilityManager
from repro.durable.records import RecordError
from repro.durable.wal import read_wal
from repro.service.ingest import IngestService, ServiceConfig


def chunk(campaign_id, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return (
        campaign_id,
        rng.integers(0, 8, size=n),
        rng.integers(0, 4, size=n),
        rng.normal(size=n),
    )


def make_service(tmp_path, **durability_kwargs):
    manager = DurabilityManager(
        DurabilityConfig(directory=tmp_path, **durability_kwargs)
    )
    service = IngestService(
        ServiceConfig(num_shards=1, max_batch=64), durability=manager
    )
    return service, manager


class TestConfigValidation:
    def test_bad_fsync(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            DurabilityConfig(directory=tmp_path, fsync="yes please")

    def test_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every_claims"):
            DurabilityConfig(directory=tmp_path, checkpoint_every_claims=-1)

    def test_path_shortcut(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        assert manager.config.fsync == "batch"
        manager.close()


class TestBinding:
    def test_attach_after_register_is_refused(self, tmp_path):
        service = IngestService(ServiceConfig(num_shards=1))
        service.register_campaign("early", ["a"], max_users=2)
        manager = DurabilityManager(tmp_path)
        with pytest.raises(ValueError, match="before durability"):
            service.attach_durability(manager)
        manager.close()

    def test_double_attach_is_refused(self, tmp_path):
        service, manager = make_service(tmp_path)
        other = DurabilityManager(tmp_path / "other")
        with pytest.raises(RuntimeError, match="already attached"):
            service.attach_durability(other)
        manager.close()
        other.close()

    def test_checkpoint_requires_bound_service(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        with pytest.raises(RuntimeError, match="bind"):
            manager.checkpoint()
        manager.close()

    def test_bind_writes_config_record(self, tmp_path):
        _service, manager = make_service(tmp_path)
        manager.sync()
        records = read_wal(tmp_path).records
        assert records and records[0].decode()["service_config"][
            "num_shards"
        ] == 1
        manager.close()


class TestLogging:
    def test_unserialisable_method_kwargs_rejected(self, tmp_path):
        service, manager = make_service(tmp_path)
        with pytest.raises(RecordError, match="JSON-serialisable"):
            service.register_campaign(
                "c", ["a"], max_users=2, bad_kwarg=object()
            )
        # The failed registration must leave no phantom campaign behind:
        # the manager tracks nothing, and checkpoints keep working.
        assert manager.known_campaigns == set()
        assert manager.checkpoint().exists()
        manager.close()

    def test_known_campaigns_track_lifecycle(self, tmp_path):
        service, manager = make_service(tmp_path)
        service.register_campaign("c1", ["a", "b"], max_users=4)
        assert manager.known_campaigns == {"c1"}
        service.unregister_campaign("c1")
        assert manager.known_campaigns == set()
        manager.close()

    def test_batches_counted(self, tmp_path):
        service, manager = make_service(tmp_path)
        service.register_campaign("c1", list(range(4)), max_users=8)
        service.submit_columns(*chunk("c1", n=200))
        service.pump()
        assert manager.batches_logged == 200 // 64
        assert manager.claims_logged == (200 // 64) * 64
        service.flush()  # force the partial batch out
        assert manager.claims_logged == 200
        manager.close()


class TestCheckpointCadence:
    def test_auto_checkpoint_fires_on_claim_cadence(self, tmp_path):
        service, manager = make_service(
            tmp_path, checkpoint_every_claims=128
        )
        service.register_campaign("c1", list(range(4)), max_users=8)
        for seed in range(4):
            service.submit_columns(*chunk("c1", n=64, seed=seed))
            service.pump()
        assert manager.checkpoints_written >= 1
        assert manager.checkpoints.load_latest() is not None
        manager.close()

    def test_manual_mode_never_auto_checkpoints(self, tmp_path):
        service, manager = make_service(tmp_path)
        service.register_campaign("c1", list(range(4)), max_users=8)
        service.submit_columns(*chunk("c1", n=640))
        service.flush()
        assert manager.checkpoints_written == 0
        path = manager.checkpoint()
        assert path.exists()
        manager.close()
