"""Policy-driven background compaction: policy, daemon, manager wiring.

The daemon's contract is deliberately narrow — it *requests* compaction
(a flag) and the pump thread *runs* it inside ``after_pump`` — so the
tests split the same way: policy evaluation against real segment
files, the request/claim/record lifecycle without any thread, and the
full loop through a live :class:`IngestService`.
"""

import time

import pytest

from repro.durable import (
    CompactionDaemon,
    CompactionPolicy,
    DurabilityConfig,
    DurabilityManager,
    WriteAheadLog,
)
from repro.durable.records import BATCH
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.loadgen import LoadGenerator
from repro.service.topology import Topology

CHUNK = 128


def write_segments(directory, *, records=20, payload=b"x" * 200):
    with WriteAheadLog(directory, fsync="never") as wal:
        for _ in range(records):
            wal.append(BATCH, payload)
        wal.sync()


# --------------------------------------------------------------- policy
class TestCompactionPolicy:
    def test_both_triggers_disabled_rejected(self):
        with pytest.raises(ValueError, match="never trigger"):
            CompactionPolicy(
                max_wal_bytes=None, max_record_age_seconds=None
            )

    def test_non_positive_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CompactionPolicy(max_wal_bytes=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_record_age_seconds=-1.0)
        with pytest.raises(ValueError):
            CompactionPolicy(min_interval_seconds=0.0)

    def test_empty_directory_never_triggers(self, tmp_path):
        policy = CompactionPolicy(max_wal_bytes=1)
        assert policy.evaluate(tmp_path, time.time()) is None

    def test_size_trigger(self, tmp_path):
        write_segments(tmp_path)
        policy = CompactionPolicy(max_wal_bytes=512)
        reason = policy.evaluate(tmp_path, time.time())
        assert reason is not None and "wal size" in reason
        roomy = CompactionPolicy(max_wal_bytes=1024 * 1024 * 1024)
        assert roomy.evaluate(tmp_path, time.time()) is None

    def test_age_trigger(self, tmp_path):
        write_segments(tmp_path)
        policy = CompactionPolicy(
            max_wal_bytes=None, max_record_age_seconds=60.0
        )
        now = time.time()
        assert policy.evaluate(tmp_path, now) is None
        reason = policy.evaluate(tmp_path, now + 3600.0)
        assert reason is not None and "oldest segment" in reason


# --------------------------------------------------------------- daemon
class TestCompactionDaemon:
    def fast_daemon(self, directory, **overrides):
        policy = CompactionPolicy(
            max_wal_bytes=overrides.pop("max_wal_bytes", 512),
            min_interval_seconds=overrides.pop(
                "min_interval_seconds", 0.01
            ),
            check_interval_seconds=0.01,
            **overrides,
        )
        return CompactionDaemon(directory, policy)

    def test_trigger_take_record_lifecycle(self, tmp_path):
        write_segments(tmp_path)
        daemon = self.fast_daemon(tmp_path)
        time.sleep(0.02)  # past the min-interval floor from __init__
        reason = daemon.evaluate_once()
        assert reason is not None
        stats = daemon.stats()
        assert stats["policy_triggers"] == 1
        assert stats["pending"] is True
        assert stats["last_reason"] == reason
        # A second evaluation while pending must not double-trigger.
        daemon.evaluate_once()
        assert daemon.stats()["policy_triggers"] == 1

        assert daemon.take_request() == reason
        assert daemon.take_request() is None  # claimed exactly once
        daemon.record_compaction({"bytes_reclaimed": 4096})
        stats = daemon.stats()
        assert stats["compactions_run"] == 1
        assert stats["bytes_reclaimed"] == 4096
        assert stats["pending"] is False

    def test_min_interval_floors_retriggering(self, tmp_path):
        write_segments(tmp_path)
        daemon = self.fast_daemon(
            tmp_path, min_interval_seconds=3600.0
        )
        # _last_compaction starts at construction time, so a fresh
        # daemon with a tall floor must stay quiet even over threshold.
        assert daemon.evaluate_once() is None
        assert daemon.stats()["policy_triggers"] == 0

    def test_thread_evaluates_on_cadence(self, tmp_path):
        write_segments(tmp_path)
        daemon = self.fast_daemon(tmp_path)
        daemon.start()
        try:
            deadline = time.monotonic() + 10.0
            while daemon.stats()["policy_triggers"] < 1:
                assert time.monotonic() < deadline, "never triggered"
                time.sleep(0.01)
        finally:
            daemon.stop()
        assert daemon.stats()["evaluations"] >= 1

    def test_double_start_rejected(self, tmp_path):
        daemon = self.fast_daemon(tmp_path)
        daemon.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                daemon.start()
        finally:
            daemon.stop()


# ------------------------------------------------------- manager wiring
class TestManagerWiring:
    def test_policy_compaction_runs_on_the_pump(self, tmp_path):
        gen = LoadGenerator(
            "cd-c0", num_users=40, num_objects=12, random_state=3
        )
        config = DurabilityConfig(
            directory=tmp_path / "wal",
            fsync="never",
            checkpoint_every_claims=4 * CHUNK,
            compaction=CompactionPolicy(
                max_wal_bytes=16 * 1024,
                min_interval_seconds=0.05,
                check_interval_seconds=0.02,
            ),
        )
        service = IngestService(
            ServiceConfig(num_shards=2, max_batch=CHUNK),
            topology=Topology.in_process(durability=config),
        )
        try:
            manager = service.durability
            daemon = manager.compaction_daemon
            assert daemon is not None
            service.register_campaign(
                gen.campaign_id,
                gen.object_ids,
                max_users=40,
                user_ids=gen.user_ids,
            )
            chunks = gen.column_chunks(64 * CHUNK, chunk_size=CHUNK)
            deadline = time.monotonic() + 60.0
            compacted = False
            for chunk in chunks:
                service.submit_columns(
                    chunk.campaign_id,
                    chunk.user_slots,
                    chunk.object_slots,
                    chunk.values,
                )
                service.pump()
                if daemon.stats()["compactions_run"] >= 1:
                    compacted = True
                    break
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert compacted, daemon.stats()
            stats = daemon.stats()
            assert stats["policy_triggers"] >= 1
            assert stats["bytes_reclaimed"] > 0
            assert "wal size" in stats["last_reason"]
            # The service after compaction still aggregates sanely and
            # the daemon flag was consumed by the pump.
            snapshot = service.snapshot(gen.campaign_id)
            assert snapshot.claims_ingested > 0
        finally:
            service.close()

    def test_no_policy_no_daemon(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp_path / "wal")
        )
        try:
            assert manager.compaction_daemon is None
        finally:
            manager.close()

    def test_close_stops_daemon_thread(self, tmp_path):
        config = DurabilityConfig(
            directory=tmp_path / "wal",
            compaction=CompactionPolicy(max_wal_bytes=1024),
        )
        service = IngestService(
            ServiceConfig(num_shards=1, max_batch=CHUNK),
            topology=Topology.in_process(durability=config),
        )
        daemon = service.durability.compaction_daemon
        service.close()
        assert daemon is not None
        assert daemon._thread is None  # joined by close()
