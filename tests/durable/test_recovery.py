"""Crash-recovery integration tests: kill, recover, compare bitwise."""

import numpy as np
import pytest

from repro.durable import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryError,
    RecoveryManager,
)
from repro.durable import records as rec
from repro.durable.wal import list_segments
from repro.privacy.ldp import LDPGuarantee
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.ledger import BudgetLedger
from repro.service.loadgen import LoadGenerator

#: Chunk size equals the micro-batch size, so every pump leaves the
#: batcher empty: a crash between pumps then loses nothing, which is
#: what makes exact mid-stream comparisons possible.
CHUNK = 128
NUM_USERS = 40
NUM_OBJECTS = 12


def service_config():
    return ServiceConfig(num_shards=2, max_batch=CHUNK)


def make_traffic(total_chunks=24, seed=5):
    gen = LoadGenerator(
        "recov-c0",
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=seed,
    )
    chunks = list(
        gen.column_chunks(total_chunks * CHUNK, chunk_size=CHUNK)
    )
    return gen, chunks


def register(service, gen, cost=None, **kwargs):
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
        cost=cost,
        **kwargs,
    )


def feed(service, chunks):
    for chunk in chunks:
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()


def durable_service(tmp_path, **durability_kwargs):
    manager = DurabilityManager(
        DurabilityConfig(directory=tmp_path, **durability_kwargs)
    )
    service = IngestService(service_config(), durability=manager)
    return service, manager


class TestKillAndRecover:
    def test_mid_stream_crash_recovers_bitwise(self, tmp_path):
        """The acceptance test: crash mid-stream, recover, finish the
        stream; mid-point and final truths match the uncrashed run
        bit-for-bit on the replayed batches."""
        gen, chunks = make_traffic()
        crash_at = len(chunks) // 2

        # Uncrashed reference (no durability, same pipeline).
        reference = IngestService(service_config())
        register(reference, gen)
        feed(reference, chunks[:crash_at])
        ref_mid = reference.snapshot(gen.campaign_id)
        feed(reference, chunks[crash_at:])
        reference.flush()
        ref_final = reference.snapshot(gen.campaign_id)

        # Crashed run: same traffic, killed after crash_at chunks.  No
        # flush, no close — the service object is simply abandoned.
        crashed, _manager = durable_service(tmp_path)
        register(crashed, gen)
        feed(crashed, chunks[:crash_at])
        del crashed, _manager  # the "kill"

        recovered = RecoveryManager(tmp_path).recover(resume=True)
        service = recovered.service
        mid = service.snapshot(gen.campaign_id)
        assert mid.truths.tobytes() == ref_mid.truths.tobytes()
        assert mid.claims_ingested == ref_mid.claims_ingested
        assert mid.weights_by_user == ref_mid.weights_by_user

        # The recovered service keeps serving: finish the stream.
        feed(service, chunks[crash_at:])
        service.flush()
        final = service.snapshot(gen.campaign_id)
        assert final.truths.tobytes() == ref_final.truths.tobytes()
        assert final.claims_ingested == ref_final.claims_ingested
        assert final.weights_by_user == ref_final.weights_by_user
        np.testing.assert_array_equal(
            final.seen_objects, ref_final.seen_objects
        )
        recovered.durability.close()

    def test_register_record_persists_resolved_backend(self, tmp_path):
        """REGISTER records store the resolved backend kind, never
        "auto": replay must rebuild the same backend even if the
        auto-selection rules change between write and recovery."""
        from repro.durable.wal import read_wal
        from repro.service.aggregator import StreamingAggregator

        big = LoadGenerator(
            "recov-auto", num_users=200, num_objects=48, random_state=3
        )
        service, manager = durable_service(tmp_path)
        service.register_campaign(
            big.campaign_id,
            big.object_ids,
            max_users=200,
            user_ids=big.user_ids,
            method="gtm",
            aggregator="auto",
        )
        live_kind = type(
            service.campaign_state(big.campaign_id).aggregator
        )
        assert live_kind is StreamingAggregator
        manager.sync()
        specs = [
            r.decode()
            for r in read_wal(tmp_path).records
            if r.rtype == rec.REGISTER
        ]
        assert specs[0]["aggregator"] == "streaming"
        del service, manager

        recovered = RecoveryManager(tmp_path).recover()
        state = recovered.service.campaign_state(big.campaign_id)
        assert type(state.aggregator) is live_kind

    def test_legacy_auto_spec_replays_with_v1_rule(self, tmp_path):
        """Format-v1 REGISTER records stored aggregator="auto"; replay
        must resolve them with the v1 rule (only large plain-CRH
        campaigns streamed) so the rebuilt backend matches the state
        the v1 service checkpointed and the semantics it served."""
        from repro.service.aggregator import (
            FullRefitAggregator,
            StreamingAggregator,
        )
        from repro.service.ingest import IngestService

        service = IngestService(service_config())
        legacy_spec = {
            "campaign_id": "legacy-gtm",
            "object_ids": [f"o{i}" for i in range(48)],
            "max_users": 200,  # 9600 cells: streams under the NEW rule
            "user_ids": None,
            "method": "gtm",
            "aggregator": "auto",
            "cost": None,
            "method_kwargs": {},
        }
        RecoveryManager._register_from_spec(service, legacy_spec)
        state = service.campaign_state("legacy-gtm")
        assert isinstance(state.aggregator, FullRefitAggregator)
        # Large plain CRH streamed in v1 — that must survive too, and
        # v1 silently dropped batch-only kwargs on its streaming path,
        # so a spec carrying them must replay (kwargs dropped again)
        # rather than fail the whole directory.
        RecoveryManager._register_from_spec(
            service,
            {
                **legacy_spec,
                "campaign_id": "legacy-crh",
                "method": "crh",
                "method_kwargs": {"distance": "squared"},
            },
        )
        state = service.campaign_state("legacy-crh")
        assert isinstance(state.aggregator, StreamingAggregator)

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_streaming_method_campaign_recovers_bitwise(
        self, tmp_path, method
    ):
        """ISSUE-4: crash recovery must reproduce the GTM/CATD
        streaming backends bit-for-bit, through both the checkpointed
        state (moment statistics in the npz) and WAL suffix replay."""
        kwargs = dict(method=method, aggregator="streaming")
        gen, chunks = make_traffic(total_chunks=12)
        crash_at = 8

        reference = IngestService(service_config())
        register(reference, gen, **kwargs)
        feed(reference, chunks[:crash_at])
        ref_mid = reference.snapshot(gen.campaign_id)
        feed(reference, chunks[crash_at:])
        reference.flush()
        ref_final = reference.snapshot(gen.campaign_id)

        crashed, manager = durable_service(tmp_path)
        register(crashed, gen, **kwargs)
        feed(crashed, chunks[:4])
        # Checkpoint mid-stream so recovery exercises the snapshot
        # restore path for the moment statistics, then keep streaming
        # so the WAL-replay path is exercised too.
        manager.checkpoint()
        feed(crashed, chunks[4:crash_at])
        del crashed, manager  # the "kill"

        recovered = RecoveryManager(tmp_path).recover(resume=True)
        service = recovered.service
        mid = service.snapshot(gen.campaign_id)
        assert mid.truths.tobytes() == ref_mid.truths.tobytes()
        assert mid.weights_by_user == ref_mid.weights_by_user

        feed(service, chunks[crash_at:])
        service.flush()
        final = service.snapshot(gen.campaign_id)
        assert final.truths.tobytes() == ref_final.truths.tobytes()
        assert final.claims_ingested == ref_final.claims_ingested
        assert final.weights_by_user == ref_final.weights_by_user
        recovered.durability.close()

    def test_recovery_is_idempotent(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=8)
        service, manager = durable_service(tmp_path)
        register(service, gen)
        feed(service, chunks)
        live = service.snapshot(gen.campaign_id)
        manager.sync()
        del service, manager

        first = RecoveryManager(tmp_path).recover()
        second = RecoveryManager(tmp_path).recover()
        for recovered in (first, second):
            snap = recovered.service.snapshot(gen.campaign_id)
            assert snap.truths.tobytes() == live.truths.tobytes()

    def test_crash_after_recovery_recovers_again(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=12)
        service, _ = durable_service(tmp_path)
        register(service, gen)
        feed(service, chunks[:4])
        del service

        recovered = RecoveryManager(tmp_path).recover(resume=True)
        feed(recovered.service, chunks[4:8])
        del recovered  # second crash, durability never closed

        final = RecoveryManager(tmp_path).recover()
        snap = final.service.snapshot(gen.campaign_id)
        assert snap.claims_ingested == 8 * CHUNK

    def test_protocol_path_contributors_survive(self, tmp_path):
        gen, _ = make_traffic()
        service, _manager = durable_service(tmp_path)
        # No pre-registered user ids: slots are assigned on first
        # submission and must be re-learned from USERS records.
        service.register_campaign(
            gen.campaign_id, gen.object_ids, max_users=NUM_USERS
        )
        submissions = gen.submissions(60)
        for submission in submissions:
            service.submit(submission)
        service.pump()
        live = service.snapshot(gen.campaign_id)
        del service, _manager

        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert snap.truths.tobytes() == live.truths.tobytes()
        assert set(snap.weights_by_user) == set(live.weights_by_user)
        assert not any(u.startswith("slot:") for u in snap.weights_by_user)


class TestCheckpoints:
    def test_checkpoint_plus_suffix_matches_full_replay(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=20)
        service, manager = durable_service(
            tmp_path, checkpoint_every_claims=6 * CHUNK
        )
        register(service, gen)
        feed(service, chunks)
        live = service.snapshot(gen.campaign_id)
        assert manager.checkpoints_written >= 2
        del service, manager

        recovered = RecoveryManager(tmp_path).recover()
        assert recovered.report.checkpoint_lsn > 0
        # Only the suffix was replayed, not the whole stream.
        assert recovered.report.claims_replayed < len(chunks) * CHUNK
        snap = recovered.service.snapshot(gen.campaign_id)
        assert snap.truths.tobytes() == live.truths.tobytes()
        assert snap.claims_ingested == live.claims_ingested
        assert snap.weights_by_user == live.weights_by_user

    def test_retention_prunes_covered_segments(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=20)
        service, manager = durable_service(
            tmp_path,
            checkpoint_every_claims=4 * CHUNK,
            max_segment_bytes=4096,
        )
        register(service, gen)
        feed(service, chunks)
        segments = list_segments(tmp_path)
        # Without retention ~20 chunks * ~1.2KiB would span many more.
        assert len(segments) < 6
        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert snap.claims_ingested == service.snapshot(
            gen.campaign_id
        ).claims_ingested
        manager.close()

    def test_corrupt_checkpoint_falls_back_to_older(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=12)
        service, manager = durable_service(
            tmp_path, checkpoint_every_claims=4 * CHUNK
        )
        register(service, gen)
        feed(service, chunks)
        live = service.snapshot(gen.campaign_id)
        paths = manager.checkpoints.paths()
        assert len(paths) >= 2
        paths[-1].write_bytes(b"torn checkpoint")
        del service, manager

        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert snap.truths.tobytes() == live.truths.tobytes()


def submission_for(gen, user_id):
    from repro.crowdsensing.messages import ClaimSubmission

    return ClaimSubmission(
        campaign_id=gen.campaign_id,
        user_id=user_id,
        object_ids=gen.object_ids[:2],
        values=(1.0, 2.0),
    )


class TestLedgerContinuity:
    def test_recovered_ledger_refuses_over_budget_users(self, tmp_path):
        gen, _ = make_traffic()
        cost = LDPGuarantee(epsilon=0.4, delta=0.0)
        manager = DurabilityManager(DurabilityConfig(directory=tmp_path))
        ledger = BudgetLedger(epsilon_cap=1.0)
        service = IngestService(
            service_config(), ledger=ledger, durability=manager
        )
        register(service, gen, cost=cost)
        submission = submission_for(gen, "user0")
        assert service.submit(submission).ok
        assert service.submit(submission).ok
        service.pump()
        spent_live = ledger.spent("user0")
        assert spent_live.epsilon == pytest.approx(0.8)
        del service, manager, ledger

        recovered = RecoveryManager(tmp_path).recover()
        rledger = recovered.service.ledger
        assert rledger is not None
        assert rledger.spent("user0") == spent_live
        # One more 0.4-epsilon release for a user who already spent
        # 0.8 would breach the 1.0 cap: the recovered ledger must say no.
        result = recovered.service.submit(submission)
        assert not result.ok and result.reason == "budget"

    def test_exhausted_user_stays_exhausted_after_recovery(self, tmp_path):
        gen, _ = make_traffic()
        cost = LDPGuarantee(epsilon=0.6, delta=0.0)
        manager = DurabilityManager(DurabilityConfig(directory=tmp_path))
        service = IngestService(
            service_config(),
            ledger=BudgetLedger(epsilon_cap=1.0),
            durability=manager,
        )
        register(service, gen, cost=cost)
        submission = submission_for(gen, "user1")
        assert service.submit(submission).ok
        assert not service.submit(submission).ok  # 1.2 > cap
        service.pump()
        del service, manager

        recovered = RecoveryManager(tmp_path).recover()
        assert not recovered.service.submit(submission).ok
        assert recovered.service.ledger.spent("user1").epsilon == (
            pytest.approx(0.6)
        )


class TestEdges:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no durability directory"):
            RecoveryManager(tmp_path / "nope").recover()

    def test_empty_directory_yields_empty_service(self, tmp_path):
        recovered = RecoveryManager(tmp_path).recover()
        assert recovered.service.campaign_ids == []
        assert recovered.report.records_replayed == 0

    def test_unregistered_campaign_not_recovered(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=4)
        service, _manager = durable_service(tmp_path)
        register(service, gen)
        service.register_campaign("doomed", ["a", "b"], max_users=4)
        feed(service, chunks)
        service.unregister_campaign("doomed")
        del service, _manager

        recovered = RecoveryManager(tmp_path).recover()
        assert recovered.service.campaign_ids == [gen.campaign_id]

    def test_torn_tail_is_survivable(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=6)
        service, manager = durable_service(tmp_path)
        register(service, gen)
        feed(service, chunks)
        live = service.snapshot(gen.campaign_id)
        manager.sync()
        segment = list_segments(tmp_path)[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\x13half a frame that the crash cut")
        del service, manager

        recovered = RecoveryManager(tmp_path).recover()
        assert recovered.report.truncated_bytes > 0
        snap = recovered.service.snapshot(gen.campaign_id)
        assert snap.truths.tobytes() == live.truths.tobytes()

    def test_recovered_config_matches_original(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=2)
        service, _manager = durable_service(tmp_path)
        register(service, gen)
        feed(service, chunks)
        del service, _manager

        recovered = RecoveryManager(tmp_path).recover()
        assert recovered.service.config == service_config()


class TestGapSafety:
    def test_lost_checkpoint_after_retention_fails_loudly(self, tmp_path):
        """If the only checkpoint covering pruned segments is lost,
        recovery must refuse rather than silently skip the gap."""
        gen, chunks = make_traffic(total_chunks=16)
        service, manager = durable_service(
            tmp_path,
            checkpoint_every_claims=4 * CHUNK,
            max_segment_bytes=2048,
        )
        register(service, gen)
        feed(service, chunks)
        assert manager.checkpoints_written >= 2
        # Retention has pruned early segments by now; losing every
        # checkpoint leaves records 1..N unrecoverable.
        for path in manager.checkpoints.paths():
            path.unlink()
        del service, manager
        with pytest.raises(RecoveryError, match="log gap"):
            RecoveryManager(tmp_path).recover()

    def test_budget_conserved_across_concurrent_crash_recovery(
        self, tmp_path
    ):
        """Concurrent producers + auto-checkpoints: recovered spent
        budget equals the live ledger exactly (no charge lost to the
        checkpoint/suffix boundary)."""
        import threading

        gen, _ = make_traffic()
        cost = LDPGuarantee(epsilon=0.0001, delta=0.0)
        manager = DurabilityManager(
            DurabilityConfig(
                directory=tmp_path, checkpoint_every_claims=2 * CHUNK
            )
        )
        ledger = BudgetLedger(epsilon_cap=1e9)
        service = IngestService(
            service_config(), ledger=ledger, durability=manager
        )
        register(service, gen, cost=cost)

        stop = threading.Event()

        def producer(seed):
            rng = __import__("numpy").random.default_rng(seed)
            for _ in range(80):
                service.submit_columns(
                    gen.campaign_id,
                    rng.integers(0, NUM_USERS, size=CHUNK),
                    rng.integers(0, NUM_OBJECTS, size=CHUNK),
                    rng.normal(size=CHUNK),
                )

        def pump_loop():
            while not stop.is_set():
                service.pump()

        pumper = threading.Thread(target=pump_loop)
        producers = [
            threading.Thread(target=producer, args=(s,)) for s in range(4)
        ]
        pumper.start()
        for t in producers:
            t.start()
        for t in producers:
            t.join(timeout=60)
            assert not t.is_alive()
        stop.set()
        pumper.join(timeout=60)
        service.pump()
        manager.sync()
        live_spent = {
            f"user{i}": ledger.spent(f"user{i}").epsilon
            for i in range(NUM_USERS)
        }
        del service, manager, ledger

        recovered = RecoveryManager(tmp_path).recover()
        rledger = recovered.service.ledger
        for user_id, eps in live_spent.items():
            assert rledger.spent(user_id).epsilon == pytest.approx(
                eps, abs=1e-12
            ), f"budget drifted for {user_id}"
