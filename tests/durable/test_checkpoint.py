"""Checkpoint store: atomic save/load, pruning, corruption fallback."""

import numpy as np
import pytest

from repro.durable.checkpoint import CheckpointError, CheckpointStore


def payload(tag="x"):
    return {
        "tag": tag,
        "nested": {
            "ints": [1, 2, 3],
            "matrix": np.arange(12.0).reshape(3, 4) / 7.0,
            "mask": np.array([True, False, True]),
        },
        "rows": [{"slots": np.arange(4, dtype=np.int64)}, {"empty": None}],
    }


class TestRoundTrip:
    def test_arrays_survive_bitwise(self, tmp_path):
        store = CheckpointStore(tmp_path)
        original = payload()
        store.save(7, original)
        loaded = store.load_latest()
        assert loaded.lsn == 7
        matrix = loaded.payload["nested"]["matrix"]
        assert matrix.tobytes() == original["nested"]["matrix"].tobytes()
        np.testing.assert_array_equal(
            loaded.payload["nested"]["mask"], original["nested"]["mask"]
        )
        np.testing.assert_array_equal(
            loaded.payload["rows"][0]["slots"], original["rows"][0]["slots"]
        )
        assert loaded.payload["rows"][1]["empty"] is None
        assert loaded.payload["tag"] == "x"

    def test_numpy_scalars_become_python(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {"n": np.int64(5), "f": np.float64(0.25)})
        loaded = store.load_latest()
        assert loaded.payload == {"n": 5, "f": 0.25}

    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None
        assert CheckpointStore(tmp_path / "missing").paths() == []

    def test_unserialisable_payload_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="JSON-serialisable"):
            CheckpointStore(tmp_path).save(1, {"bad": object()})

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="reserved key"):
            CheckpointStore(tmp_path).save(1, {"d": {"__nd__": "a0"}})


class TestLifecycle:
    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for lsn in (1, 5, 9, 12):
            store.save(lsn, payload(str(lsn)))
        names = [p.name for p in store.paths()]
        assert len(names) == 2
        assert store.load_latest().lsn == 12

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(3, payload("old"))
        newest = store.save(8, payload("new"))
        newest.write_bytes(b"this is not an npz file")
        loaded = store.load_latest()
        assert loaded.lsn == 3
        assert loaded.payload["tag"] == "old"

    def test_truncated_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(3, payload("old"))
        newest = store.save(8, payload("new"))
        newest.write_bytes(newest.read_bytes()[:40])
        assert store.load_latest().lsn == 3

    def test_no_tmp_leftovers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, payload())
        assert not list(tmp_path.glob("*.tmp"))
