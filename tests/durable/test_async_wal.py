"""Async group commit: writer thread, durable-ack watermark, crashes."""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.durable import records as rec
from repro.durable.wal import (
    WalError,
    WriteAheadLog,
    list_segments,
    read_wal,
)

PAYLOAD = rec.encode_json_payload({"campaign_id": "c"})


class TestAsyncRoundTrip:
    @pytest.mark.parametrize("fsync", ["never", "batch", "always"])
    def test_append_sync_read_back(self, tmp_path, fsync):
        with WriteAheadLog(
            tmp_path, fsync=fsync, async_commit=True
        ) as wal:
            lsns = [wal.append(rec.REFRESH, PAYLOAD) for _ in range(40)]
            wal.sync()
            assert wal.durable_lsn == lsns[-1]
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == lsns
        for record in scan.records:
            assert record.decode()["campaign_id"] == "c"

    def test_close_drains_without_explicit_sync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", async_commit=True)
        for _ in range(25):
            wal.append(rec.REFRESH, PAYLOAD)
        wal.close()
        assert [r.lsn for r in read_wal(tmp_path).records] == list(
            range(1, 26)
        )

    def test_rotation_under_async_commit(self, tmp_path):
        with WriteAheadLog(
            tmp_path,
            fsync="never",
            async_commit=True,
            max_segment_bytes=256,
        ) as wal:
            for _ in range(30):
                wal.append(rec.REFRESH, PAYLOAD)
            wal.sync()
        assert len(list_segments(tmp_path)) > 1
        assert [r.lsn for r in read_wal(tmp_path).records] == list(
            range(1, 31)
        )

    def test_multi_part_payload_identical_to_concatenated(self, tmp_path):
        users = np.arange(6, dtype=np.int64)
        objects = np.arange(6, dtype=np.int64)
        values = np.linspace(0.0, 1.0, 6)
        item = rec.WorkItem(
            campaign_id="camp",
            user_slots=users,
            object_slots=objects,
            values=values,
        )
        parts = rec.encode_batch_parts(
            rec.campaign_id_prefix("camp"), users, objects, values
        )
        assert b"".join(bytes(p) for p in parts) == item.to_bytes()
        with WriteAheadLog(
            tmp_path, fsync="batch", async_commit=True
        ) as wal:
            wal.append(rec.BATCH, parts)
            wal.sync()
        decoded = read_wal(tmp_path).records[0].decode()
        assert decoded.campaign_id == "camp"
        assert np.array_equal(decoded.values, values)

    def test_multi_part_payload_sync_mode_too(self, tmp_path):
        users = np.arange(4, dtype=np.int64)
        values = np.full(4, 2.5)
        parts = rec.encode_batch_parts(
            rec.campaign_id_prefix("s"), users, users, values
        )
        with WriteAheadLog(tmp_path, fsync="batch") as wal:
            wal.append(rec.BATCH, parts)
            wal.sync()
        decoded = read_wal(tmp_path).records[0].decode()
        assert np.array_equal(decoded.values, values)


class TestDurableAck:
    def test_watermark_monotone_and_ackable(self, tmp_path):
        with WriteAheadLog(
            tmp_path, fsync="batch", async_commit=True
        ) as wal:
            assert wal.durable_lsn == 0
            lsn = None
            for _ in range(10):
                lsn = wal.append(rec.REFRESH, PAYLOAD)
            assert wal.wait_durable(lsn, timeout=10.0)
            assert wal.durable_lsn >= lsn
            before = wal.durable_lsn
            assert wal.wait_durable(before)  # idempotent
            assert wal.durable_lsn >= before

    def test_wait_durable_timeout_for_unappended_lsn(self, tmp_path):
        with WriteAheadLog(
            tmp_path, fsync="batch", async_commit=True
        ) as wal:
            wal.append(rec.REFRESH, PAYLOAD)
            assert not wal.wait_durable(99, timeout=0.05)

    def test_request_sync_commits_in_background(self, tmp_path):
        with WriteAheadLog(
            tmp_path, fsync="batch", async_commit=True
        ) as wal:
            lsn = wal.append(rec.REFRESH, PAYLOAD)
            wal.request_sync()  # non-blocking
            assert wal.wait_durable(lsn, timeout=10.0)
            assert wal.groups_committed >= 1
            assert wal.commit_seconds >= 0.0
            assert len(wal.commit_latencies) >= 1

    def test_sync_mode_watermark_advances_at_sync_points(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="batch") as wal:
            lsn = wal.append(rec.REFRESH, PAYLOAD)
            assert wal.durable_lsn < lsn
            assert wal.wait_durable(lsn)
            assert wal.durable_lsn == lsn

    def test_sync_mode_always_durable_on_append(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            lsn = wal.append(rec.REFRESH, PAYLOAD)
            assert wal.durable_lsn == lsn


class TestWriterFailure:
    def test_io_error_surfaces_on_next_sync_and_close(
        self, tmp_path, monkeypatch
    ):
        wal = WriteAheadLog(tmp_path, fsync="batch", async_commit=True)

        def boom(fd):
            raise OSError("disk gone")

        monkeypatch.setattr("repro.durable.wal._fdatasync", boom)
        wal.append(rec.REFRESH, PAYLOAD)
        with pytest.raises(WalError, match="background WAL writer"):
            wal.sync()
        # The error is sticky: appends refuse too, and close re-raises.
        with pytest.raises(WalError, match="background WAL writer"):
            for _ in range(100):
                wal.append(rec.REFRESH, PAYLOAD)
        with pytest.raises(WalError, match="background WAL writer"):
            wal.close()

    def test_close_raises_once_then_no_ops(self, tmp_path, monkeypatch):
        """A sticky writer error surfaces on the *first* close only:
        the ``finally`` blocks unwinding above it close again and must
        not re-raise (or hang joining an already-dead writer)."""
        wal = WriteAheadLog(tmp_path, fsync="batch", async_commit=True)

        def boom(fd):
            raise OSError("disk gone")

        monkeypatch.setattr("repro.durable.wal._fdatasync", boom)
        wal.append(rec.REFRESH, PAYLOAD)
        with pytest.raises(WalError, match="background WAL writer"):
            wal.close()
        wal.close()
        wal.close()

    def test_clean_double_close_is_no_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", async_commit=True)
        wal.append(rec.REFRESH, PAYLOAD)
        wal.close()
        wal.close()

    def test_manager_close_raises_once_then_no_ops(
        self, tmp_path, monkeypatch
    ):
        from repro.durable import DurabilityConfig, DurabilityManager

        manager = DurabilityManager(
            DurabilityConfig(
                directory=tmp_path, fsync="batch", async_commit=True
            )
        )

        def boom(fd):
            raise OSError("disk gone")

        manager.wal.append(rec.REFRESH, PAYLOAD)
        monkeypatch.setattr("repro.durable.wal._fdatasync", boom)
        manager.wal.append(rec.REFRESH, PAYLOAD)
        with pytest.raises(WalError, match="background WAL writer"):
            manager.close()
        manager.close()
        manager.close()

    @pytest.mark.parametrize("async_commit", [False, True])
    def test_append_after_close_refused(self, tmp_path, async_commit):
        wal = WriteAheadLog(
            tmp_path, fsync="batch", async_commit=async_commit
        )
        wal.append(rec.REFRESH, PAYLOAD)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(rec.REFRESH, PAYLOAD)

    def test_appends_racing_close_are_drained_or_refused(self, tmp_path):
        """Every append that returned an LSN before close() must be on
        disk afterwards — a racer either gets drained or raises."""
        wal = WriteAheadLog(tmp_path, fsync="batch", async_commit=True)
        acked = []
        refused = threading.Event()

        def producer():
            try:
                for _ in range(5_000):
                    acked.append(wal.append(rec.REFRESH, PAYLOAD))
            except WalError:
                refused.set()

        thread = threading.Thread(target=producer)
        thread.start()
        while not acked:
            pass
        wal.close()
        thread.join(timeout=60)
        assert not thread.is_alive()
        survived = {r.lsn for r in read_wal(tmp_path).records}
        missing = [lsn for lsn in acked if lsn not in survived]
        assert not missing, f"acked-but-lost records: {missing[:5]}"


class TestConcurrentProducers:
    def test_concurrent_async_appends_stay_framed(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path,
            fsync="never",
            async_commit=True,
            max_segment_bytes=4096,
        )
        per_thread = 200

        def worker():
            for i in range(per_thread):
                wal.append(rec.CHARGE, PAYLOAD)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        wal.close()
        scan = read_wal(tmp_path)
        assert [r.lsn for r in scan.records] == list(
            range(1, 6 * per_thread + 1)
        )
        for record in scan.records:
            record.decode()


class TestServiceWalObservability:
    @pytest.mark.parametrize("async_commit", [False, True])
    def test_stats_mirror_wal_counters(self, tmp_path, async_commit):
        from repro.durable.manager import (
            DurabilityConfig,
            DurabilityManager,
        )
        from repro.service import (
            IngestService,
            LoadGenerator,
            ServiceConfig,
        )

        manager = DurabilityManager(
            DurabilityConfig(
                directory=tmp_path,
                fsync="batch",
                async_commit=async_commit,
            )
        )
        service = IngestService(
            ServiceConfig(num_shards=2, max_batch=256),
            durability=manager,
        )
        gen = LoadGenerator(
            "obs", num_users=20, num_objects=8, random_state=5
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=20,
            user_ids=gen.user_ids,
        )
        for chunk in gen.column_chunks(4_000, chunk_size=256):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        manager.sync()
        service.snapshot(gen.campaign_id)
        stats = service.stats
        assert stats.wal_appends == manager.wal.records_written
        assert stats.wal_appends > 0
        assert stats.wal_commit_groups >= 1
        assert stats.wal_commit_seconds >= 0.0
        # Snapshot forced a blocking sync, so the sampled lag is zero.
        assert stats.wal_durable_lag == 0
        as_dict = stats.as_dict()
        for key in (
            "wal_appends",
            "wal_commit_groups",
            "wal_commit_seconds",
            "wal_durable_lag",
        ):
            assert key in as_dict
        manager.close()


class TestCrashLosesOnlyUnackedSuffix:
    def test_subprocess_crash_preserves_acked_prefix(self, tmp_path):
        """Kill a process mid-stream: every record at or below the
        durable-ack watermark survives; only a staged, never-acked
        suffix may be lost — and what survives is a contiguous prefix,
        never a gap."""
        script = """
import os, sys
sys.path.insert(0, {src!r})
from repro.durable import records as rec
from repro.durable.wal import WriteAheadLog

wal = WriteAheadLog(sys.argv[1], fsync="batch", async_commit=True)
payload = rec.encode_json_payload({{"campaign_id": "c"}})
for _ in range(60):
    wal.append(rec.REFRESH, payload)
assert wal.wait_durable(25, timeout=30.0)
for _ in range(60):
    wal.append(rec.REFRESH, payload)
print(wal.durable_lsn, flush=True)
os._exit(1)  # crash: no drain, no close
""".format(src=str(
            (os.path.dirname(__file__) or ".") + "/../../src"
        ))
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        acked = int(proc.stdout.strip())
        assert acked >= 25
        scan = read_wal(tmp_path)
        survived = [r.lsn for r in scan.records]
        # Contiguous prefix covering at least the acked watermark.
        assert survived == list(range(1, len(survived) + 1))
        assert len(survived) >= acked
        assert len(survived) <= 120
