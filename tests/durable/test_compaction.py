"""Claim-granular compaction: shrink, atomic swap, torn-crash recovery."""

import shutil

import numpy as np
import pytest

from repro.durable import records as rec
from repro.durable.compaction import (
    FAULT_POINTS,
    CompactionInterrupted,
    compact_directory,
)
from repro.durable.manager import DurabilityConfig, DurabilityManager
from repro.durable.recovery import RecoveryError, RecoveryManager
from repro.durable.wal import (
    COMPACT_DIRNAME,
    WalError,
    WriteAheadLog,
    list_segments,
    load_compaction_manifest,
    read_wal,
)
from repro.privacy.ldp import LDPGuarantee
from repro.service import (
    BudgetLedger,
    IngestService,
    LoadGenerator,
    ServiceConfig,
)


def build_durable_run(
    directory,
    *,
    claims=24_000,
    checkpoint_every=8_000,
    cost=None,
    async_commit=False,
):
    """Stream a deterministic campaign through a WAL-attached service."""
    manager = DurabilityManager(
        DurabilityConfig(
            directory=directory,
            fsync="batch",
            checkpoint_every_claims=checkpoint_every,
            async_commit=async_commit,
        )
    )
    ledger = BudgetLedger(epsilon_cap=1e6) if cost is not None else None
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=512),
        ledger=ledger,
        durability=manager,
    )
    gen = LoadGenerator(
        "compact-camp", num_users=60, num_objects=20, random_state=7
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=gen.num_users,
        user_ids=gen.user_ids,
        cost=cost,
    )
    for chunk in gen.column_chunks(claims, chunk_size=512):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()
    service.flush()
    live = service.snapshot(gen.campaign_id)
    manager.checkpoint()
    manager.close()
    return live, gen, service


class TestCompactionShrinks:
    def test_bytes_and_records_shrink_and_recovery_is_bitwise(
        self, tmp_path
    ):
        live, gen, _ = build_durable_run(tmp_path)
        before = read_wal(tmp_path)
        report = compact_directory(tmp_path)
        assert report.records_after < report.records_before
        assert report.bytes_after < report.bytes_before
        assert report.records_before == len(before.records)
        after = read_wal(tmp_path)
        assert len(after.records) == report.records_after
        assert after.compaction_lsn == report.checkpoint_lsn
        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert np.array_equal(live.truths, snap.truths)
        assert live.weights_by_user == snap.weights_by_user

    def test_charges_survive_compaction(self, tmp_path):
        cost = LDPGuarantee(epsilon=0.01, delta=0.0)
        live, gen, service = build_durable_run(tmp_path, cost=cost)
        spent_before = service.ledger.spent(gen.user_ids[0])
        compact_directory(tmp_path)
        charges = [
            r
            for r in read_wal(tmp_path).records
            if r.rtype == rec.CHARGE
        ]
        assert charges, "compaction dropped the budget charges"
        recovered = RecoveryManager(tmp_path).recover()
        assert (
            recovered.service.ledger.spent(gen.user_ids[0])
            == spent_before
        )

    def test_compact_again_after_more_traffic(self, tmp_path):
        live, gen, _ = build_durable_run(tmp_path)
        compact_directory(tmp_path)
        recovered = RecoveryManager(tmp_path).recover(resume=True)
        service = recovered.service
        for chunk in gen.column_chunks(4_000, chunk_size=512):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        live2 = service.snapshot(gen.campaign_id)
        recovered.durability.checkpoint()
        report = recovered.durability.compact(checkpoint_first=False)
        recovered.durability.close()
        assert report.records_after < report.records_before
        snap = RecoveryManager(tmp_path).recover().service.snapshot(
            gen.campaign_id
        )
        assert np.array_equal(live2.truths, snap.truths)

    def test_live_manager_compact_then_keep_serving(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(
                directory=tmp_path, fsync="batch", async_commit=True
            )
        )
        service = IngestService(
            ServiceConfig(num_shards=2, max_batch=512),
            durability=manager,
        )
        gen = LoadGenerator(
            "live-compact", num_users=40, num_objects=16, random_state=3
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
        )
        chunks = list(gen.column_chunks(16_000, chunk_size=512))
        for chunk in chunks[:16]:
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        report = manager.compact()  # checkpoints first, then rewrites
        assert report.records_after < report.records_before
        for chunk in chunks[16:]:
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        live = service.snapshot(gen.campaign_id)
        manager.close()
        snap = RecoveryManager(tmp_path).recover().service.snapshot(
            gen.campaign_id
        )
        assert np.array_equal(live.truths, snap.truths)

    def test_empty_directory_is_a_noop(self, tmp_path):
        (tmp_path / "nothing").mkdir()
        report = compact_directory(tmp_path / "nothing")
        assert report.records_before == 0
        assert report.records_after == 0
        assert not (tmp_path / "nothing" / COMPACT_DIRNAME).exists()


class TestTornCompaction:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("torn-ref")
        live, gen, _ = build_durable_run(base)
        return base, live, gen

    @pytest.mark.parametrize("fault", FAULT_POINTS)
    def test_crash_at_fault_point_recovers_bitwise(
        self, tmp_path, reference, fault
    ):
        base, live, gen = reference
        work = tmp_path / "work"
        shutil.copytree(base, work)
        if fault == "after-old-rename":
            # That fault point only exists once a previous compacted
            # generation is being replaced.
            compact_directory(work)
        with pytest.raises(CompactionInterrupted):
            compact_directory(work, fault=fault)
        recovered = RecoveryManager(work).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert np.array_equal(live.truths, snap.truths), fault
        # And a retried compaction repairs the swap and succeeds.
        report = compact_directory(work)
        assert report.records_after <= report.records_before
        snap2 = RecoveryManager(work).recover().service.snapshot(
            gen.campaign_id
        )
        assert np.array_equal(live.truths, snap2.truths), fault

    def test_mid_swap_crash_readable_without_repair(
        self, tmp_path, reference
    ):
        base, live, gen = reference
        work = tmp_path / "work"
        shutil.copytree(base, work)
        compact_directory(work)
        records_committed = len(read_wal(work).records)
        with pytest.raises(CompactionInterrupted):
            compact_directory(work, fault="after-old-rename")
        # Read-only view (repair=False) still sees the previous
        # committed generation, untouched on disk.
        scan = read_wal(work, repair=False)
        assert len(scan.records) == records_committed

    def test_unknown_fault_point_rejected(self, tmp_path, reference):
        base, _, _ = reference
        work = tmp_path / "work"
        shutil.copytree(base, work)
        with pytest.raises(ValueError, match="fault"):
            compact_directory(work, fault="between-everything")


class TestCompactionGuards:
    def test_recovery_refuses_compacted_log_without_checkpoint(
        self, tmp_path
    ):
        live, gen, _ = build_durable_run(tmp_path)
        compact_directory(tmp_path)
        for ckpt in tmp_path.glob("ckpt-*.npz"):
            ckpt.unlink()
        with pytest.raises(RecoveryError, match="compacted"):
            RecoveryManager(tmp_path).recover()

    def test_compact_refuses_uncovered_checkpoint_lsn(self, tmp_path):
        build_durable_run(tmp_path)
        covered = read_wal(tmp_path).last_lsn
        with pytest.raises(WalError, match="checkpoint"):
            compact_directory(tmp_path, checkpoint_lsn=covered + 50)

    def test_resumed_writer_respects_manifest_floor(self, tmp_path):
        build_durable_run(tmp_path)
        compact_directory(tmp_path)
        manifest = load_compaction_manifest(tmp_path)
        last = manifest["last_lsn"]
        with pytest.raises(WalError, match="collides"):
            WriteAheadLog(tmp_path, start_lsn=last)
        with WriteAheadLog(tmp_path, start_lsn=last + 1) as wal:
            wal.append(
                rec.REFRESH,
                rec.encode_json_payload({"campaign_id": "x"}),
            )
        scan = read_wal(tmp_path)
        assert scan.last_lsn == last + 1

    def test_retention_still_prunes_post_compaction_segments(
        self, tmp_path
    ):
        """retain() (whole segments) and compact() (records) compose."""
        build_durable_run(tmp_path)
        compact_directory(tmp_path)
        with WriteAheadLog(
            tmp_path,
            start_lsn=read_wal(tmp_path).last_lsn + 1,
            max_segment_bytes=256,
        ) as wal:
            for _ in range(20):
                wal.append(
                    rec.REFRESH,
                    rec.encode_json_payload({"campaign_id": "x"}),
                )
            removed = wal.retain(wal.last_lsn)
            assert removed
        assert len(list_segments(tmp_path)) >= 1

    def test_checkpoint_retention_after_compaction_stays_recoverable(
        self, tmp_path
    ):
        """Compact, keep serving across segment rotations, checkpoint
        (which auto-retains covered post-compaction segments): the
        retention gap between the compacted generation and the
        surviving tail must read back fine and recover bitwise."""
        build_durable_run(tmp_path)
        compact_directory(tmp_path)
        recovered = RecoveryManager(tmp_path).recover(
            resume=True,
            durability_config=DurabilityConfig(
                directory=tmp_path,
                fsync="batch",
                # Tiny segments force several rotations, so the next
                # checkpoint's retain() prunes sealed mid-log segments.
                max_segment_bytes=4096,
            ),
        )
        service = recovered.service
        gen = LoadGenerator(
            "compact-camp", num_users=60, num_objects=20, random_state=7
        )
        for chunk in gen.column_chunks(12_000, chunk_size=512):
            service.submit_columns(
                "compact-camp",
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        recovered.durability.checkpoint()
        assert len(list_segments(tmp_path)) >= 1
        live = service.snapshot("compact-camp")
        recovered.durability.close()
        scan = read_wal(tmp_path)
        assert scan.retired_gap_end > 0  # retention really pruned
        snap = RecoveryManager(tmp_path).recover().service.snapshot(
            "compact-camp"
        )
        assert np.array_equal(live.truths, snap.truths)

    def test_retention_gap_without_covering_checkpoint_refused(
        self, tmp_path
    ):
        """A retention gap is only safe while a checkpoint covers it:
        recovery must refuse, not silently skip the retired records."""
        build_durable_run(tmp_path)
        compact_directory(tmp_path)
        recovered = RecoveryManager(tmp_path).recover(
            resume=True,
            durability_config=DurabilityConfig(
                directory=tmp_path, fsync="batch", max_segment_bytes=4096
            ),
        )
        service = recovered.service
        gen = LoadGenerator(
            "compact-camp", num_users=60, num_objects=20, random_state=7
        )
        for chunk in gen.column_chunks(12_000, chunk_size=512):
            service.submit_columns(
                "compact-camp",
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        recovered.durability.checkpoint()
        recovered.durability.close()
        assert read_wal(tmp_path).retired_gap_end > 0
        # Lose the checkpoints covering the retained gap, keeping the
        # oldest (which still covers the compaction floor, so the
        # retention guard — not the compaction guard — must fire).
        checkpoints = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(checkpoints) >= 2
        for ckpt in checkpoints[1:]:
            ckpt.unlink()
        with pytest.raises(RecoveryError, match="retention"):
            RecoveryManager(tmp_path).recover()


class TestAsyncCommitDurability:
    def test_async_commit_service_recovers_bitwise(self, tmp_path):
        live, gen, _ = build_durable_run(tmp_path, async_commit=True)
        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert np.array_equal(live.truths, snap.truths)
        assert live.weights_by_user == snap.weights_by_user

    def test_async_commit_then_compact_then_recover(self, tmp_path):
        live, gen, _ = build_durable_run(tmp_path, async_commit=True)
        report = compact_directory(tmp_path)
        assert report.records_after < report.records_before
        snap = RecoveryManager(tmp_path).recover().service.snapshot(
            gen.campaign_id
        )
        assert np.array_equal(live.truths, snap.truths)
