"""Record/work-item encoding tests for the durable subsystem."""

import json

import numpy as np
import pytest

from repro.durable import records as rec
from repro.durable.records import RecordError, WalRecord, WorkItem


def make_item(n=5, campaign_id="camp-0", wide=False):
    rng = np.random.default_rng(7)
    high = 2**40 if wide else 100
    return WorkItem(
        campaign_id=campaign_id,
        user_slots=rng.integers(0, high, size=n),
        object_slots=rng.integers(0, high, size=n),
        values=rng.normal(size=n),
    )


class TestWorkItem:
    def test_round_trip(self):
        item = make_item()
        back = WorkItem.from_bytes(item.to_bytes())
        assert back.campaign_id == item.campaign_id
        np.testing.assert_array_equal(back.user_slots, item.user_slots)
        np.testing.assert_array_equal(back.object_slots, item.object_slots)
        # Values must survive bit-for-bit, not approximately.
        assert back.values.tobytes() == item.values.tobytes()

    def test_round_trip_wide_slots(self):
        # Slots beyond i32 fall back to the wide encoding transparently.
        item = make_item(wide=True)
        back = WorkItem.from_bytes(item.to_bytes())
        np.testing.assert_array_equal(back.user_slots, item.user_slots)
        np.testing.assert_array_equal(back.object_slots, item.object_slots)

    def test_narrow_encoding_is_smaller(self):
        narrow = make_item(n=100).to_bytes()
        wide = make_item(n=100, wide=True).to_bytes()
        assert len(narrow) < len(wide)

    def test_unicode_campaign_id(self):
        item = make_item(campaign_id="luftqualität-α")
        assert WorkItem.from_bytes(item.to_bytes()).campaign_id == (
            "luftqualität-α"
        )

    def test_decoded_arrays_match_dtype(self):
        back = WorkItem.from_bytes(make_item().to_bytes())
        assert back.user_slots.dtype == np.int64
        assert back.values.dtype == np.float64

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one claim"):
            WorkItem("c", np.array([]), np.array([]), np.array([]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="share a shape"):
            WorkItem("c", np.arange(3), np.arange(2), np.arange(3.0))

    def test_truncated_payload_raises(self):
        payload = make_item().to_bytes()
        with pytest.raises(RecordError):
            WorkItem.from_bytes(payload[:-3])

    def test_garbage_payload_raises(self):
        with pytest.raises(RecordError):
            WorkItem.from_bytes(b"\xff\xff definitely not a work item")


class TestWalRecord:
    def test_batch_decode(self):
        item = make_item()
        record = WalRecord(lsn=9, rtype=rec.BATCH, payload=item.to_bytes())
        decoded = record.decode()
        assert isinstance(decoded, WorkItem)
        assert decoded.campaign_id == item.campaign_id

    def test_json_decode(self):
        body = {"campaign_id": "c1", "max_users": 4}
        record = WalRecord(
            lsn=1,
            rtype=rec.REGISTER,
            payload=rec.encode_json_payload(body),
        )
        assert record.decode() == body

    def test_unknown_type_raises(self):
        with pytest.raises(RecordError, match="unknown record type"):
            WalRecord(lsn=1, rtype=99, payload=b"{}").decode()

    def test_malformed_json_raises(self):
        record = WalRecord(lsn=1, rtype=rec.CHARGE, payload=b"{nope")
        with pytest.raises(RecordError, match="malformed JSON"):
            record.decode()

    def test_encode_json_payload_rejects_unserialisable(self):
        with pytest.raises(RecordError, match="not JSON-serialisable"):
            rec.encode_json_payload({"oops": object()})

    def test_json_payload_is_compact_and_sorted(self):
        payload = rec.encode_json_payload({"b": 1, "a": 2})
        assert payload == b'{"a":2,"b":1}'
        assert json.loads(payload) == {"a": 2, "b": 1}
