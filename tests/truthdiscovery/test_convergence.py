"""Tests for convergence criteria."""

import numpy as np
import pytest

from repro.truthdiscovery.convergence import (
    CombinedCriterion,
    FixedIterationsCriterion,
    TruthChangeCriterion,
    WeightChangeCriterion,
    default_criterion,
)

W = np.ones(3)


class TestTruthChange:
    def test_stops_when_stable(self):
        crit = TruthChangeCriterion(tolerance=1e-3)
        crit.reset()
        assert not crit.update(np.array([1.0, 2.0]), W)
        assert crit.update(np.array([1.0, 2.0]), W)
        assert not crit.exhausted

    def test_keeps_going_while_moving(self):
        crit = TruthChangeCriterion(tolerance=1e-6)
        crit.reset()
        assert not crit.update(np.array([1.0]), W)
        assert not crit.update(np.array([2.0]), W)
        assert not crit.update(np.array([3.0]), W)

    def test_max_iterations_cap_sets_exhausted(self):
        crit = TruthChangeCriterion(tolerance=1e-12, max_iterations=3)
        crit.reset()
        stopped = False
        for i in range(5):
            if crit.update(np.array([float(i)]), W):
                stopped = True
                break
        assert stopped
        assert crit.exhausted
        assert crit.iterations == 3

    def test_reset_clears_state(self):
        crit = TruthChangeCriterion(tolerance=1e-3)
        crit.reset()
        crit.update(np.array([1.0]), W)
        crit.update(np.array([1.0]), W)
        crit.reset()
        assert not crit.update(np.array([1.0]), W)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TruthChangeCriterion(tolerance=0.0)
        with pytest.raises(ValueError):
            TruthChangeCriterion(max_iterations=0)


class TestFixedIterations:
    def test_stops_exactly(self):
        crit = FixedIterationsCriterion(iterations=3)
        crit.reset()
        assert not crit.update(np.zeros(1), W)
        assert not crit.update(np.zeros(1), W)
        assert crit.update(np.zeros(1), W)
        assert not crit.exhausted  # fixed count is convergence by design

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedIterationsCriterion(iterations=0)


class TestWeightChange:
    def test_stops_on_stable_weights(self):
        crit = WeightChangeCriterion(tolerance=1e-6)
        crit.reset()
        truths = np.zeros(2)
        assert not crit.update(truths, np.array([1.0, 2.0]))
        assert crit.update(truths, np.array([1.0, 2.0]))

    def test_linf_metric(self):
        crit = WeightChangeCriterion(tolerance=0.5)
        crit.reset()
        truths = np.zeros(2)
        assert not crit.update(truths, np.array([1.0, 1.0]))
        # max change 0.6 > 0.5 -> keep going
        assert not crit.update(truths, np.array([1.0, 1.6]))
        # max change 0.4 < 0.5 -> stop
        assert crit.update(truths, np.array([1.0, 2.0]))


class TestCombined:
    def test_any_fires(self):
        crit = CombinedCriterion(
            criteria=(
                TruthChangeCriterion(tolerance=1e-12),
                FixedIterationsCriterion(iterations=2),
            )
        )
        crit.reset()
        assert not crit.update(np.array([1.0]), W)
        assert crit.update(np.array([2.0]), W)
        assert not crit.exhausted

    def test_exhaustion_propagates(self):
        crit = CombinedCriterion(
            criteria=(TruthChangeCriterion(tolerance=1e-12, max_iterations=2),)
        )
        crit.reset()
        crit.update(np.array([1.0]), W)
        assert crit.update(np.array([2.0]), W)
        assert crit.exhausted

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CombinedCriterion(criteria=())


def test_default_criterion_is_truth_change():
    assert isinstance(default_criterion(), TruthChangeCriterion)
