"""Tests for the ClaimMatrix data model."""

from collections import namedtuple

import numpy as np
import pytest

from repro.truthdiscovery.claims import ClaimMatrix, stack_claims


class TestConstruction:
    def test_basic_shape(self, small_claims):
        assert small_claims.shape == (5, 4)
        assert small_claims.num_users == 5
        assert small_claims.num_objects == 4

    def test_default_mask_complete(self, small_claims):
        assert small_claims.is_complete
        assert small_claims.density == 1.0

    def test_default_ids(self, small_claims):
        assert small_claims.user_ids == (0, 1, 2, 3, 4)
        assert small_claims.object_ids == (0, 1, 2, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            ClaimMatrix(np.zeros(3))

    def test_rejects_nan_in_observed(self):
        values = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ValueError, match="finite"):
            ClaimMatrix(values)

    def test_nan_allowed_in_masked_entries(self):
        values = np.array([[1.0, np.nan], [2.0, 3.0]])
        mask = np.array([[True, False], [True, True]])
        cm = ClaimMatrix(values, mask=mask)
        assert cm.density == 0.75

    def test_rejects_fully_unobserved_object(self):
        values = np.zeros((2, 2))
        mask = np.array([[True, False], [True, False]])
        with pytest.raises(ValueError, match="at least one observation"):
            ClaimMatrix(values, mask=mask)

    def test_rejects_mismatched_mask(self):
        with pytest.raises(ValueError, match="matching shapes"):
            ClaimMatrix(np.zeros((2, 2)), mask=np.ones((3, 2), dtype=bool))

    def test_rejects_wrong_id_counts(self):
        with pytest.raises(ValueError, match="user_ids"):
            ClaimMatrix(np.zeros((2, 2)), user_ids=("a",))
        with pytest.raises(ValueError, match="object_ids"):
            ClaimMatrix(np.zeros((2, 2)), object_ids=("x",))


class TestAccessors:
    def test_observed_values(self, sparse_claims):
        assert sparse_claims.observed_values().size == 9

    def test_claims_for_object_respects_mask(self, sparse_claims):
        col = sparse_claims.claims_for_object(0)
        np.testing.assert_allclose(col, [1.0, 1.2, 1.1])

    def test_claims_for_user_respects_mask(self, sparse_claims):
        row = sparse_claims.claims_for_user(0)
        np.testing.assert_allclose(row, [1.0, 3.0])

    def test_observation_counts(self, sparse_claims):
        np.testing.assert_array_equal(
            sparse_claims.observation_counts, [2, 2, 2, 3]
        )

    def test_object_means(self, small_claims):
        means = small_claims.object_means()
        np.testing.assert_allclose(means[0], np.mean([1.0, 1.1, 0.9, 1.0, 5.0]))

    def test_object_stds_positive(self, small_claims):
        assert (small_claims.object_stds() > 0).all()

    def test_object_stds_floor_on_constant_object(self):
        cm = ClaimMatrix(np.ones((3, 2)))
        stds = cm.object_stds()
        assert (stds > 0).all()
        assert (stds < 1e-6).all()


class TestRecords:
    def test_round_trip(self, sparse_claims):
        # from_records discovers ids in first-seen order, which may permute
        # columns; compare as record sets, which is the true invariant.
        records = sparse_claims.to_records()
        rebuilt = ClaimMatrix.from_records(records)
        assert sorted(rebuilt.to_records()) == sorted(records)
        assert rebuilt.mask.sum() == sparse_claims.mask.sum()

    def test_round_trip_with_explicit_ids(self, sparse_claims):
        records = sparse_claims.to_records()
        rebuilt = ClaimMatrix.from_records(
            records,
            user_ids=sparse_claims.user_ids,
            object_ids=sparse_claims.object_ids,
        )
        np.testing.assert_allclose(
            rebuilt.values[rebuilt.mask],
            sparse_claims.values[sparse_claims.mask],
        )
        np.testing.assert_array_equal(rebuilt.mask, sparse_claims.mask)

    def test_from_records_discovers_ids(self):
        cm = ClaimMatrix.from_records(
            [("alice", "obj1", 1.0), ("bob", "obj1", 2.0), ("alice", "obj2", 3.0)]
        )
        assert cm.user_ids == ("alice", "bob")
        assert cm.object_ids == ("obj1", "obj2")
        assert not cm.mask[1, 1]  # bob never observed obj2

    def test_from_records_duplicate_keeps_last(self):
        cm = ClaimMatrix.from_records(
            [("a", "x", 1.0), ("b", "x", 5.0), ("a", "x", 2.0)]
        )
        assert cm.values[0, 0] == 2.0

    def test_from_records_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ClaimMatrix.from_records([])

    def test_from_records_unknown_user_rejected(self):
        with pytest.raises(KeyError, match="unknown user"):
            ClaimMatrix.from_records(
                [("a", "x", 1.0), ("b", "x", 1.0)], user_ids=["a"]
            )


class TestTransformations:
    def test_add_offsets(self, small_claims):
        offsets = np.ones(small_claims.shape)
        shifted = small_claims.add(offsets)
        np.testing.assert_allclose(shifted.values, small_claims.values + 1.0)
        # original is untouched (immutability by convention)
        assert small_claims.values[0, 0] == 1.0

    def test_add_keeps_unobserved_zero(self, sparse_claims):
        shifted = sparse_claims.add(np.full(sparse_claims.shape, 10.0))
        assert shifted.values[0, 1] == 0.0  # masked entry
        assert shifted.values[0, 0] == 11.0

    def test_with_values_shape_checked(self, small_claims):
        with pytest.raises(ValueError):
            small_claims.with_values(np.zeros((2, 2)))

    def test_subset_users(self, small_claims):
        sub = small_claims.subset_users([0, 2])
        assert sub.num_users == 2
        assert sub.user_ids == (0, 2)
        np.testing.assert_allclose(sub.values[1], small_claims.values[2])

    def test_subset_objects(self, small_claims):
        sub = small_claims.subset_objects([1, 3])
        assert sub.num_objects == 2
        assert sub.object_ids == (1, 3)

    def test_stack_claims(self, small_claims):
        stacked = stack_claims([small_claims, small_claims])
        assert stacked.num_users == 10
        assert stacked.num_objects == 4

    def test_stack_requires_same_objects(self, small_claims):
        other = small_claims.subset_objects([0, 1])
        with pytest.raises(ValueError, match="same object ids"):
            stack_claims([small_claims, other])

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_claims([])


Sub = namedtuple("Sub", "user_id object_ids values")
"""Minimal submission-shaped record for from_submissions tests."""


class TestColumnConstruction:
    def test_from_columns_round_trip(self):
        cm = ClaimMatrix.from_columns(
            np.array([0, 0, 1]),
            np.array([0, 1, 1]),
            np.array([1.0, 2.0, 3.0]),
            user_ids=("a", "b"),
            object_ids=("x", "y"),
        )
        assert cm.user_ids == ("a", "b")
        assert cm.values[0, 1] == 2.0
        assert not cm.mask[1, 0]
        assert cm.density == pytest.approx(0.75)

    def test_from_columns_duplicates_keep_last(self):
        cm = ClaimMatrix.from_columns(
            np.array([0, 0]),
            np.array([0, 0]),
            np.array([1.0, 9.0]),
            user_ids=("a",),
            object_ids=("x",),
        )
        assert cm.values[0, 0] == 9.0

    def test_from_columns_validates_ranges(self):
        with pytest.raises(ValueError, match="user_index out of range"):
            ClaimMatrix.from_columns(
                np.array([2]), np.array([0]), np.array([1.0]),
                user_ids=("a",), object_ids=("x",),
            )
        with pytest.raises(ValueError, match="non-empty"):
            ClaimMatrix.from_columns(
                np.array([], dtype=int), np.array([], dtype=int),
                np.array([]), user_ids=("a",), object_ids=("x",),
            )

    def test_from_submissions_matches_from_records(self):
        subs = [
            Sub("a", ("x", "y"), (1.0, 2.0)),
            Sub("b", ("y", "z"), (3.0, 4.0)),
        ]
        via_subs = ClaimMatrix.from_submissions(subs)
        via_records = ClaimMatrix.from_records(
            [(s.user_id, o, v) for s in subs
             for o, v in zip(s.object_ids, s.values)]
        )
        np.testing.assert_array_equal(via_subs.values, via_records.values)
        np.testing.assert_array_equal(via_subs.mask, via_records.mask)
        assert via_subs.user_ids == via_records.user_ids
        assert via_subs.object_ids == via_records.object_ids

    def test_from_submissions_explicit_ids_and_unknowns(self):
        with pytest.raises(KeyError, match="unknown user or object"):
            ClaimMatrix.from_submissions(
                [Sub("ghost", ("x",), (1.0,))],
                user_ids=("a",), object_ids=("x",),
            )
        with pytest.raises(ValueError, match="non-empty"):
            ClaimMatrix.from_submissions([])

    def test_from_submissions_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="object ids .* values"):
            ClaimMatrix.from_submissions(
                [Sub("a", ("x", "y", "z"), (1.0, 2.0))]
            )
