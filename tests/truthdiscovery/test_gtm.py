"""Tests for GTM."""

import numpy as np
import pytest

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.gtm import GTM, GTMWeightedAggregateOnly


class TestFit:
    def test_converges(self, synthetic_dataset):
        result = GTM().fit(synthetic_dataset.claims)
        assert result.converged

    def test_truths_close_to_ground_truth(self, synthetic_dataset):
        result = GTM().fit(synthetic_dataset.claims)
        error = np.abs(result.truths - synthetic_dataset.ground_truth).mean()
        assert error < 0.2

    def test_truths_on_data_scale(self, synthetic_dataset):
        # Standardisation must be undone: truths near the claim range.
        result = GTM().fit(synthetic_dataset.claims)
        observed = synthetic_dataset.claims.observed_values()
        assert result.truths.min() >= observed.min() - 1.0
        assert result.truths.max() <= observed.max() + 1.0

    def test_reliable_user_gets_higher_weight(self, graded_quality_dataset):
        result = GTM().fit(graded_quality_dataset.claims)
        s = graded_quality_dataset.num_users
        q = s // 4
        assert result.weights[:q].mean() > result.weights[-q:].mean()

    def test_weights_positive(self, synthetic_dataset):
        result = GTM().fit(synthetic_dataset.claims)
        assert (result.weights > 0).all()

    def test_deterministic(self, synthetic_dataset):
        a = GTM().fit(synthetic_dataset.claims)
        b = GTM().fit(synthetic_dataset.claims)
        np.testing.assert_array_equal(a.truths, b.truths)

    def test_sparse_input(self, sparse_claims):
        result = GTM().fit(sparse_claims)
        assert np.isfinite(result.truths).all()

    def test_history_destandardised(self, synthetic_dataset):
        result = GTM().fit(synthetic_dataset.claims, record_history=True)
        assert len(result.truth_history) == result.iterations
        # History entries live on the data scale, like the final truths.
        last = result.truth_history[-1]
        np.testing.assert_allclose(last, result.truths)

    def test_identical_claims(self):
        claims = ClaimMatrix(np.tile([[4.0, 5.0]], (3, 1)))
        result = GTM().fit(claims)
        np.testing.assert_allclose(result.truths, [4.0, 5.0], atol=1e-6)


class TestPriors:
    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            GTM(prior_variance=0.0)
        with pytest.raises(ValueError):
            GTM(alpha=-1.0)
        with pytest.raises(ValueError):
            GTM(beta=0.0)

    def test_strong_prior_shrinks_toward_prior_mean(self):
        # In standardised space the prior mean is 0 = per-object mean.
        claims = ClaimMatrix(
            np.array([[1.0, 5.0], [2.0, 6.0], [9.0, 13.0]])
        )
        weak = GTM(prior_variance=100.0).fit(claims)
        strong = GTM(prior_variance=1e-4).fit(claims)
        means = claims.object_means()
        # Strong prior pins truths at the object means.
        assert np.abs(strong.truths - means).sum() < np.abs(
            weak.truths - means
        ).sum() + 1e-9


class TestNoShrinkVariant:
    def test_runs_and_converges(self, synthetic_dataset):
        result = GTMWeightedAggregateOnly().fit(synthetic_dataset.claims)
        assert result.converged
        assert result.method == "gtm-noshrink"

    def test_truths_are_weighted_averages(self, small_claims):
        result = GTMWeightedAggregateOnly().fit(small_claims)
        lo = small_claims.values.min(axis=0)
        hi = small_claims.values.max(axis=0)
        assert ((result.truths >= lo) & (result.truths <= hi)).all()
