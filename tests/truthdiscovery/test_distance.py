"""Tests for distance functions."""

import numpy as np
import pytest

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.distance import (
    absolute_distance,
    available_distances,
    get_distance,
    mean_distance_per_claim,
    normalized_absolute_distance,
    normalized_squared_distance,
    register_distance,
    squared_distance,
)


@pytest.fixture
def claims():
    return ClaimMatrix(np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]]))


class TestRegistry:
    def test_known_distances_registered(self):
        names = available_distances()
        for expected in (
            "squared",
            "absolute",
            "normalized_squared",
            "normalized_absolute",
        ):
            assert expected in names

    def test_get_by_name(self):
        assert get_distance("squared") is squared_distance

    def test_get_passes_callable_through(self):
        fn = lambda c, t: np.zeros(c.num_users)  # noqa: E731
        assert get_distance(fn) is fn

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown distance"):
            get_distance("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_distance("squared")(squared_distance)


class TestDistances:
    def test_squared_exact(self, claims):
        truths = np.array([1.0, 2.0])
        d = squared_distance(claims, truths)
        np.testing.assert_allclose(d, [0.0, 8.0, 0.0])

    def test_absolute_exact(self, claims):
        truths = np.array([1.0, 2.0])
        d = absolute_distance(claims, truths)
        np.testing.assert_allclose(d, [0.0, 4.0, 0.0])

    def test_normalized_squared_scales_by_std(self, claims):
        truths = np.array([1.0, 2.0])
        stds = claims.object_stds()
        d = normalized_squared_distance(claims, truths)
        expected = (3.0 - 1.0) ** 2 / stds[0] + (4.0 - 2.0) ** 2 / stds[1]
        np.testing.assert_allclose(d[1], expected)

    def test_normalized_absolute_matches_manual(self, claims):
        truths = np.array([1.0, 2.0])
        stds = claims.object_stds()
        d = normalized_absolute_distance(claims, truths)
        expected = 2.0 / stds[0] + 2.0 / stds[1]
        np.testing.assert_allclose(d[1], expected)

    def test_mask_respected(self):
        values = np.array([[1.0, 99.0], [2.0, 3.0]])
        mask = np.array([[True, False], [True, True]])
        cm = ClaimMatrix(values, mask=mask)
        d = absolute_distance(cm, np.array([1.0, 3.0]))
        np.testing.assert_allclose(d, [0.0, 1.0])

    def test_wrong_truths_shape(self, claims):
        with pytest.raises(ValueError, match="truths must have shape"):
            squared_distance(claims, np.zeros(3))

    def test_mean_distance_per_claim(self):
        values = np.array([[1.0, 2.0], [5.0, 0.0]])
        mask = np.array([[True, True], [True, False]])
        cm = ClaimMatrix(values, mask=mask)
        per_claim = mean_distance_per_claim(cm, np.array([1.0, 2.0]))
        np.testing.assert_allclose(per_claim, [0.0, 4.0])


class TestHuber:
    def test_quadratic_in_the_bulk(self, claims):
        from repro.truthdiscovery.distance import huber_distance

        truths = claims.object_means()
        stds = claims.object_stds()
        # All residuals within 1.5 std -> huber equals half the squared
        # z-score sum.
        z = np.abs(claims.values - truths[None, :]) / stds[None, :]
        assert (z <= 1.5).all()
        expected = 0.5 * (z**2).sum(axis=1)
        np.testing.assert_allclose(
            huber_distance(claims, truths), expected, rtol=1e-9
        )

    def test_linear_in_the_tails(self):
        from repro.truthdiscovery.distance import huber_distance

        # One extreme outlier: huber must grow linearly, i.e. much slower
        # than the squared distance.
        base = np.array([[0.0], [1.0], [2.0]])
        far = np.array([[0.0], [1.0], [200.0]])
        truths = np.array([1.0])
        h_base = huber_distance(ClaimMatrix(base), truths)[2]
        h_far = huber_distance(ClaimMatrix(far), truths)[2]
        sq_ratio = ((200.0 - 1.0) / (2.0 - 1.0)) ** 2
        assert h_far / h_base < sq_ratio / 10

    def test_registered_and_usable_by_crh(self, claims):
        from repro.truthdiscovery.crh import CRH
        from repro.truthdiscovery.distance import available_distances

        assert "huber" in available_distances()
        result = CRH(distance="huber").fit(claims)
        assert np.isfinite(result.truths).all()

    def test_huber_crh_robust_to_outlier_user(self):
        from repro.truthdiscovery.crh import CRH

        rng = np.random.default_rng(0)
        truths = rng.uniform(0, 10, 20)
        values = truths[None, :] + rng.normal(0, 0.2, (12, 20))
        values[0] += 50.0  # catastrophically broken sensor
        claims = ClaimMatrix(values)
        result = CRH(distance="huber").fit(claims)
        assert np.abs(result.truths - truths).mean() < 0.5
        assert result.weights[0] < result.weights[1:].mean()
