"""Tests for CATD, the naive baselines, and the method registry."""

import numpy as np
import pytest

from repro.truthdiscovery.baselines import (
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
)
from repro.truthdiscovery.catd import CATD
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import (
    available_methods,
    create_method,
    register_method,
)


class TestCATD:
    def test_converges(self, synthetic_dataset):
        result = CATD().fit(synthetic_dataset.claims)
        assert result.converged

    def test_reliable_user_gets_higher_weight(self, graded_quality_dataset):
        result = CATD().fit(graded_quality_dataset.claims)
        s = graded_quality_dataset.num_users
        q = s // 4
        assert result.weights[:q].mean() > result.weights[-q:].mean()

    def test_confidence_shrinks_low_count_users(self):
        # Two users with identical per-claim error, one with 4x the claims:
        # chi2 quantile grows with df, so the prolific user gets a higher
        # weight per unit distance.
        values = np.array(
            [
                [1.1, 2.1, 3.1, 4.1, 1.1, 2.1, 3.1, 4.1],
                [1.1, 2.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0],
            ]
        )
        mask = np.ones_like(values, dtype=bool)
        mask[1, 2:] = False
        claims = ClaimMatrix(values, mask=mask)
        truths = np.array([1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0])
        weights = CATD().estimate_weights(claims, truths)
        # same per-claim squared error (0.01); the 8-claim user has
        # 4x the total distance but a much larger chi2 quantile.
        per_distance_0 = weights[0] * 8 * 0.01
        per_distance_1 = weights[1] * 2 * 0.01
        assert per_distance_0 > per_distance_1

    def test_invalid_significance(self):
        with pytest.raises(ValueError):
            CATD(significance=0.0)
        with pytest.raises(ValueError):
            CATD(significance=1.0)

    def test_ground_truth_accuracy(self, synthetic_dataset):
        result = CATD().fit(synthetic_dataset.claims)
        error = np.abs(result.truths - synthetic_dataset.ground_truth).mean()
        assert error < 0.25


class TestBaselines:
    def test_mean_matches_object_means(self, small_claims):
        result = MeanAggregator().fit(small_claims)
        np.testing.assert_allclose(result.truths, small_claims.object_means())

    def test_mean_single_iteration(self, small_claims):
        result = MeanAggregator().fit(small_claims)
        assert result.iterations == 1

    def test_median_exact(self, small_claims):
        result = MedianAggregator().fit(small_claims)
        expected = np.median(small_claims.values, axis=0)
        np.testing.assert_allclose(result.truths, expected)

    def test_median_robust_to_outlier(self, small_claims):
        # User 5 claims 5.0 on object 0 where others claim ~1.0.
        mean_t = MeanAggregator().fit(small_claims).truths[0]
        median_t = MedianAggregator().fit(small_claims).truths[0]
        assert abs(median_t - 1.0) < abs(mean_t - 1.0)

    def test_median_sparse(self, sparse_claims):
        result = MedianAggregator().fit(sparse_claims)
        np.testing.assert_allclose(result.truths[0], 1.1)

    def test_trimmed_mean_between_mean_and_median(self, small_claims):
        mean_t = MeanAggregator().fit(small_claims).truths[0]
        median_t = MedianAggregator().fit(small_claims).truths[0]
        trimmed = TrimmedMeanAggregator(trim=0.25).fit(small_claims).truths[0]
        lo, hi = sorted((mean_t, median_t))
        assert lo - 1e-9 <= trimmed <= hi + 1e-9

    def test_trimmed_mean_zero_trim_is_mean(self, small_claims):
        trimmed = TrimmedMeanAggregator(trim=0.0).fit(small_claims)
        np.testing.assert_allclose(
            trimmed.truths, small_claims.object_means()
        )

    def test_trim_bounds(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=0.5)
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=-0.1)

    def test_uniform_weights(self, small_claims):
        for cls in (MeanAggregator, MedianAggregator):
            result = cls().fit(small_claims)
            np.testing.assert_allclose(result.weights, np.ones(5))


class TestRegistry:
    def test_all_expected_methods(self):
        names = available_methods()
        for expected in ("crh", "gtm", "catd", "mean", "median", "trimmed_mean"):
            assert expected in names

    def test_create_by_name(self, small_claims):
        for name in available_methods():
            method = create_method(name)
            result = method.fit(small_claims)
            assert np.isfinite(result.truths).all()

    def test_kwargs_forwarded(self):
        method = create_method("crh", distance="absolute")
        assert method is not None

    def test_unknown_method(self):
        with pytest.raises(KeyError, match="unknown truth discovery method"):
            create_method("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method("crh", lambda: None)
