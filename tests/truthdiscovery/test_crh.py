"""Tests for CRH."""

import numpy as np
import pytest

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import TruthChangeCriterion
from repro.truthdiscovery.crh import CRH


class TestWeights:
    def test_reliable_user_gets_higher_weight(self, graded_quality_dataset):
        result = CRH().fit(graded_quality_dataset.claims)
        # variances strictly increase with user index; the best quartile
        # must collectively outweigh the worst quartile.
        s = graded_quality_dataset.num_users
        q = s // 4
        assert result.weights[:q].mean() > result.weights[-q:].mean()

    def test_eq3_log_share_formula(self):
        # Two users with known distances; verify the -log share directly.
        claims = ClaimMatrix(np.array([[1.0], [2.0]]))
        method = CRH(distance="squared", distance_floor=1e-12)
        truths = np.array([1.0 + 1e-4])  # small offset avoids the floor
        weights = method.estimate_weights(claims, truths)
        d = np.array([(1.0 - truths[0]) ** 2, (2.0 - truths[0]) ** 2])
        expected = -np.log(d / d.sum())
        np.testing.assert_allclose(weights, expected, rtol=1e-6)

    def test_weights_positive(self, synthetic_dataset):
        result = CRH().fit(synthetic_dataset.claims)
        assert (result.weights > 0).all()

    def test_perfect_agreement_handled(self):
        # All users identical: distances hit the floor; weights equal.
        claims = ClaimMatrix(np.tile([[1.0, 2.0, 3.0]], (4, 1)))
        result = CRH().fit(claims)
        np.testing.assert_allclose(result.weights, np.ones(4))
        np.testing.assert_allclose(result.truths, [1.0, 2.0, 3.0])


class TestFit:
    def test_converges(self, synthetic_dataset):
        result = CRH().fit(synthetic_dataset.claims)
        assert result.converged
        assert result.iterations < 200

    def test_truths_close_to_ground_truth(self, synthetic_dataset):
        result = CRH().fit(synthetic_dataset.claims)
        error = np.abs(result.truths - synthetic_dataset.ground_truth).mean()
        # 40 users with mean error variance 0.25 -> MAE well under 0.2.
        assert error < 0.2

    def test_beats_plain_mean_with_outliers(self, graded_quality_dataset):
        claims = graded_quality_dataset.claims
        truth = graded_quality_dataset.ground_truth
        crh_err = np.abs(CRH().fit(claims).truths - truth).mean()
        mean_err = np.abs(claims.object_means() - truth).mean()
        assert crh_err <= mean_err * 1.05  # at least on par, usually better

    def test_deterministic(self, synthetic_dataset):
        a = CRH().fit(synthetic_dataset.claims)
        b = CRH().fit(synthetic_dataset.claims)
        np.testing.assert_array_equal(a.truths, b.truths)

    def test_sparse_input(self, sparse_claims):
        result = CRH().fit(sparse_claims)
        assert result.truths.shape == (3,)
        assert np.isfinite(result.truths).all()

    def test_per_claim_mode(self, sparse_claims):
        result = CRH(per_claim=True).fit(sparse_claims)
        assert np.isfinite(result.weights).all()

    def test_custom_distance(self, synthetic_dataset):
        result = CRH(distance="absolute").fit(synthetic_dataset.claims)
        assert result.converged

    def test_tight_tolerance_more_iterations(self, synthetic_dataset):
        loose = CRH(convergence=TruthChangeCriterion(tolerance=1e-2)).fit(
            synthetic_dataset.claims
        )
        tight = CRH(convergence=TruthChangeCriterion(tolerance=1e-10)).fit(
            synthetic_dataset.claims
        )
        assert tight.iterations >= loose.iterations

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            CRH(distance_floor=0.0)

    def test_single_object(self):
        claims = ClaimMatrix(np.array([[1.0], [1.2], [0.8]]))
        result = CRH().fit(claims)
        assert 0.8 <= result.truths[0] <= 1.2
