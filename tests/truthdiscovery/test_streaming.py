"""Tests for streaming truth discovery."""

import numpy as np
import pytest

from repro.truthdiscovery.streaming import ClaimBatch, StreamingCRH


def make_stream(num_users, num_objects, truths, *, batches, per_batch, noise,
                seed=0, user_bias=None):
    """Yield ClaimBatches of noisy claims around ``truths``."""
    rng = np.random.default_rng(seed)
    for _ in range(batches):
        users = rng.integers(0, num_users, per_batch)
        objects = rng.integers(0, num_objects, per_batch)
        values = truths[objects] + rng.normal(0, noise, per_batch)
        if user_bias is not None:
            values = values + user_bias[users]
        yield ClaimBatch(users=users, objects=objects, values=values)


class TestClaimBatch:
    def test_from_records(self):
        batch = ClaimBatch.from_records([(0, 1, 2.5), (1, 0, 3.5)])
        assert batch.size == 2
        np.testing.assert_array_equal(batch.users, [0, 1])

    def test_from_records_ndarray_fast_path_matches_tuple_path(self):
        """An (n, 3) table takes the columnar path; results must be
        identical to the per-tuple transpose, including int exactness
        of the index columns."""
        rng = np.random.default_rng(7)
        rows = [
            (int(u), int(o), float(v))
            for u, o, v in zip(
                rng.integers(0, 50, size=200),
                rng.integers(0, 20, size=200),
                rng.normal(size=200),
            )
        ]
        batch = ClaimBatch.from_records(np.array(rows, dtype=float))
        reference = ClaimBatch.from_records(rows)
        assert batch.users.tobytes() == reference.users.tobytes()
        assert batch.objects.tobytes() == reference.objects.tobytes()
        assert batch.values.tobytes() == reference.values.tobytes()
        assert batch.users.dtype == np.int64

    def test_from_records_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ClaimBatch.from_records([(1, 2), (3, 4, 5, 6)])

    def test_from_records_accepts_ndarray_table(self):
        table = np.array([[0, 1, 2.5], [1, 0, 3.5], [0, 0, -1.0]])
        batch = ClaimBatch.from_records(table)
        np.testing.assert_array_equal(batch.users, [0, 1, 0])
        np.testing.assert_array_equal(batch.objects, [1, 0, 0])
        np.testing.assert_array_equal(batch.values, [2.5, 3.5, -1.0])
        with pytest.raises(ValueError, match=r"shape \(n, 3\)"):
            ClaimBatch.from_records(np.zeros((2, 4)))
        with pytest.raises(ValueError, match="non-empty"):
            ClaimBatch.from_records(np.zeros((0, 3)))

    def test_from_records_accepts_generators_and_mixed_rows(self):
        batch = ClaimBatch.from_records(
            (u, o, v) for u, o, v in [(0, 0, 1.0), (np.int64(1), 1, 2)]
        )
        assert batch.size == 2
        np.testing.assert_array_equal(batch.values, [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="share a shape"):
            ClaimBatch(users=[0, 1], objects=[0], values=[1.0])
        with pytest.raises(ValueError, match="non-empty"):
            ClaimBatch(users=[], objects=[], values=[])
        with pytest.raises(ValueError, match="finite"):
            ClaimBatch(users=[0], objects=[0], values=[np.nan])


class TestStreamingCRH:
    def test_converges_to_truths(self):
        truths = np.array([1.0, 5.0, 9.0, 3.0])
        stream = StreamingCRH(num_users=20, num_objects=4)
        for batch in make_stream(20, 4, truths, batches=20, per_batch=40,
                                 noise=0.3):
            stream.ingest(batch)
        assert np.abs(stream.truths - truths).mean() < 0.15
        assert stream.batches_ingested == 20

    def test_unseen_objects_stay_zero(self):
        stream = StreamingCRH(num_users=5, num_objects=3)
        stream.ingest(ClaimBatch(users=[0, 1], objects=[0, 0], values=[2.0, 2.2]))
        assert stream.truths[0] == pytest.approx(2.1, abs=0.2)
        assert stream.truths[1] == 0.0
        np.testing.assert_array_equal(
            stream.seen_objects, [True, False, False]
        )

    def test_tracks_drifting_truth(self):
        # With forgetting, the estimate follows a shifted truth.
        stream = StreamingCRH(num_users=10, num_objects=1, decay=0.6)
        for value in (1.0, 1.0, 1.0):
            stream.ingest(
                ClaimBatch(users=np.arange(10), objects=np.zeros(10, int),
                           values=np.full(10, value))
            )
        assert stream.truths[0] == pytest.approx(1.0, abs=0.01)
        for value in (4.0, 4.0, 4.0, 4.0, 4.0):
            stream.ingest(
                ClaimBatch(users=np.arange(10), objects=np.zeros(10, int),
                           values=np.full(10, value))
            )
        assert stream.truths[0] == pytest.approx(4.0, abs=0.2)

    def test_no_forgetting_keeps_history(self):
        stream = StreamingCRH(num_users=4, num_objects=1, decay=1.0)
        stream.ingest(ClaimBatch(users=[0, 1], objects=[0, 0], values=[1.0, 1.0]))
        stream.ingest(ClaimBatch(users=[2, 3], objects=[0, 0], values=[3.0, 3.0]))
        # all four claims retained -> estimate near the middle
        assert 1.5 < stream.truths[0] < 2.5

    def test_unreliable_user_downweighted(self):
        truths = np.array([2.0, 4.0, 6.0])
        bias = np.zeros(12)
        bias[0] = 5.0  # user 0 systematically wrong
        stream = StreamingCRH(num_users=12, num_objects=3)
        for batch in make_stream(12, 3, truths, batches=15, per_batch=36,
                                 noise=0.2, user_bias=bias):
            stream.ingest(batch)
        weights = stream.weights
        assert weights[0] < weights[1:].mean() * 0.5

    def test_index_validation(self):
        stream = StreamingCRH(num_users=3, num_objects=2)
        with pytest.raises(ValueError, match="user index"):
            stream.ingest(ClaimBatch(users=[5], objects=[0], values=[1.0]))
        with pytest.raises(ValueError, match="object index"):
            stream.ingest(ClaimBatch(users=[0], objects=[7], values=[1.0]))

    def test_snapshot_serialisable(self):
        import json

        stream = StreamingCRH(num_users=3, num_objects=2)
        stream.ingest(ClaimBatch(users=[0, 1], objects=[0, 1], values=[1.0, 2.0]))
        snapshot = stream.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["batches"] == 1
        assert len(parsed["truths"]) == 2

    def test_streaming_with_perturbed_batches(self):
        # End-to-end with the paper's mechanism applied per batch: the
        # stream stays accurate under local perturbation.
        rng = np.random.default_rng(3)
        truths = np.array([5.0, 10.0, 15.0])
        stream = StreamingCRH(num_users=30, num_objects=3)
        lambda2 = 2.0
        variances = rng.exponential(1.0 / lambda2, size=30)  # per-user, private
        for batch in make_stream(30, 3, truths, batches=25, per_batch=60,
                                 noise=0.3, seed=4):
            noisy_values = batch.values + rng.normal(
                0.0, np.sqrt(variances[batch.users])
            )
            stream.ingest(
                ClaimBatch(users=batch.users, objects=batch.objects,
                           values=noisy_values)
            )
        assert np.abs(stream.truths - truths).mean() < 0.4

    def test_validation_of_params(self):
        with pytest.raises(ValueError):
            StreamingCRH(num_users=0, num_objects=2)
        with pytest.raises(ValueError):
            StreamingCRH(num_users=2, num_objects=2, decay=0.0)
        with pytest.raises(ValueError):
            StreamingCRH(num_users=2, num_objects=2, refine_sweeps=0)


class TestSnapshotRestore:
    def make_populated(self, decay=0.9, sweeps=3, seed=11):
        rng = np.random.default_rng(seed)
        stream = StreamingCRH(
            num_users=6, num_objects=4, decay=decay, refine_sweeps=sweeps
        )
        for _ in range(5):
            stream.ingest(
                ClaimBatch(
                    users=rng.integers(0, 6, 20),
                    objects=rng.integers(0, 4, 20),
                    values=rng.normal(size=20),
                )
            )
        return stream

    def test_snapshot_carries_full_state(self):
        stream = self.make_populated()
        snapshot = stream.snapshot()
        assert snapshot["num_users"] == 6
        assert snapshot["decay"] == 0.9
        assert len(snapshot["value_sum"]) == 6
        assert len(snapshot["value_sum"][0]) == 4

    def test_restore_overwrites_in_place(self):
        stream = self.make_populated()
        snapshot = stream.snapshot()
        other = StreamingCRH(num_users=6, num_objects=4)
        other.restore(snapshot)
        np.testing.assert_array_equal(other.truths, stream.truths)
        np.testing.assert_array_equal(other.weights, stream.weights)
        assert other.batches_ingested == stream.batches_ingested

    def test_from_snapshot_accepts_arrays(self):
        stream = self.make_populated()
        snapshot = stream.snapshot()
        snapshot["value_sum"] = np.asarray(snapshot["value_sum"])
        restored = StreamingCRH.from_snapshot(snapshot)
        assert restored.snapshot() == stream.snapshot()

    def test_restore_rejects_wrong_universe(self):
        snapshot = self.make_populated().snapshot()
        other = StreamingCRH(num_users=3, num_objects=4)
        with pytest.raises(ValueError, match="universe"):
            other.restore(snapshot)

    def test_restore_rejects_wrong_shapes(self):
        snapshot = self.make_populated().snapshot()
        snapshot["value_sum"] = [[0.0] * 3] * 6  # 6x3, not 6x4
        other = StreamingCRH(num_users=6, num_objects=4)
        with pytest.raises(ValueError, match="shape"):
            other.restore(snapshot)

    def test_restored_stream_forgets_at_snapshot_rate(self):
        stream = self.make_populated(decay=0.5)
        restored = StreamingCRH.from_snapshot(stream.snapshot())
        batch = ClaimBatch(users=[0], objects=[0], values=[1.0])
        stream.ingest(batch)
        restored.ingest(batch)
        np.testing.assert_array_equal(restored.truths, stream.truths)

    def test_snapshot_arrays_form_matches_list_form(self):
        stream = self.make_populated()
        as_lists = stream.snapshot()
        as_arrays = stream.snapshot(arrays=True)
        assert isinstance(as_arrays["value_sum"], np.ndarray)
        np.testing.assert_array_equal(
            as_arrays["value_sum"], np.asarray(as_lists["value_sum"])
        )
        restored = StreamingCRH.from_snapshot(as_arrays)
        assert restored.snapshot() == as_lists
