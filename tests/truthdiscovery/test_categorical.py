"""Tests for the categorical truth discovery extension."""

import numpy as np
import pytest

from repro.truthdiscovery.categorical import (
    AccuracyEM,
    CategoricalClaimMatrix,
    MajorityVoting,
    WeightedVoting,
    generate_categorical_dataset,
)


@pytest.fixture
def labelled_campaign():
    return generate_categorical_dataset(
        num_users=50, num_objects=40, num_categories=4, random_state=0
    )


class TestCategoricalClaimMatrix:
    def test_basic(self):
        cm = CategoricalClaimMatrix(
            labels=np.array([[0, 1], [1, 1]]), num_categories=2
        )
        assert cm.num_users == 2
        assert cm.num_objects == 2

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError, match="labels must lie"):
            CategoricalClaimMatrix(
                labels=np.array([[0, 3]]), num_categories=2
            )

    def test_rejects_float_labels(self):
        with pytest.raises(ValueError, match="integers"):
            CategoricalClaimMatrix(
                labels=np.array([[0.5, 1.0]]), num_categories=2
            )

    def test_rejects_unobserved_object(self):
        with pytest.raises(ValueError, match="at least one observation"):
            CategoricalClaimMatrix(
                labels=np.array([[0, 0]]),
                num_categories=2,
                mask=np.array([[True, False]]),
            )

    def test_vote_counts_unweighted(self):
        cm = CategoricalClaimMatrix(
            labels=np.array([[0, 1], [0, 0], [1, 1]]), num_categories=2
        )
        counts = cm.vote_counts()
        np.testing.assert_array_equal(counts, [[2, 1], [1, 2]])

    def test_vote_counts_weighted(self):
        cm = CategoricalClaimMatrix(
            labels=np.array([[0], [1]]), num_categories=2
        )
        counts = cm.vote_counts(np.array([3.0, 1.0]))
        np.testing.assert_array_equal(counts, [[3.0, 1.0]])

    def test_vote_counts_respect_mask(self):
        cm = CategoricalClaimMatrix(
            labels=np.array([[0, 0], [1, 0]]),
            num_categories=2,
            mask=np.array([[True, True], [False, True]]),
        )
        counts = cm.vote_counts()
        np.testing.assert_array_equal(counts, [[1, 0], [2, 0]])


class TestMajorityVoting:
    def test_plurality(self):
        cm = CategoricalClaimMatrix(
            labels=np.array([[0], [0], [1]]), num_categories=2
        )
        result = MajorityVoting().fit(cm)
        assert result.truths[0] == 0
        np.testing.assert_allclose(result.posteriors[0], [2 / 3, 1 / 3])

    def test_good_recovery_on_clean_data(self, labelled_campaign):
        claims, truths, _acc = labelled_campaign
        result = MajorityVoting().fit(claims)
        assert (result.truths != truths).mean() < 0.05


class TestWeightedVoting:
    def test_recovers_truth(self, labelled_campaign):
        claims, truths, _acc = labelled_campaign
        result = WeightedVoting().fit(claims)
        assert (result.truths != truths).mean() < 0.05
        assert result.converged

    def test_weights_track_accuracy(self, labelled_campaign):
        claims, _truths, accuracies = labelled_campaign
        result = WeightedVoting().fit(claims)
        corr = np.corrcoef(result.weights, accuracies)[0, 1]
        assert corr > 0.5

    def test_beats_majority_with_bad_annotators(self):
        # Half the users answer nearly randomly; weighting should win.
        claims, truths, _acc = generate_categorical_dataset(
            num_users=30,
            num_objects=60,
            num_categories=3,
            accuracy_low=0.34,
            accuracy_high=0.99,
            random_state=5,
        )
        wv_err = (WeightedVoting().fit(claims).truths != truths).mean()
        mv_err = (MajorityVoting().fit(claims).truths != truths).mean()
        assert wv_err <= mv_err

    def test_deterministic(self, labelled_campaign):
        claims, _t, _a = labelled_campaign
        a = WeightedVoting().fit(claims)
        b = WeightedVoting().fit(claims)
        np.testing.assert_array_equal(a.truths, b.truths)


class TestAccuracyEM:
    def test_recovers_truth(self, labelled_campaign):
        claims, truths, _acc = labelled_campaign
        result = AccuracyEM().fit(claims)
        assert (result.truths != truths).mean() < 0.05
        assert result.converged

    def test_posteriors_are_distributions(self, labelled_campaign):
        claims, _t, _a = labelled_campaign
        result = AccuracyEM().fit(claims)
        np.testing.assert_allclose(result.posteriors.sum(axis=1), 1.0)
        assert (result.posteriors >= 0).all()

    def test_weights_track_accuracy(self, labelled_campaign):
        claims, _truths, accuracies = labelled_campaign
        result = AccuracyEM().fit(claims)
        corr = np.corrcoef(result.weights, accuracies)[0, 1]
        assert corr > 0.5

    def test_sparse_input(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=(10, 8))
        mask = rng.random((10, 8)) < 0.7
        for n in range(8):
            if not mask[:, n].any():
                mask[0, n] = True
        claims = CategoricalClaimMatrix(
            labels=labels, num_categories=3, mask=mask
        )
        result = AccuracyEM().fit(claims)
        assert result.truths.shape == (8,)


class TestGenerator:
    def test_shapes(self, labelled_campaign):
        claims, truths, accuracies = labelled_campaign
        assert claims.num_users == 50
        assert truths.shape == (40,)
        assert accuracies.shape == (50,)

    def test_deterministic(self):
        a = generate_categorical_dataset(10, 5, 3, random_state=1)
        b = generate_categorical_dataset(10, 5, 3, random_state=1)
        np.testing.assert_array_equal(a[0].labels, b[0].labels)

    def test_accuracy_realised(self):
        claims, truths, accuracies = generate_categorical_dataset(
            5, 5000, 4, accuracy_low=0.6, accuracy_high=0.9, random_state=2
        )
        for s in range(5):
            realised = (claims.labels[s] == truths).mean()
            assert realised == pytest.approx(accuracies[s], abs=0.03)
