"""Coverage for smaller branches across the truth discovery substrate."""

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix, stack_claims
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.gtm import GTM


class TestStackClaims:
    def test_duplicate_user_ids_renumbered(self, small_claims):
        # Stacking the same matrix twice duplicates user ids; the stack
        # falls back to positional ids.
        stacked = stack_claims([small_claims, small_claims])
        assert stacked.user_ids == tuple(range(10))

    def test_distinct_user_ids_preserved(self):
        a = ClaimMatrix(np.ones((2, 2)), user_ids=("a1", "a2"))
        b = ClaimMatrix(np.ones((2, 2)), user_ids=("b1", "b2"))
        stacked = stack_claims([a, b])
        assert stacked.user_ids == ("a1", "a2", "b1", "b2")

    def test_single_matrix(self, small_claims):
        stacked = stack_claims([small_claims])
        np.testing.assert_array_equal(stacked.values, small_claims.values)


class TestClaimMatrixEdges:
    def test_single_user_single_object(self):
        cm = ClaimMatrix(np.array([[3.0]]))
        assert cm.num_users == 1
        assert cm.object_means()[0] == 3.0

    def test_repr(self, small_claims):
        text = repr(small_claims)
        assert "users=5" in text
        assert "objects=4" in text

    def test_subset_preserves_mask(self, sparse_claims):
        sub = sparse_claims.subset_users([0, 3])
        np.testing.assert_array_equal(sub.mask[0], sparse_claims.mask[0])
        np.testing.assert_array_equal(sub.mask[1], sparse_claims.mask[3])

    def test_with_values_keeps_ids(self):
        cm = ClaimMatrix(
            np.ones((2, 2)), user_ids=("u", "v"), object_ids=("x", "y")
        )
        updated = cm.with_values(np.zeros((2, 2)))
        assert updated.user_ids == ("u", "v")
        assert updated.object_ids == ("x", "y")


class TestMethodEdges:
    def test_crh_two_users_one_object(self):
        claims = ClaimMatrix(np.array([[1.0], [2.0]]))
        result = CRH().fit(claims)
        assert 1.0 <= result.truths[0] <= 2.0

    def test_crh_handles_huge_scale(self):
        rng = np.random.default_rng(0)
        claims = ClaimMatrix(rng.normal(1e9, 1e6, size=(10, 5)))
        result = CRH().fit(claims)
        assert np.isfinite(result.truths).all()

    def test_crh_handles_tiny_scale(self):
        rng = np.random.default_rng(0)
        claims = ClaimMatrix(rng.normal(1e-9, 1e-12, size=(10, 5)))
        result = CRH().fit(claims)
        assert np.isfinite(result.truths).all()

    def test_gtm_two_users(self):
        claims = ClaimMatrix(np.array([[1.0, 2.0], [1.2, 2.2]]))
        result = GTM().fit(claims)
        assert np.isfinite(result.truths).all()

    def test_method_reuse_is_safe(self, synthetic_dataset):
        # Fitting twice with the same instance must give the same answer
        # (convergence state is reset per fit).
        method = CRH()
        a = method.fit(synthetic_dataset.claims)
        b = method.fit(synthetic_dataset.claims)
        np.testing.assert_array_equal(a.truths, b.truths)
        assert a.iterations == b.iterations

    def test_negative_values_supported(self):
        rng = np.random.default_rng(1)
        truths = rng.uniform(-100, -50, 8)
        claims = ClaimMatrix(truths[None, :] + rng.normal(0, 1, (20, 8)))
        result = CRH().fit(claims)
        assert np.abs(result.truths - truths).mean() < 1.0
