"""Tests for bootstrap uncertainty quantification."""

import numpy as np
import pytest

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.uncertainty import bootstrap_truths


class TestBootstrapTruths:
    def test_intervals_bracket_point(self, synthetic_dataset):
        intervals = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=50, random_state=0
        )
        assert (intervals.lower <= intervals.point + 1e-9).all()
        assert (intervals.point <= intervals.upper + 1e-9).all()

    def test_coverage_of_ground_truth(self, synthetic_dataset):
        intervals = bootstrap_truths(
            CRH,
            synthetic_dataset.claims,
            num_resamples=200,
            confidence=0.95,
            random_state=0,
        )
        coverage = intervals.contains(synthetic_dataset.ground_truth).mean()
        # Nominal 95% with 12 objects: allow generous finite-sample slack.
        assert coverage >= 0.7

    def test_deterministic(self, synthetic_dataset):
        a = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=30, random_state=5
        )
        b = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=30, random_state=5
        )
        np.testing.assert_array_equal(a.lower, b.lower)

    def test_more_users_narrower_intervals(self):
        from repro.datasets.synthetic import generate_synthetic

        small = generate_synthetic(num_users=15, num_objects=10, random_state=1)
        large = generate_synthetic(num_users=150, num_objects=10, random_state=1)
        w_small = bootstrap_truths(
            CRH, small.claims, num_resamples=80, random_state=2
        ).width.mean()
        w_large = bootstrap_truths(
            CRH, large.claims, num_resamples=80, random_state=2
        ).width.mean()
        assert w_large < w_small

    def test_perturbation_widens_intervals(self, synthetic_dataset):
        from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism

        clean = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=80, random_state=3
        )
        perturbed_claims = ExponentialVarianceGaussianMechanism(0.5).perturb(
            synthetic_dataset.claims, random_state=4
        ).perturbed
        noisy = bootstrap_truths(
            CRH, perturbed_claims, num_resamples=80, random_state=3
        )
        assert noisy.width.mean() > clean.width.mean()

    def test_standard_errors_positive(self, synthetic_dataset):
        intervals = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=30, random_state=0
        )
        assert (intervals.standard_errors() > 0).all()

    def test_contains_shape_validated(self, synthetic_dataset):
        intervals = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=20, random_state=0
        )
        with pytest.raises(ValueError):
            intervals.contains(np.zeros(3))

    def test_samples_shape(self, synthetic_dataset):
        intervals = bootstrap_truths(
            CRH, synthetic_dataset.claims, num_resamples=25, random_state=0
        )
        assert intervals.samples.shape == (25, synthetic_dataset.num_objects)

    def test_validation(self, synthetic_dataset):
        with pytest.raises(ValueError):
            bootstrap_truths(CRH, synthetic_dataset.claims, num_resamples=5)
        with pytest.raises(ValueError):
            bootstrap_truths(
                CRH, synthetic_dataset.claims, num_resamples=20, confidence=1.0
            )

    def test_too_sparse_matrix_raises(self):
        # Object 1 observed by exactly one user: most resamples miss it.
        values = np.array([[1.0, 5.0], [2.0, 0.0], [1.5, 0.0]])
        mask = np.array([[True, True], [True, False], [True, False]])
        claims = ClaimMatrix(values, mask=mask)
        # With one observer out of three users, a redraw usually succeeds
        # eventually; force failure determinism by checking the error
        # path only when it actually triggers.
        try:
            bootstrap_truths(CRH, claims, num_resamples=10, random_state=0)
        except RuntimeError as exc:
            assert "too sparse" in str(exc)
