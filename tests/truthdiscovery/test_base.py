"""Tests for the Algorithm 1 framework (weighted_aggregate + fit loop)."""

import numpy as np
import pytest

from repro.truthdiscovery.base import (
    TruthDiscoveryMethod,
    weighted_aggregate,
)
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import FixedIterationsCriterion


class TestWeightedAggregate:
    def test_uniform_weights_give_mean(self, small_claims):
        truths = weighted_aggregate(small_claims, np.ones(5))
        np.testing.assert_allclose(truths, small_claims.object_means())

    def test_weight_concentration_selects_user(self, small_claims):
        weights = np.array([0.0, 0.0, 0.0, 1.0, 0.0])
        truths = weighted_aggregate(small_claims, weights)
        np.testing.assert_allclose(truths, small_claims.values[3])

    def test_eq1_formula_exact(self):
        claims = ClaimMatrix(np.array([[1.0], [3.0]]))
        truths = weighted_aggregate(claims, np.array([3.0, 1.0]))
        np.testing.assert_allclose(truths, [(3 * 1 + 1 * 3) / 4])

    def test_scale_invariance(self, small_claims):
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        a = weighted_aggregate(small_claims, w)
        b = weighted_aggregate(small_claims, w * 7.5)
        np.testing.assert_allclose(a, b)

    def test_mask_respected(self, sparse_claims):
        truths = weighted_aggregate(sparse_claims, np.ones(4))
        np.testing.assert_allclose(truths[0], np.mean([1.0, 1.2, 1.1]))

    def test_negative_weights_rejected(self, small_claims):
        with pytest.raises(ValueError, match="non-negative"):
            weighted_aggregate(small_claims, np.array([1, 1, 1, 1, -1.0]))

    def test_wrong_shape_rejected(self, small_claims):
        with pytest.raises(ValueError, match="weights must have shape"):
            weighted_aggregate(small_claims, np.ones(3))

    def test_zero_total_weight_falls_back_to_mean(self):
        # Both observers of object 1 have zero weight -> uniform fallback.
        values = np.array([[1.0, 4.0], [2.0, 6.0], [3.0, 0.0]])
        mask = np.array([[True, True], [True, True], [True, False]])
        claims = ClaimMatrix(values, mask=mask)
        truths = weighted_aggregate(claims, np.array([0.0, 0.0, 1.0]))
        assert truths[0] == 3.0  # only user 3 has weight on object 0
        assert truths[1] == 5.0  # fallback mean of 4, 6


class _ConstantWeightMethod(TruthDiscoveryMethod):
    """Test double: fixed weights, one iteration."""

    name = "constant"

    def __init__(self, weights):
        super().__init__(convergence=FixedIterationsCriterion(iterations=1))
        self._weights = np.asarray(weights, dtype=float)

    def estimate_weights(self, claims, truths):
        return self._weights


class _BadWeightMethod(TruthDiscoveryMethod):
    name = "bad"

    def __init__(self, weights):
        super().__init__(convergence=FixedIterationsCriterion(iterations=1))
        self._weights = weights

    def estimate_weights(self, claims, truths):
        return np.asarray(self._weights, dtype=float)


class TestFitLoop:
    def test_result_fields(self, small_claims):
        result = _ConstantWeightMethod(np.ones(5)).fit(small_claims)
        assert result.truths.shape == (4,)
        assert result.weights.shape == (5,)
        assert result.iterations == 1
        assert result.converged
        assert result.method == "constant"

    def test_weights_normalised_to_mean_one(self, small_claims):
        result = _ConstantWeightMethod(np.full(5, 17.0)).fit(small_claims)
        np.testing.assert_allclose(result.weights, np.ones(5))

    def test_accepts_raw_ndarray(self):
        result = _ConstantWeightMethod(np.ones(2)).fit(
            np.array([[1.0, 2.0], [3.0, 4.0]])
        )
        np.testing.assert_allclose(result.truths, [2.0, 3.0])

    def test_record_history(self, small_claims):
        result = _ConstantWeightMethod(np.ones(5)).fit(
            small_claims, record_history=True
        )
        assert len(result.truth_history) == result.iterations

    def test_history_off_by_default(self, small_claims):
        result = _ConstantWeightMethod(np.ones(5)).fit(small_claims)
        assert result.truth_history == ()

    def test_nan_weights_rejected(self, small_claims):
        method = _BadWeightMethod([1, 1, np.nan, 1, 1])
        with pytest.raises(ValueError, match="non-finite"):
            method.fit(small_claims)

    def test_negative_weights_rejected(self, small_claims):
        method = _BadWeightMethod([1, 1, -1, 1, 1])
        with pytest.raises(ValueError, match="negative"):
            method.fit(small_claims)

    def test_wrong_shape_weights_rejected(self, small_claims):
        method = _BadWeightMethod([1, 1])
        with pytest.raises(ValueError, match="returned shape"):
            method.fit(small_claims)

    def test_weight_of_accessor(self, small_claims):
        result = _ConstantWeightMethod(np.ones(5)).fit(small_claims)
        assert result.weight_of(2) == pytest.approx(1.0)
