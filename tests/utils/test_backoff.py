"""The shared retry schedule: envelope bounds, determinism, reset."""

import itertools

import pytest

from repro.utils.backoff import Backoff, backoff_delays


class TestValidation:
    def test_non_positive_base_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base=0.0)

    def test_sub_one_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            Backoff(factor=0.5)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="below base"):
            Backoff(base=1.0, cap=0.5)


class TestSchedule:
    def test_first_delay_is_exactly_base(self):
        schedule = Backoff(base=0.05, random_state=1)
        assert schedule.next() == 0.05

    def test_delays_stay_inside_the_envelope(self):
        base, factor, cap = 0.05, 2.0, 2.0
        schedule = Backoff(
            base=base, factor=factor, cap=cap, random_state=7
        )
        for attempt in range(20):
            envelope = min(cap, base * factor**attempt)
            delay = schedule.next()
            assert base <= delay <= max(envelope, base)

    def test_late_delays_reach_past_base(self):
        schedule = Backoff(base=0.05, cap=2.0, random_state=3)
        delays = [schedule.next() for _ in range(30)]
        # With full jitter over [0.05, 2.0] the odds of 25 straight
        # draws under 0.1 are negligible: growth must actually happen.
        assert max(delays) > 0.1

    def test_same_seed_same_timeline(self):
        a = Backoff(random_state=42)
        b = Backoff(random_state=42)
        assert [a.next() for _ in range(12)] == [
            b.next() for _ in range(12)
        ]

    def test_different_seeds_diverge(self):
        a = Backoff(random_state=1)
        b = Backoff(random_state=2)
        assert [a.next() for _ in range(12)] != [
            b.next() for _ in range(12)
        ]

    def test_reset_restarts_the_schedule(self):
        schedule = Backoff(base=0.05, random_state=5)
        for _ in range(6):
            schedule.next()
        assert schedule.attempt == 6
        schedule.reset()
        assert schedule.attempt == 0
        assert schedule.next() == 0.05  # first attempt again


class TestIterator:
    def test_backoff_delays_matches_the_class(self):
        from_iter = list(
            itertools.islice(backoff_delays(random_state=9), 8)
        )
        schedule = Backoff(random_state=9)
        assert from_iter == [schedule.next() for _ in range(8)]
