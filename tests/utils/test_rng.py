"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).standard_normal(5)
        b = as_generator(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).standard_normal(5)
        b = as_generator(2).standard_normal(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(9)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="random_state"):
            as_generator("seed")

    def test_numpy_integer_accepted(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        gens = spawn_generators(0, 2)
        a = gens[0].standard_normal(100)
        b = gens[1].standard_normal(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_deterministic_given_seed(self):
        a = [g.standard_normal() for g in spawn_generators(3, 4)]
        b = [g.standard_normal() for g in spawn_generators(3, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        gens = spawn_generators(parent, 3)
        assert len(gens) == 3

    def test_spawn_from_seed_sequence(self):
        gens = spawn_generators(np.random.SeedSequence(7), 2)
        assert len(gens) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_token_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_result_usable_as_seed(self):
        seed = derive_seed(10, "x")
        gen = as_generator(seed)
        assert isinstance(gen, np.random.Generator)

    def test_process_independent(self):
        # Pinned value: would change if token hashing regressed to the
        # per-process-salted built-in hash().
        assert derive_seed(1, "a", 2) == 8360006904692711951
