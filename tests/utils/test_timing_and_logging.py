"""Tests for repro.utils.timing and repro.utils.logging."""

import logging
import time

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure():
            time.sleep(0.01)
        with sw.measure():
            time.sleep(0.01)
        assert sw.count == 2
        assert sw.total >= 0.02
        assert sw.mean > 0

    def test_reset(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        sw.reset()
        assert sw.count == 0
        assert sw.total == 0.0
        assert sw.mean == 0.0

    def test_records_on_exception(self):
        sw = Stopwatch()
        try:
            with sw.measure():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert sw.count == 1


class TestTimed:
    def test_returns_result_and_elapsed(self):
        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0


class TestLogging:
    def test_namespacing(self):
        assert get_logger("crh").name == "repro.crh"

    def test_already_namespaced(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_root_name(self):
        assert get_logger("repro").name == "repro"

    def test_enable_console_idempotent(self):
        h1 = enable_console_logging(logging.WARNING)
        h2 = enable_console_logging(logging.INFO)
        assert h1 is h2
        logger = logging.getLogger("repro")
        console_handlers = [
            h for h in logger.handlers if getattr(h, "_repro_console", False)
        ]
        assert len(console_handlers) == 1
        logger.removeHandler(h1)
