"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_finite,
    ensure_in_range,
    ensure_int,
    ensure_positive,
    ensure_probability,
    ensure_same_shape,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(1.5, "x") == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            ensure_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert ensure_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive(-1.0, "x", strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_positive(float("inf"), "x")


class TestEnsureProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert ensure_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            ensure_probability(value, "p")


class TestEnsureInRange:
    def test_inclusive_bounds(self):
        assert ensure_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert ensure_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError, match="must be > 1"):
            ensure_in_range(1.0, "x", 1.0, 2.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError, match="must be < 2"):
            ensure_in_range(2.0, "x", 1.0, 2.0, high_inclusive=False)

    def test_no_bounds_accepts_anything_finite(self):
        assert ensure_in_range(-1e9, "x") == -1e9


class TestEnsureInt:
    def test_accepts_int(self):
        assert ensure_int(5, "n") == 5

    def test_accepts_numpy_integer(self):
        assert ensure_int(np.int32(4), "n") == 4

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_int(5.0, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match=">= 1"):
            ensure_int(0, "n", minimum=1)


class TestArrayValidators:
    def test_ensure_1d(self):
        out = ensure_1d([1, 2, 3], "v")
        assert out.shape == (3,)

    def test_ensure_1d_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            ensure_1d(np.zeros((2, 2)), "v")

    def test_ensure_2d(self):
        out = ensure_2d([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_ensure_2d_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            ensure_2d([1, 2], "m")

    def test_ensure_same_shape_passes(self):
        ensure_same_shape(np.zeros(3), np.ones(3), "a/b")

    def test_ensure_same_shape_fails(self):
        with pytest.raises(ValueError, match="matching shapes"):
            ensure_same_shape(np.zeros(3), np.ones(4), "a/b")

    def test_ensure_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_finite(np.array([1.0, np.nan]), "v")

    def test_ensure_finite_passes(self):
        out = ensure_finite(np.array([1.0, 2.0]), "v")
        assert out.tolist() == [1.0, 2.0]
