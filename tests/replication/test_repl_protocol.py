"""Replication wire-format round-trips and malformed-frame rejection."""

import pytest

from repro.durable.records import WalRecord
from repro.replication import protocol as rp


class TestJson:
    def test_roundtrip(self):
        body = {"format": 1, "directory": "/tmp/wal"}
        assert rp.decode_json(rp.encode_json(body)) == body

    def test_malformed_rejected(self):
        with pytest.raises(rp.ProtocolError):
            rp.decode_json(b"\xff\xfe not json")

    def test_non_object_rejected(self):
        with pytest.raises(rp.ProtocolError):
            rp.decode_json(b"[1, 2, 3]")


class TestLsn:
    def test_roundtrip(self):
        assert rp.decode_lsn(rp.encode_lsn(0)) == 0
        assert rp.decode_lsn(rp.encode_lsn(2**63)) == 2**63

    def test_short_payload_rejected(self):
        with pytest.raises(rp.ProtocolError):
            rp.decode_lsn(b"\x01\x02")


class TestRecords:
    def _records(self):
        return [
            WalRecord(rtype=3, lsn=7, payload=b"abc"),
            WalRecord(rtype=5, lsn=8, payload=b""),
            WalRecord(rtype=9, lsn=9, payload=b"\x00" * 100),
        ]

    def test_roundtrip(self):
        records = self._records()
        out = rp.decode_records(rp.encode_records(records))
        assert [(r.rtype, r.lsn, r.payload) for r in out] == [
            (r.rtype, r.lsn, r.payload) for r in records
        ]

    def test_empty_roundtrip(self):
        assert rp.decode_records(rp.encode_records([])) == []

    def test_truncated_rejected(self):
        blob = rp.encode_records(self._records())
        with pytest.raises(rp.ProtocolError):
            rp.decode_records(blob[:-1])

    def test_trailing_bytes_rejected(self):
        blob = rp.encode_records(self._records())
        with pytest.raises(rp.ProtocolError):
            rp.decode_records(blob + b"x")


class TestCheckpoint:
    def test_roundtrip(self):
        lsn, blob = rp.decode_checkpoint(
            rp.encode_checkpoint(41, b"payload-bytes")
        )
        assert lsn == 41
        assert blob == b"payload-bytes"

    def test_short_payload_rejected(self):
        with pytest.raises(rp.ProtocolError):
            rp.decode_checkpoint(b"\x01")


class TestFrameTypeSpace:
    def test_disjoint_from_durable_and_worker_records(self):
        # Replication frames must never collide with WAL record types
        # (1..31) or the worker frame protocol (32..46): a standby
        # persists shipped rtypes verbatim into its own log.
        replication_types = {
            rp.HELLO, rp.CURSOR, rp.RECORDS, rp.ACK, rp.CHECKPOINT,
            rp.READ_REQ, rp.READ_RESP, rp.STATUS_REQ, rp.STATUS_RESP,
            rp.PROMOTE_REQ, rp.PROMOTE_RESP, rp.REPL_ERROR,
        }
        assert len(replication_types) == 12
        assert all(t >= 50 for t in replication_types)
