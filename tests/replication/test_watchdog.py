"""Automated failover: status server, heartbeats, election, promotion.

Everything runs in-process (:meth:`StandbyServer.start` and
:meth:`FailoverWatchdog.start` both serve on threads), so the full
self-healing loop — heartbeat, miss accounting, election over STATUS
frames, ``PROMOTE`` — is exercised without subprocesses.  The
subprocess flavour (``launch_watchdog`` + the drill harness) is
covered by ``repro chaos-drill --smoke`` in CI.
"""

import time

import pytest

from repro.durable import DurabilityConfig, DurabilityManager
from repro.replication.client import (
    FailoverReadClient,
    ReplicaError,
    ReplicaReadClient,
)
from repro.replication.sender import ReplicationSender
from repro.replication.standby import StandbyServer
from repro.replication.watchdog import (
    FailoverWatchdog,
    PrimaryStatusServer,
    WatchdogError,
    allocate_peer_ports,
    format_address,
    parse_address,
)
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.loadgen import LoadGenerator
from repro.service.topology import Topology

CHUNK = 128
NUM_USERS = 40
NUM_OBJECTS = 12


def make_traffic(total_chunks=8, seed=11):
    gen = LoadGenerator(
        "wd-c0",
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=seed,
    )
    chunks = list(
        gen.column_chunks(total_chunks * CHUNK, chunk_size=CHUNK)
    )
    return gen, chunks


def primary_service(tmp_path):
    manager = DurabilityManager(
        DurabilityConfig(directory=tmp_path / "wal", fsync="batch")
    )
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        topology=Topology.in_process(durability=manager),
    )
    return service, manager


def feed(service, gen, chunks):
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
    )
    for chunk in chunks:
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()


def quiesce(service, manager, sender, *, timeout=60.0):
    service.flush()
    manager.sync()
    watermark = manager.wal.durable_lsn
    deadline = time.monotonic() + timeout
    while sender.min_ack_lsn() < watermark:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    return watermark


# -------------------------------------------------------- status server
class TestPrimaryStatusServer:
    def test_answers_ping_and_status(self, tmp_path):
        service, manager = primary_service(tmp_path)
        server = PrimaryStatusServer(manager)
        server.start()
        try:
            watchdog = FailoverWatchdog(
                server.address, [("127.0.0.1", 1)], probe_timeout=2.0
            )
            assert watchdog.probe() is True
            assert server.probes_answered == 1

            gen, chunks = make_traffic(total_chunks=2)
            feed(service, gen, chunks)
            service.flush()
            manager.sync()
            with ReplicaReadClient(server.address) as client:
                status = client.status()
            assert status["role"] == "primary"
            assert status["durable_lsn"] == manager.wal.durable_lsn
            assert status["last_lsn"] == manager.wal.last_lsn
        finally:
            server.stop()
            service.close()

    def test_probe_false_once_stopped(self, tmp_path):
        _service, manager = primary_service(tmp_path)
        server = PrimaryStatusServer(manager)
        server.start()
        watchdog = FailoverWatchdog(
            server.address, [("127.0.0.1", 1)], probe_timeout=0.5
        )
        assert watchdog.probe() is True
        server.stop()
        assert watchdog.probe() is False
        _service.close()


# ------------------------------------------------------------- election
class TestElection:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one standby"):
            FailoverWatchdog(("127.0.0.1", 1), [])
        with pytest.raises(ValueError):
            FailoverWatchdog(
                ("127.0.0.1", 1), [("127.0.0.1", 2)], misses=0
            )

    def test_elects_freshest_standby(self, tmp_path):
        lagging = StandbyServer(tmp_path / "sb0")
        fresh = StandbyServer(tmp_path / "sb1")
        addresses = [
            ("127.0.0.1", lagging.start()),
            ("127.0.0.1", fresh.start()),
        ]
        service, manager = primary_service(tmp_path)
        # Ship everything to standby 1 only: it must win the election
        # despite its higher index.
        sender = ReplicationSender([addresses[1]])
        manager.attach_replication(sender)
        try:
            gen, chunks = make_traffic(total_chunks=4)
            feed(service, gen, chunks)
            watermark = quiesce(service, manager, sender)
            watchdog = FailoverWatchdog(
                ("127.0.0.1", 1), addresses, probe_timeout=2.0
            )
            index, address, lsn = watchdog.elect()
            assert index == 1
            assert address == addresses[1]
            assert lsn == watermark
        finally:
            service.close()
            lagging.stop()
            fresh.stop()

    def test_watermark_tie_breaks_to_lowest_index(self, tmp_path):
        first = StandbyServer(tmp_path / "sb0")
        second = StandbyServer(tmp_path / "sb1")
        addresses = [
            ("127.0.0.1", first.start()),
            ("127.0.0.1", second.start()),
        ]
        try:
            watchdog = FailoverWatchdog(
                ("127.0.0.1", 1), addresses, probe_timeout=2.0
            )
            index, _address, lsn = watchdog.elect()
            assert index == 0  # both at lsn 0: deterministic tie-break
            assert lsn == 0
        finally:
            first.stop()
            second.stop()

    def test_unreachable_standbys_are_skipped(self, tmp_path):
        live = StandbyServer(tmp_path / "sb0")
        addresses = [
            ("127.0.0.1", 1),  # nothing listens here
            ("127.0.0.1", live.start()),
        ]
        try:
            watchdog = FailoverWatchdog(
                ("127.0.0.1", 1), addresses, probe_timeout=1.0
            )
            index, _address, _lsn = watchdog.elect()
            assert index == 1
        finally:
            live.stop()

    def test_no_reachable_standby_raises(self):
        watchdog = FailoverWatchdog(
            ("127.0.0.1", 1),
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            probe_timeout=0.3,
        )
        with pytest.raises(WatchdogError, match="no standby reachable"):
            watchdog.elect()


# ----------------------------------------------------- failover, end to end
class TestAutomatedFailover:
    def test_detects_death_and_promotes(self, tmp_path):
        standby0 = StandbyServer(tmp_path / "sb0")
        standby1 = StandbyServer(tmp_path / "sb1")
        addresses = [
            ("127.0.0.1", standby0.start()),
            ("127.0.0.1", standby1.start()),
        ]
        service, manager = primary_service(tmp_path)
        sender = ReplicationSender(addresses)
        manager.attach_replication(sender)
        status_server = PrimaryStatusServer(manager)
        status_server.start()
        armed = []
        watchdog = FailoverWatchdog(
            status_server.address,
            addresses,
            interval=0.1,
            misses=2,
            probe_timeout=1.0,
            on_armed=lambda: armed.append(True),
        )
        watchdog.start()
        try:
            gen, chunks = make_traffic(total_chunks=4)
            feed(service, gen, chunks)
            watermark = quiesce(service, manager, sender)
            primary_snap = service.snapshot(gen.campaign_id)

            deadline = time.monotonic() + 10.0
            while not watchdog.armed:
                assert time.monotonic() < deadline, "never armed"
                time.sleep(0.01)
            assert armed == [True]

            # "Die": the status listener goes away, heartbeats start
            # missing, and nobody on this side promotes anything.
            status_server.stop()
            deadline = time.monotonic() + 15.0
            while watchdog.result is None:
                assert time.monotonic() < deadline, "never promoted"
                time.sleep(0.05)

            result = watchdog.result
            assert result["watermark_lsn"] == watermark
            assert result["detection_seconds"] is not None
            assert result["promotion_seconds"] > 0.0
            stats = watchdog.stats()
            assert stats["auto_promotions"] == 1
            assert stats["elections"] == 1
            assert stats["heartbeat_misses"] >= 2

            promoted = addresses[result["promoted_index"]]
            with ReplicaReadClient(promoted) as client:
                assert client.status()["promoted"] is True
                replica_snap = client.snapshot(gen.campaign_id)
            assert (
                replica_snap.truths.tobytes()
                == primary_snap.truths.tobytes()
            )
        finally:
            watchdog.stop()
            status_server.stop()
            service.close()
            standby0.stop()
            standby1.stop()

    def test_stop_while_healthy_returns_none(self, tmp_path):
        _service, manager = primary_service(tmp_path)
        status_server = PrimaryStatusServer(manager)
        status_server.start()
        watchdog = FailoverWatchdog(
            status_server.address,
            [("127.0.0.1", 1)],
            interval=0.05,
            misses=2,
        )
        watchdog.start()
        try:
            deadline = time.monotonic() + 10.0
            while not watchdog.armed:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            watchdog.stop()
            assert watchdog.result is None
            assert watchdog.stats()["auto_promotions"] == 0
        finally:
            watchdog.stop()
            status_server.stop()
            _service.close()


# ---------------------------------------------------- quorum-fenced fleet
class TestQuorumFencedFailover:
    """ISSUE-10 tentpole (b): N watchdogs vote before any promotion,
    and the winning fencing epoch makes a second promotion impossible
    fleet-wide — asserted here with the whole fleet in-process."""

    def test_vote_grant_is_single_and_leased(self, tmp_path):
        # Primary address points at nothing: every probe fails, so the
        # peer's own view agrees the primary is dead.
        watchdog = FailoverWatchdog(
            ("127.0.0.1", 1),
            [("127.0.0.1", 2)],
            probe_timeout=0.2,
            peer_port=0,
        )
        peer = watchdog.peer_server
        try:
            assert peer._vote({"epoch": 1, "requester": 1})["granted"]
            # A second candidate is refused while the lease is live...
            denied = peer._vote({"epoch": 1, "requester": 2})
            assert not denied["granted"]
            assert "leased to watchdog 1" in denied["reason"]
            # ...but the grantee itself may re-ask at a higher epoch.
            assert peer._vote({"epoch": 2, "requester": 1})["granted"]
            # Once a promotion is observed, every vote is refused and
            # the verdict says why, so the asker stands down too.
            peer.observe_promotion({"promoted_index": 0})
            verdict = peer._vote({"epoch": 3, "requester": 1})
            assert not verdict["granted"]
            assert verdict["promoted"] is True
            assert peer.votes_granted == 2
            assert peer.votes_denied == 2
        finally:
            watchdog.stop()

    def test_vote_denied_while_primary_alive(self, tmp_path):
        _service, manager = primary_service(tmp_path)
        status_server = PrimaryStatusServer(manager)
        status_server.start()
        watchdog = FailoverWatchdog(
            status_server.address,
            [("127.0.0.1", 2)],
            probe_timeout=1.0,
            peer_port=0,
        )
        try:
            verdict = watchdog.peer_server._vote(
                {"epoch": 1, "requester": 1}
            )
            assert not verdict["granted"]
            assert "alive" in verdict["reason"]
        finally:
            watchdog.stop()
            status_server.stop()
            _service.close()

    def test_empty_elections_are_bounded_and_counted(self):
        watchdog = FailoverWatchdog(
            ("127.0.0.1", 1),
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            probe_timeout=0.2,
            election_attempts=2,
        )
        with pytest.raises(WatchdogError, match="no standby reachable"):
            watchdog.failover()
        stats = watchdog.stats()
        assert stats["failed_elections"] == 2
        assert stats["elections"] == 2
        assert stats["auto_promotions"] == 0

    def test_fleet_promotes_exactly_once_and_fences(self, tmp_path):
        standby0 = StandbyServer(tmp_path / "sb0")
        standby1 = StandbyServer(tmp_path / "sb1")
        addresses = [
            ("127.0.0.1", standby0.start()),
            ("127.0.0.1", standby1.start()),
        ]
        service, manager = primary_service(tmp_path)
        sender = ReplicationSender(addresses)
        manager.attach_replication(sender)
        status_server = PrimaryStatusServer(manager)
        status_server.start()
        ports = allocate_peer_ports(3)
        fleet = [
            FailoverWatchdog(
                status_server.address,
                addresses,
                interval=0.1,
                misses=2,
                probe_timeout=1.0,
                index=i,
                peer_port=ports[i],
                peers=[
                    ("127.0.0.1", p)
                    for j, p in enumerate(ports)
                    if j != i
                ],
            )
            for i in range(3)
        ]
        try:
            gen, chunks = make_traffic(total_chunks=4)
            feed(service, gen, chunks)
            watermark = quiesce(service, manager, sender)
            for watchdog in fleet:
                watchdog.start()
            deadline = time.monotonic() + 10.0
            while not all(w.armed for w in fleet):
                assert time.monotonic() < deadline, "fleet never armed"
                time.sleep(0.01)

            # Kill the primary's liveness surface: all three detect the
            # death near-simultaneously and race for the quorum.
            status_server.stop()
            deadline = time.monotonic() + 30.0
            while any(w.result is None for w in fleet):
                assert time.monotonic() < deadline, "fleet never settled"
                time.sleep(0.05)

            promotions = sum(
                w.stats()["auto_promotions"] for w in fleet
            )
            assert promotions == 1
            winners = [w for w in fleet if w.stats()["auto_promotions"]]
            losers = [w for w in fleet if not w.stats()["auto_promotions"]]
            result = winners[0].result
            assert result["fencing_epoch"] == 1
            assert result["watermark_lsn"] == watermark
            for loser in losers:
                assert loser.result["observed"] is True

            # The fence holds on EVERY standby — the promoted one and
            # the survivor whose fence the winner's broadcast advanced.
            for address in addresses:
                with ReplicaReadClient(address) as client:
                    assert client.status()["fencing_epoch"] == 1
                    with pytest.raises(
                        ReplicaError, match="stale fencing epoch 1"
                    ):
                        client.promote(epoch=1)
        finally:
            for watchdog in fleet:
                watchdog.stop()
            status_server.stop()
            service.close()
            standby0.stop()
            standby1.stop()


# ------------------------------------------------------ failover client
class TestFailoverReadClient:
    def test_repoints_past_dead_standbys(self, tmp_path):
        live = StandbyServer(tmp_path / "sb0")
        port = live.start()
        addresses = [("127.0.0.1", 1), ("127.0.0.1", port)]
        try:
            with FailoverReadClient(addresses, timeout=1.0) as client:
                assert client.ping() is True
                assert client.repoints == 1
                assert client.current_address == addresses[1]
                # Subsequent calls stay on the live standby.
                assert client.status()["promoted"] is False
                assert client.repoints == 1
        finally:
            live.stop()

    def test_all_dead_raises_replica_error(self):
        with FailoverReadClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2)], timeout=0.3
        ) as client:
            # ping() is the liveness query: exhaustion reads as False.
            assert client.ping() is False
            with pytest.raises(ReplicaError, match="no standby reachable"):
                client.status()

    def test_every_standby_dead_raises_promptly(self):
        """ISSUE-10 satellite: total standby loss is a bounded, prompt
        error — one dial per address, no retry loop, no hang."""
        addresses = [
            ("127.0.0.1", 1),
            ("127.0.0.1", 2),
            ("127.0.0.1", 3),
        ]
        with FailoverReadClient(addresses, timeout=0.3) as client:
            start = time.monotonic()
            with pytest.raises(
                ReplicaError, match="no standby reachable"
            ):
                client.snapshot("any-campaign")
            elapsed = time.monotonic() - start
            # Worst case is one timeout per address; anything beyond
            # that would mean the walk looped back over dead standbys.
            assert elapsed < len(addresses) * 0.3 + 1.0

    def test_application_errors_propagate(self, tmp_path):
        live = StandbyServer(tmp_path / "sb0")
        port = live.start()
        try:
            with FailoverReadClient(
                [("127.0.0.1", port)], timeout=2.0
            ) as client:
                # The standby answered and refused: that is not a
                # connectivity problem, so no re-point happens.
                with pytest.raises(ReplicaError, match="unknown"):
                    client.snapshot("no-such-campaign")
                assert client.repoints == 0
        finally:
            live.stop()


# ------------------------------------------------------------ addresses
def test_address_round_trip():
    assert parse_address("127.0.0.1:9001") == ("127.0.0.1", 9001)
    assert format_address(("127.0.0.1", 9001)) == "127.0.0.1:9001"
    with pytest.raises(ValueError):
        parse_address("9001")
