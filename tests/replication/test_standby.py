"""WAL-shipping end to end: ship, read off the replica, promote.

All tests run the standby in-process (:meth:`StandbyServer.start`
serves on a thread) and wire the :class:`ReplicationSender` to a real
:class:`DurabilityManager`, so the full stack — commit listener, tail
reader, framing, standby WAL generation, replay, promotion — is
exercised without subprocesses.
"""

import socket
import time

import numpy as np
import pytest

from repro.durable import DurabilityConfig, DurabilityManager
from repro.durable.stream import WalTailReader
from repro.net.transport import connect
from repro.privacy.ldp import LDPGuarantee
from repro.replication import protocol as rp
from repro.replication.client import ReplicaError, ReplicaReadClient
from repro.replication.sender import ReplicationSender
from repro.replication.standby import StandbyServer
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.ledger import BudgetLedger
from repro.service.loadgen import LoadGenerator
from repro.service.topology import Topology
from repro.workers import protocol as proto
from repro.workers.protocol import recv_frame, send_frame

#: Chunk size equals the micro-batch size so every pump leaves the
#: batcher empty — mid-stream comparisons are then exact (same trick
#: as tests/durable/test_recovery.py).
CHUNK = 128
NUM_USERS = 40
NUM_OBJECTS = 12
COST = LDPGuarantee(epsilon=0.001, delta=0.0)


def service_config():
    return ServiceConfig(num_shards=2, max_batch=CHUNK)


def make_traffic(total_chunks=16, seed=11):
    gen = LoadGenerator(
        "repl-c0",
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=seed,
    )
    chunks = list(
        gen.column_chunks(total_chunks * CHUNK, chunk_size=CHUNK)
    )
    return gen, chunks


def register(service, gen, cost=None):
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
        cost=cost,
    )


def feed(service, chunks):
    for chunk in chunks:
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()


def primary_service(tmp_path, *, ledger=None):
    manager = DurabilityManager(
        DurabilityConfig(directory=tmp_path / "wal", fsync="batch")
    )
    service = IngestService(
        service_config(),
        ledger=ledger,
        topology=Topology.in_process(durability=manager),
    )
    return service, manager


def attach_sender(manager, addresses, **kwargs):
    sender = ReplicationSender(addresses, **kwargs)
    manager.attach_replication(sender)
    return sender


def quiesce(service, manager, sender, *, timeout=60.0):
    """Flush the primary and wait for every standby to ack it."""
    service.flush()
    manager.sync()
    watermark = manager.wal.durable_lsn
    deadline = time.monotonic() + timeout
    while sender.min_ack_lsn() < watermark:
        assert time.monotonic() < deadline, (
            f"standbys stuck at {sender.min_ack_lsn()} < {watermark}"
        )
        time.sleep(0.01)
    return watermark


def ledger_key(records):
    return sorted(
        (r["user_id"], r["epsilon"], r["delta"]) for r in records
    )


def free_port() -> int:
    """A port nothing is listening on (bound once, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestShipAndRead:
    def test_replica_snapshot_bitwise_equal(self, tmp_path):
        gen, chunks = make_traffic()
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(
            tmp_path, ledger=BudgetLedger(epsilon_cap=100.0)
        )
        sender = attach_sender(manager, [address])
        try:
            register(service, gen, cost=COST)
            feed(service, chunks)
            watermark = quiesce(service, manager, sender)

            primary_snap = service.snapshot(gen.campaign_id)
            with ReplicaReadClient(address) as client:
                assert client.ping()
                replica_snap = client.snapshot(gen.campaign_id)
                status = client.status()

            assert (
                replica_snap.truths.tobytes()
                == primary_snap.truths.tobytes()
            )
            assert (
                replica_snap.claims_ingested
                == primary_snap.claims_ingested
            )
            assert (
                replica_snap.weights_by_user
                == primary_snap.weights_by_user
            )
            assert status["durable_lsn"] == watermark
            assert status["promoted"] is False
            assert gen.campaign_id in status["campaigns"]
            assert ledger_key(status["ledger"]["records"]) == ledger_key(
                service.ledger.to_records()
            )

            stats = sender.stats()
            assert stats["sync_mode"] == "async"
            (link,) = stats["standbys"]
            assert link["connected"] is True
            assert link["ack_lsn"] == watermark
            assert link["lag_lsn"] == 0
            assert link["records_shipped"] > 0
            assert link["bytes_shipped"] > 0
        finally:
            service.close()
            standby.stop()

    def test_replication_metrics_exposed(self, tmp_path):
        from repro.obs.exposition import render_prometheus

        gen, chunks = make_traffic(total_chunks=4)
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        try:
            register(service, gen)
            feed(service, chunks)
            quiesce(service, manager, sender)
            text = render_prometheus(
                service.telemetry.snapshot(service)
            )
            for family in (
                "repro_replication_lag_lsn",
                "repro_replication_lag_seconds",
                "repro_replication_connected",
                "repro_replication_records_shipped_total",
                "repro_replication_bytes_shipped_total",
                "repro_replication_reconnects_total",
                "repro_replication_ship_seconds",
            ):
                assert family in text, f"missing {family}"
            assert 'standby="0"' in text
        finally:
            service.close()
            standby.stop()

    def test_unknown_campaign_read_errors_but_connection_survives(
        self, tmp_path
    ):
        gen, chunks = make_traffic(total_chunks=2)
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        try:
            register(service, gen)
            feed(service, chunks)
            quiesce(service, manager, sender)
            with ReplicaReadClient(address) as client:
                with pytest.raises(ReplicaError, match="unknown campaign"):
                    client.snapshot("no-such-campaign")
                # The error is per-request: the stream keeps working.
                snap = client.snapshot(gen.campaign_id)
                assert snap.campaign_id == gen.campaign_id
        finally:
            service.close()
            standby.stop()


class TestPromotion:
    def test_promote_bitwise_with_budget_and_keeps_serving(
        self, tmp_path
    ):
        gen, chunks = make_traffic()
        half = len(chunks) // 2

        # Uncrashed reference over the whole stream.
        reference = IngestService(service_config())
        register(reference, gen)
        feed(reference, chunks)
        reference.flush()
        ref_final = reference.snapshot(gen.campaign_id)
        reference.close()

        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(
            tmp_path, ledger=BudgetLedger(epsilon_cap=100.0)
        )
        sender = attach_sender(manager, [address])
        try:
            register(service, gen, cost=COST)
            feed(service, chunks[:half])
            watermark = quiesce(service, manager, sender)
            primary_snap = service.snapshot(gen.campaign_id)
            spent = service.ledger.to_records()

            # "Crash" the primary: stop shipping, abandon the rest.
            sender.close()
            with ReplicaReadClient(address) as client:
                report = client.promote()
                promoted_snap = client.snapshot(gen.campaign_id)
                status = client.status()
                with pytest.raises(ReplicaError, match="already promoted"):
                    client.promote()

            assert report["watermark_lsn"] == watermark
            assert gen.campaign_id in report["campaigns"]
            assert (
                promoted_snap.truths.tobytes()
                == primary_snap.truths.tobytes()
            )
            assert (
                promoted_snap.claims_ingested
                == primary_snap.claims_ingested
            )
            # Spent budget stays spent across the promotion.
            assert status["promoted"] is True
            assert ledger_key(status["ledger"]["records"]) == ledger_key(
                spent
            )

            # The promoted standby is a fully-functional durable
            # primary: it finishes the stream the crashed one started.
            new_primary = standby.service
            assert standby.durability is not None
            feed(new_primary, chunks[half:])
            new_primary.flush()
            final = new_primary.snapshot(gen.campaign_id)
            assert final.truths.tobytes() == ref_final.truths.tobytes()
            assert final.claims_ingested == ref_final.claims_ingested
        finally:
            service.close()
            standby.stop()
            if standby.durability is not None:
                standby.durability.close()

    def test_promoted_standby_refuses_new_streams(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=2)
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        try:
            register(service, gen)
            feed(service, chunks)
            quiesce(service, manager, sender)
            sender.close()
            with ReplicaReadClient(address) as client:
                client.promote()

            conn = connect(address, timeout=10.0)
            try:
                send_frame(
                    conn,
                    rp.HELLO,
                    rp.encode_json(
                        {"format": rp.REPLICATION_FORMAT, "directory": "x"}
                    ),
                )
                rtype, payload = recv_frame(conn)
            finally:
                conn.close()
            assert rtype == rp.REPL_ERROR
            assert "promoted" in rp.decode_json(payload)["error"]
        finally:
            service.close()
            standby.stop()
            if standby.durability is not None:
                standby.durability.close()

    def test_promote_before_any_stream_fails(self, tmp_path):
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        try:
            with ReplicaReadClient(address) as client:
                with pytest.raises(
                    ReplicaError, match="nothing replicated"
                ):
                    client.promote()
        finally:
            standby.stop()


class TestFencingEpoch:
    """ISSUE-10 tentpole (b): the monotone fencing epoch a standby
    persists before flipping, which makes a stale PROMOTE impossible
    to honour — the standby side of quorum-fenced promotion."""

    def _shipped_standby(self, tmp_path, name="sb0"):
        gen, chunks = make_traffic(total_chunks=2)
        standby = StandbyServer(tmp_path / name)
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        register(service, gen)
        feed(service, chunks)
        quiesce(service, manager, sender)
        sender.close()
        return standby, address, service

    def test_stale_epoch_refused_even_after_promotion(self, tmp_path):
        standby, address, service = self._shipped_standby(tmp_path)
        try:
            with ReplicaReadClient(address) as client:
                report = client.promote(epoch=3)
                assert report["fencing_epoch"] == 3
                assert client.status()["fencing_epoch"] == 3
                # The fence outranks every other refusal: the same (or
                # a lower) epoch is stale whoever presents it.
                with pytest.raises(
                    ReplicaError, match="stale fencing epoch 3"
                ):
                    client.promote(epoch=3)
                with pytest.raises(
                    ReplicaError, match="stale fencing epoch 2"
                ):
                    client.promote(epoch=2)
                # An epoch-less promote on a promoted standby still
                # reads as the plain double-promotion error.
                with pytest.raises(ReplicaError, match="already promoted"):
                    client.promote()
            fence_file = tmp_path / "sb0" / "FENCE"
            assert fence_file.read_text().strip() == "3"
        finally:
            service.close()
            standby.stop()
            if standby.durability is not None:
                standby.durability.close()

    def test_wd_promoted_advances_fence_without_promoting(self, tmp_path):
        standby, address, service = self._shipped_standby(tmp_path)
        try:
            # A watchdog announces someone ELSE won at epoch 5: this
            # standby must adopt the fence but stay a standby.
            conn = connect(address, timeout=10.0)
            try:
                send_frame(
                    conn,
                    rp.WD_PROMOTED,
                    rp.encode_json({"fencing_epoch": 5}),
                )
                rtype, _payload = recv_frame(conn)
            finally:
                conn.close()
            assert rtype == proto.PONG
            with ReplicaReadClient(address) as client:
                status = client.status()
                assert status["promoted"] is False
                assert status["fencing_epoch"] == 5
                # The partitioned loser's late PROMOTE at (or below)
                # the winning epoch bounces off the advanced fence...
                with pytest.raises(
                    ReplicaError, match="stale fencing epoch 5"
                ):
                    client.promote(epoch=5)
                # ...while a legitimately newer election still works.
                report = client.promote(epoch=6)
                assert report["fencing_epoch"] == 6
        finally:
            service.close()
            standby.stop()
            if standby.durability is not None:
                standby.durability.close()

    def test_fence_survives_standby_restart(self, tmp_path):
        standby, address, service = self._shipped_standby(tmp_path)
        try:
            conn = connect(address, timeout=10.0)
            try:
                send_frame(
                    conn,
                    rp.WD_PROMOTED,
                    rp.encode_json({"fencing_epoch": 7}),
                )
                recv_frame(conn)
            finally:
                conn.close()
        finally:
            service.close()
            standby.stop()
        reborn = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", reborn.start())
        try:
            with ReplicaReadClient(address) as client:
                assert client.status()["fencing_epoch"] == 7
                with pytest.raises(
                    ReplicaError, match="stale fencing epoch 6"
                ):
                    client.promote(epoch=6)
        finally:
            reborn.stop()
            if reborn.durability is not None:
                reborn.durability.close()


class TestStreamIntegrity:
    def test_reconnect_resumes_from_standby_cursor(self, tmp_path):
        gen, chunks = make_traffic()
        half = len(chunks) // 2
        standby_dir = tmp_path / "sb0"

        standby = StandbyServer(standby_dir)
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        register(service, gen)
        feed(service, chunks[:half])
        cursor = quiesce(service, manager, sender)

        # Take the standby down mid-deployment; the primary keeps
        # ingesting against a dead link.
        sender.close()
        standby.stop()
        feed(service, chunks[half:])
        service.flush()
        manager.sync()

        # Restart from the same directory: the replicated prefix is
        # recovered and the handshake cursor resumes after it.
        restarted = StandbyServer(standby_dir)
        address = ("127.0.0.1", restarted.start())
        assert restarted.durable_lsn == cursor
        manager._replication = None  # the first sender is closed
        sender = attach_sender(manager, [address])
        try:
            watermark = quiesce(service, manager, sender)
            assert watermark > cursor
            # Only the suffix was shipped — nothing re-sent, nothing
            # re-applied.
            assert sender.links[0].records_shipped == watermark - cursor
            primary_snap = service.snapshot(gen.campaign_id)
            with ReplicaReadClient(address) as client:
                replica_snap = client.snapshot(gen.campaign_id)
            assert (
                replica_snap.truths.tobytes()
                == primary_snap.truths.tobytes()
            )
            assert (
                replica_snap.claims_ingested
                == primary_snap.claims_ingested
            )
        finally:
            service.close()
            restarted.stop()

    def test_duplicate_group_deduped_and_gap_rejected(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=2)
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        try:
            register(service, gen)
            feed(service, chunks)
            watermark = quiesce(service, manager, sender)
            applied_before = standby.records_applied

            first = WalTailReader(
                manager.wal.directory, after_lsn=0
            ).poll(1)
            assert len(first) == 1

            conn = connect(address, timeout=10.0)
            try:
                send_frame(
                    conn,
                    rp.HELLO,
                    rp.encode_json(
                        {"format": rp.REPLICATION_FORMAT, "directory": "x"}
                    ),
                )
                rtype, payload = recv_frame(conn)
                assert rtype == rp.CURSOR
                assert rp.decode_lsn(payload) == watermark

                # A duplicate of an already-durable record (a reconnect
                # replaying history) is acked at the unchanged
                # watermark and never re-applied.
                send_frame(conn, rp.RECORDS, rp.encode_records(first))
                rtype, payload = recv_frame(conn)
                assert rtype == rp.ACK
                assert rp.decode_lsn(payload) == watermark
                assert standby.records_applied == applied_before

                # A gap (skipped LSNs) must never be appended: the
                # standby's log would stop being the primary's prefix.
                gap = [
                    type(first[0])(
                        lsn=watermark + 5,
                        rtype=first[0].rtype,
                        payload=b"",
                    )
                ]
                send_frame(conn, rp.RECORDS, rp.encode_records(gap))
                rtype, payload = recv_frame(conn)
                assert rtype == rp.REPL_ERROR
                assert "stream gap" in rp.decode_json(payload)["error"]
                assert standby.durable_lsn == watermark
            finally:
                conn.close()
        finally:
            service.close()
            standby.stop()

    def test_format_mismatch_refused(self, tmp_path):
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        try:
            conn = connect(address, timeout=10.0)
            try:
                send_frame(
                    conn, rp.HELLO, rp.encode_json({"format": 999})
                )
                rtype, payload = recv_frame(conn)
            finally:
                conn.close()
            assert rtype == rp.REPL_ERROR
            assert "format" in rp.decode_json(payload)["error"]
        finally:
            standby.stop()


class TestCheckpointResync:
    def test_compacted_primary_resyncs_via_checkpoint(self, tmp_path):
        gen, chunks = make_traffic()
        half = len(chunks) // 2
        service, manager = primary_service(tmp_path)
        register(service, gen)
        feed(service, chunks[:half])
        service.flush()
        # Checkpoint + compaction retire the whole replicated prefix:
        # a standby joining at cursor 0 can no longer tail from LSN 1.
        manager.compact()

        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        sender = attach_sender(manager, [address])
        try:
            feed(service, chunks[half:])
            quiesce(service, manager, sender)
            assert sender.links[0].checkpoints_shipped == 1

            primary_snap = service.snapshot(gen.campaign_id)
            with ReplicaReadClient(address) as client:
                replica_snap = client.snapshot(gen.campaign_id)
            assert (
                replica_snap.truths.tobytes()
                == primary_snap.truths.tobytes()
            )
            assert (
                replica_snap.claims_ingested
                == primary_snap.claims_ingested
            )
            assert (
                replica_snap.weights_by_user
                == primary_snap.weights_by_user
            )
        finally:
            service.close()
            standby.stop()


class TestSyncModes:
    def test_semi_sync_acks_every_pump(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=6)
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address], sync="semi-sync")
        try:
            register(service, gen)
            feed(service, chunks)
            service.flush()
            # Every pump blocked on its own ack, so the watermark is
            # already replicated — no waiting loop needed.
            assert sender.min_ack_lsn() >= manager.wal.last_lsn
            assert sender.semi_sync_timeouts == 0
        finally:
            service.close()
            standby.stop()

    def test_semi_sync_timeout_degrades_to_async(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=1)
        service, manager = primary_service(tmp_path)
        # Nothing listens on this port: acks never arrive and every
        # pump degrades after ack_timeout instead of hanging forever.
        sender = attach_sender(
            manager,
            [("127.0.0.1", free_port())],
            sync="semi-sync",
            ack_timeout=0.2,
            connect_timeout=0.2,
        )
        try:
            register(service, gen)
            feed(service, chunks)
            service.flush()
            assert sender.semi_sync_timeouts >= 1
        finally:
            service.close()

    def test_async_never_blocks_on_dead_standby(self, tmp_path):
        gen, chunks = make_traffic(total_chunks=2)
        service, manager = primary_service(tmp_path)
        sender = attach_sender(
            manager,
            [("127.0.0.1", free_port())],
            connect_timeout=0.2,
        )
        try:
            register(service, gen)
            start = time.monotonic()
            feed(service, chunks)
            service.flush()
            # Async mode: a dead standby costs the ingest path nothing.
            assert time.monotonic() - start < 10.0
            assert sender.min_ack_lsn() == 0
            assert np.all(
                np.isfinite(service.snapshot(gen.campaign_id).truths)
            )
        finally:
            service.close()


class TestSenderValidation:
    def test_bad_sync_mode(self):
        with pytest.raises(ValueError, match="sync must be one of"):
            ReplicationSender([("127.0.0.1", 1)], sync="eventually")

    def test_needs_standbys(self):
        with pytest.raises(ValueError, match="at least one standby"):
            ReplicationSender([])

    def test_close_is_idempotent(self, tmp_path):
        standby = StandbyServer(tmp_path / "sb0")
        address = ("127.0.0.1", standby.start())
        service, manager = primary_service(tmp_path)
        sender = attach_sender(manager, [address])
        try:
            sender.close()
            sender.close()
        finally:
            service.close()
            standby.stop()
