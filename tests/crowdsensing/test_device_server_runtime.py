"""Tests for devices, the server, and the end-to-end campaign runtime."""

import numpy as np
import pytest

from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.device import SensorModel, UserDevice
from repro.crowdsensing.faults import FaultModel, lossy
from repro.crowdsensing.messages import TaskAssignment
from repro.crowdsensing.runtime import build_devices, run_campaign
from repro.crowdsensing.server import AggregationServer
from repro.crowdsensing.transport import InProcessTransport


def make_assignment(lambda2=1.0, objects=("o1", "o2")):
    return TaskAssignment(
        campaign_id="c1",
        object_ids=tuple(objects),
        lambda2=lambda2,
        deadline=10.0,
    )


class TestDevice:
    def test_submission_covers_observed_objects(self):
        device = UserDevice("u1", {"o1": 1.0, "o2": 2.0}, random_state=0)
        sub = device.handle_assignment(make_assignment())
        assert sub.object_ids == ("o1", "o2")
        assert len(sub.values) == 2
        assert device.submissions_made == 1

    def test_unobserved_objects_skipped(self):
        device = UserDevice("u1", {"o1": 1.0}, random_state=0)
        sub = device.handle_assignment(make_assignment(objects=("o1", "o9")))
        assert sub.object_ids == ("o1",)

    def test_silent_when_nothing_observed(self):
        device = UserDevice("u1", {"oX": 1.0}, random_state=0)
        assert device.handle_assignment(make_assignment()) is None
        assert device.submissions_made == 0

    def test_values_are_perturbed(self):
        device = UserDevice("u1", {"o1": 1.0, "o2": 2.0}, random_state=0)
        sub = device.handle_assignment(make_assignment(lambda2=0.5))
        # with continuous noise, exact equality has probability zero
        assert sub.values != (1.0, 2.0)

    def test_noise_scales_with_lambda2(self):
        # smaller lambda2 -> bigger sampled variances -> bigger deviations
        observations = {f"o{i}": 0.0 for i in range(2000)}
        dev_small = UserDevice("u", observations, random_state=1)
        dev_large = UserDevice("u", observations, random_state=1)
        sub_noisy = dev_small.handle_assignment(
            TaskAssignment("c", tuple(observations), 0.01, 10.0)
        )
        sub_quiet = dev_large.handle_assignment(
            TaskAssignment("c", tuple(observations), 100.0, 10.0)
        )
        assert np.abs(sub_noisy.values).mean() > np.abs(sub_quiet.values).mean()

    def test_deterministic_per_seed(self):
        a = UserDevice("u", {"o1": 1.0}, random_state=7).handle_assignment(
            make_assignment(objects=("o1",))
        )
        b = UserDevice("u", {"o1": 1.0}, random_state=7).handle_assignment(
            make_assignment(objects=("o1",))
        )
        assert a.values == b.values

    def test_sense_constructor(self):
        device = UserDevice.sense(
            "u1",
            {"o1": 5.0, "o2": 6.0},
            SensorModel(error_std=0.1, bias=1.0),
            random_state=0,
        )
        assert device.original_claim("o1") == pytest.approx(6.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="user_id"):
            UserDevice("", {"o": 1.0})
        with pytest.raises(ValueError, match="observations"):
            UserDevice("u", {})


class TestServer:
    def test_node_id_prefix_enforced(self):
        transport = InProcessTransport(random_state=0)
        with pytest.raises(ValueError, match="server"):
            AggregationServer(transport, node_id="aggregator")

    def test_announce_and_collect(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="c1",
            object_ids=("o1", "o2"),
            lambda2=1.0,
            min_contributors=2,
        )
        devices = [
            UserDevice(f"u{i}", {"o1": 1.0 + i * 0.01, "o2": 2.0}, random_state=i)
            for i in range(3)
        ]
        sent = server.announce_campaign(spec, [d.user_id for d in devices])
        assert sent == 3
        transport.drain_until_idle()
        for device in devices:
            for msg in transport.receive(device.user_id):
                sub = device.handle_assignment(msg)
                transport.send(device.user_id, server.node_id, sub)
        transport.drain_until_idle()
        assert server.collect() == {"c1": 3}
        report = server.finalise(spec, assignments_sent=sent)
        assert report.succeeded
        assert report.truths.shape == (2,)
        assert report.submissions_received == 3

    def test_below_quorum_fails(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="c1",
            object_ids=("o1",),
            lambda2=1.0,
            min_contributors=5,
        )
        server.announce_campaign(spec, ["u1"])
        report = server.finalise(spec, assignments_sent=1)
        assert not report.succeeded
        assert report.truths is None

    def test_duplicate_submissions_deduplicated(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="c1", object_ids=("o1",), lambda2=1.0, min_contributors=2
        )
        server.announce_campaign(spec, ["u1", "u2"])
        from repro.crowdsensing.messages import ClaimSubmission

        for value in (1.0, 1.5):  # u1 retries
            transport.send(
                "u1",
                "server",
                ClaimSubmission("c1", "u1", ("o1",), (value,)),
            )
        transport.send(
            "u2", "server", ClaimSubmission("c1", "u2", ("o1",), (2.0,))
        )
        transport.drain_until_idle()
        server.collect()
        report = server.finalise(spec, assignments_sent=2)
        assert report.submissions_received == 2  # deduplicated by user


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(campaign_id="", object_ids=("o",), lambda2=1.0)
        with pytest.raises(ValueError):
            CampaignSpec(campaign_id="c", object_ids=(), lambda2=1.0)
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(campaign_id="c", object_ids=("o", "o"), lambda2=1.0)
        with pytest.raises(ValueError):
            CampaignSpec(
                campaign_id="c", object_ids=("o",), lambda2=1.0, min_contributors=0
            )


class TestRuntime:
    def _observations(self, num_users=20, num_objects=5, seed=0):
        rng = np.random.default_rng(seed)
        truths = rng.uniform(1.0, 5.0, num_objects)
        return {
            f"u{i}": {
                f"o{j}": float(truths[j] + rng.normal(0, 0.2))
                for j in range(num_objects)
            }
            for i in range(num_users)
        }, truths

    def test_full_round(self):
        observations, truths = self._observations()
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="round-1",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            min_contributors=10,
        )
        report = run_campaign(spec, devices, random_state=1)
        assert report.succeeded
        assert report.submissions_received == 20
        # aggregate lands near the true values despite perturbation
        assert np.abs(report.truths - truths).mean() < 0.5

    def test_no_user_to_user_messages(self):
        observations, _ = self._observations(num_users=10)
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="r",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            min_contributors=2,
        )
        report = run_campaign(spec, devices, random_state=1)
        assert report.user_to_user_messages == 0

    def test_message_complexity_linear_in_users(self):
        # Non-interactive protocol: assignments + submissions + results
        # announcements = at most 3 messages per user.
        observations, _ = self._observations(num_users=15)
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="r",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            min_contributors=2,
        )
        report = run_campaign(spec, devices, random_state=1)
        assert report.messages_total <= 3 * len(devices)

    def test_lossy_network_degrades_coverage_not_correctness(self):
        observations, truths = self._observations(num_users=40)
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="r",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            min_contributors=5,
        )
        report = run_campaign(
            spec, devices, fault_model=lossy(0.3), random_state=1
        )
        assert report.succeeded
        assert report.submissions_received < 40
        assert np.abs(report.truths - truths).mean() < 0.6

    def test_straggler_misses_deadline(self):
        observations, _ = self._observations(num_users=6)
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="r",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            deadline=1.0,
            min_contributors=1,
        )
        fault = FaultModel(
            base_latency=0.01,
            latency_jitter=0.0,
            straggler_probability=1.0,
            straggler_penalty=100.0,
        )
        report = run_campaign(spec, devices, fault_model=fault, random_state=1)
        # every message is a straggler -> nothing arrives by the deadline
        assert not report.succeeded

    def test_report_summary_strings(self):
        observations, _ = self._observations(num_users=5)
        devices = build_devices(observations, random_state=0)
        spec = CampaignSpec(
            campaign_id="r",
            object_ids=tuple(f"o{j}" for j in range(5)),
            lambda2=5.0,
            min_contributors=2,
        )
        report = run_campaign(spec, devices, random_state=1)
        assert "campaign r" in report.summary()
        assert report.coverage == pytest.approx(1.0)
