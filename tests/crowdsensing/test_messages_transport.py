"""Tests for protocol messages and the in-process transport."""

import numpy as np
import pytest

from repro.crowdsensing.faults import RELIABLE, FaultModel, lossy
from repro.crowdsensing.messages import (
    AggregateAnnouncement,
    ClaimSubmission,
    Envelope,
    TaskAssignment,
    from_wire,
    to_wire,
)
from repro.crowdsensing.transport import InProcessTransport


class TestMessages:
    def test_assignment_round_trip(self):
        msg = TaskAssignment(
            campaign_id="c1",
            object_ids=("o1", "o2"),
            lambda2=1.5,
            deadline=10.0,
        )
        assert from_wire(to_wire(msg)) == msg

    def test_submission_round_trip(self):
        msg = ClaimSubmission(
            campaign_id="c1",
            user_id="u1",
            object_ids=("o1",),
            values=(3.25,),
        )
        assert from_wire(to_wire(msg)) == msg

    def test_announcement_round_trip(self):
        msg = AggregateAnnouncement(
            campaign_id="c1",
            object_ids=("o1",),
            truths=(4.0,),
            num_contributors=5,
        )
        assert from_wire(to_wire(msg)) == msg

    def test_submission_has_no_variance_field(self):
        # The privacy boundary: the wire schema cannot leak delta_s^2.
        msg = ClaimSubmission(
            campaign_id="c", user_id="u", object_ids=("o",), values=(1.0,)
        )
        wire = to_wire(msg)
        assert "variance" not in wire
        assert "noise" not in wire

    def test_submission_length_mismatch(self):
        with pytest.raises(ValueError, match="object ids"):
            ClaimSubmission(
                campaign_id="c",
                user_id="u",
                object_ids=("a", "b"),
                values=(1.0,),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown message kind"):
            from_wire('{"kind": "mystery"}')

    def test_envelope_time_ordering(self):
        with pytest.raises(ValueError, match="precede"):
            Envelope(
                sender="a",
                recipient="b",
                payload=None,
                send_time=2.0,
                deliver_time=1.0,
            )


class TestFaultModel:
    def test_reliable_never_drops(self):
        rng = np.random.default_rng(0)
        assert not any(RELIABLE.should_drop(rng) for _ in range(1000))

    def test_drop_probability_respected(self):
        model = lossy(0.5)
        rng = np.random.default_rng(0)
        drops = sum(model.should_drop(rng) for _ in range(10_000))
        assert 4500 < drops < 5500

    def test_latency_at_least_base(self):
        model = FaultModel(base_latency=0.5, latency_jitter=0.1)
        rng = np.random.default_rng(0)
        assert all(model.sample_latency(rng) >= 0.5 for _ in range(100))

    def test_straggler_penalty(self):
        model = FaultModel(
            base_latency=0.01,
            latency_jitter=0.0,
            straggler_probability=1.0,
            straggler_penalty=5.0,
        )
        rng = np.random.default_rng(0)
        assert model.sample_latency(rng) >= 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(base_latency=-1.0)


class TestTransport:
    def test_send_and_deliver(self):
        transport = InProcessTransport(random_state=0)
        msg = TaskAssignment(
            campaign_id="c", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        assert transport.send("server", "u1", msg)
        assert transport.in_flight == 1
        transport.drain_until_idle()
        inbox = transport.receive("u1")
        assert inbox == [msg]
        assert transport.in_flight == 0

    def test_delivery_respects_clock(self):
        transport = InProcessTransport(
            fault_model=FaultModel(base_latency=1.0, latency_jitter=0.0),
            random_state=0,
        )
        msg = TaskAssignment(
            campaign_id="c", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        transport.send("server", "u1", msg)
        transport.advance_to(0.5)
        assert transport.receive("u1") == []
        transport.advance_to(1.5)
        assert transport.receive("u1") == [msg]

    def test_clock_cannot_go_backwards(self):
        transport = InProcessTransport(random_state=0)
        transport.advance_to(5.0)
        with pytest.raises(ValueError, match="backwards"):
            transport.advance_to(1.0)

    def test_self_send_rejected(self):
        transport = InProcessTransport(random_state=0)
        with pytest.raises(ValueError, match="itself"):
            transport.send("a", "a", None)

    def test_drops_counted(self):
        transport = InProcessTransport(fault_model=lossy(1.0), random_state=0)
        msg = TaskAssignment(
            campaign_id="c", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        assert not transport.send("server", "u1", msg)
        assert transport.stats.dropped == 1
        assert transport.stats.sent == 1
        transport.drain_until_idle()
        assert transport.receive("u1") == []

    def test_ordered_delivery_by_time(self):
        transport = InProcessTransport(
            fault_model=FaultModel(base_latency=0.1, latency_jitter=0.0),
            random_state=0,
        )
        m1 = TaskAssignment(
            campaign_id="c1", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        m2 = TaskAssignment(
            campaign_id="c2", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        transport.send("server", "u", m1)
        transport.send("server", "u", m2)
        transport.drain_until_idle()
        inbox = transport.receive("u")
        assert [m.campaign_id for m in inbox] == ["c1", "c2"]

    def test_peek_is_non_destructive(self):
        transport = InProcessTransport(random_state=0)
        msg = TaskAssignment(
            campaign_id="c", object_ids=("o",), lambda2=1.0, deadline=5.0
        )
        transport.send("server", "u", msg)
        transport.drain_until_idle()
        assert transport.peek("u") == [msg]
        assert transport.receive("u") == [msg]

    def test_user_to_user_counter(self):
        transport = InProcessTransport(random_state=0)
        msg = ClaimSubmission(
            campaign_id="c", user_id="u1", object_ids=("o",), values=(1.0,)
        )
        transport.send("u1", "server", msg)
        assert transport.user_to_user_messages() == 0
        transport.send("u1", "u2", msg)
        assert transport.user_to_user_messages() == 1

    def test_unserialisable_payload_fails_fast(self):
        transport = InProcessTransport(random_state=0)
        with pytest.raises(Exception):
            transport.send("server", "u", object())
