"""Tests for the multi-round campaign orchestrator."""

import numpy as np
import pytest

from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.orchestrator import (
    BudgetPolicy,
    CampaignOrchestrator,
)
from repro.crowdsensing.runtime import build_devices
from repro.privacy.ldp import LDPGuarantee, guarantee_of_mechanism


def make_devices(num_users=20, num_objects=4, seed=0):
    rng = np.random.default_rng(seed)
    truths = rng.uniform(1.0, 5.0, num_objects)
    observations = {
        f"u{i:02d}": {
            f"o{j}": float(truths[j] + rng.normal(0, 0.2))
            for j in range(num_objects)
        }
        for i in range(num_users)
    }
    return build_devices(observations, random_state=seed), truths


def make_spec(campaign_id, lambda2=2.0, min_contributors=5):
    return CampaignSpec(
        campaign_id=campaign_id,
        object_ids=tuple(f"o{j}" for j in range(4)),
        lambda2=lambda2,
        min_contributors=min_contributors,
    )


class TestBudgetPolicy:
    def test_allows_within_cap(self):
        policy = BudgetPolicy(epsilon_cap=2.0, delta_cap=0.5)
        spent = LDPGuarantee(1.0, 0.2)
        assert policy.allows(spent, LDPGuarantee(1.0, 0.3))
        assert not policy.allows(spent, LDPGuarantee(1.1, 0.1))
        assert not policy.allows(spent, LDPGuarantee(0.5, 0.4))

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(epsilon_cap=0.0)
        with pytest.raises(ValueError):
            BudgetPolicy(epsilon_cap=1.0, delta_cap=0.0)


class TestOrchestrator:
    def test_single_round(self):
        devices, _truths = make_devices()
        orch = CampaignOrchestrator(
            devices,
            sensitivity=1.0,
            delta=0.3,
            policy=BudgetPolicy(epsilon_cap=100.0),
            random_state=0,
        )
        report = orch.run_schedule([make_spec("r1")])
        assert report.num_rounds == 1
        assert report.rounds[0].succeeded
        assert report.excluded_by_round[0] == []

    def test_budget_charged_to_contributors(self):
        devices, _truths = make_devices()
        orch = CampaignOrchestrator(
            devices,
            sensitivity=1.0,
            delta=0.3,
            policy=BudgetPolicy(epsilon_cap=100.0),
            random_state=0,
        )
        orch.run_schedule([make_spec("r1")])
        per_round = guarantee_of_mechanism(2.0, 1.0, 0.3)
        spent = orch.accountant.composed_guarantee("u00")
        assert spent.epsilon == pytest.approx(per_round.epsilon)

    def test_budget_exhaustion_excludes_users(self):
        devices, _truths = make_devices()
        per_round = guarantee_of_mechanism(2.0, 1.0, 0.3)
        # cap allows exactly two rounds
        cap = per_round.epsilon * 2 + 1e-9
        orch = CampaignOrchestrator(
            devices,
            sensitivity=1.0,
            delta=0.3,
            policy=BudgetPolicy(epsilon_cap=cap),
            random_state=0,
        )
        report = orch.run_schedule(
            [make_spec(f"r{i}") for i in range(3)]
        )
        assert report.rounds[0].succeeded
        assert report.rounds[1].succeeded
        # third round: everyone over budget -> skipped
        assert not report.rounds[2].succeeded
        assert len(report.excluded_by_round[2]) == len(devices)

    def test_remaining_budget(self):
        devices, _truths = make_devices()
        orch = CampaignOrchestrator(
            devices,
            sensitivity=1.0,
            delta=0.3,
            policy=BudgetPolicy(epsilon_cap=10.0, delta_cap=1.0),
            random_state=0,
        )
        orch.run_schedule([make_spec("r1")])
        per_round = guarantee_of_mechanism(2.0, 1.0, 0.3)
        remaining = orch.remaining_budget("u00")
        assert remaining.epsilon == pytest.approx(10.0 - per_round.epsilon)

    def test_rounds_are_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            devices, _truths = make_devices()
            orch = CampaignOrchestrator(
                devices,
                sensitivity=1.0,
                delta=0.3,
                policy=BudgetPolicy(epsilon_cap=100.0),
                random_state=77,
            )
            report = orch.run_schedule([make_spec("r1")])
            results.append(report.rounds[0].truths)
        np.testing.assert_array_equal(results[0], results[1])

    def test_aggregates_stay_accurate(self):
        devices, truths = make_devices(num_users=40)
        orch = CampaignOrchestrator(
            devices,
            sensitivity=1.0,
            delta=0.3,
            policy=BudgetPolicy(epsilon_cap=100.0),
            random_state=0,
        )
        report = orch.run_schedule(
            [make_spec(f"r{i}", lambda2=5.0) for i in range(3)]
        )
        for round_report in report.successful_rounds():
            assert np.abs(round_report.truths - truths).mean() < 0.5

    def test_validation(self):
        devices, _truths = make_devices(num_users=2)
        with pytest.raises(ValueError, match="at least one device"):
            CampaignOrchestrator(
                [], sensitivity=1.0, delta=0.3,
                policy=BudgetPolicy(epsilon_cap=1.0),
            )
        with pytest.raises(ValueError, match="delta"):
            CampaignOrchestrator(
                devices, sensitivity=1.0, delta=1.0,
                policy=BudgetPolicy(epsilon_cap=1.0),
            )
