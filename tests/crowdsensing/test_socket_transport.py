"""Device transport over real sockets.

ISSUE-6: the socket fabric serves two protocols through one framing
layer — these tests cover the second, the crowdsensing device
transport.  The protocol-shape invariants checked against the simulated
transport (server-mediated routing, zero user-to-user traffic) must
hold identically over TCP.
"""

import time

import pytest

from repro.crowdsensing.messages import ClaimSubmission, TaskAssignment
from repro.crowdsensing.socket_transport import (
    DeviceClient,
    SocketTransportServer,
)


def assignment(campaign_id="sock-c"):
    return TaskAssignment(
        campaign_id=campaign_id,
        object_ids=("o1", "o2"),
        lambda2=0.5,
        deadline=60.0,
    )


def submission(user_id):
    return ClaimSubmission(
        campaign_id="sock-c",
        user_id=user_id,
        object_ids=("o1", "o2"),
        values=(0.25, -1.5),
    )


class TestRoundTrip:
    def test_assignment_and_submission_round_trip(self):
        with SocketTransportServer() as server:
            with DeviceClient(server.address, "user0") as device:
                server.send("user0", assignment())
                got = device.receive(timeout=10.0)
                assert got == [assignment()]
                device.send("server", submission("user0"))
                deadline_messages = []
                for _ in range(100):
                    deadline_messages = server.receive()
                    if deadline_messages:
                        break
                    time.sleep(0.05)
                assert deadline_messages == [submission("user0")]

    def test_parked_message_flushes_at_hello(self):
        """Store-and-forward: a message sent before the device connects
        is delivered the moment it introduces itself."""
        with SocketTransportServer() as server:
            server.send("user1", assignment())
            assert server.connected_nodes() == []
            with DeviceClient(server.address, "user1") as device:
                assert device.receive(timeout=10.0) == [assignment()]

    def test_multiple_devices_routed_independently(self):
        with SocketTransportServer() as server:
            with DeviceClient(server.address, "user0") as d0, \
                    DeviceClient(server.address, "user1") as d1:
                server.send("user0", assignment("for-0"))
                server.send("user1", assignment("for-1"))
                assert [m.campaign_id for m in d0.receive(timeout=10.0)] \
                    == ["for-0"]
                assert [m.campaign_id for m in d1.receive(timeout=10.0)] \
                    == ["for-1"]


class TestProtocolShape:
    def test_no_user_to_user_traffic_in_protocol_rounds(self):
        """The paper's protocol is strictly server-mediated; a full
        assignment/submission round over sockets leaves the
        user-to-user link counter at zero."""
        with SocketTransportServer() as server:
            devices = [
                DeviceClient(server.address, f"user{i}") for i in range(3)
            ]
            try:
                for device in devices:
                    server.send(device.node_id, assignment())
                for device in devices:
                    assert device.receive(timeout=10.0)
                    device.send("server", submission(device.node_id))
                deadline = time.monotonic() + 10
                received = []
                while len(received) < 3 and time.monotonic() < deadline:
                    received.extend(server.receive())
                    time.sleep(0.02)
                assert len(received) == 3
            finally:
                for device in devices:
                    device.close()
            assert server.user_to_user_messages() == 0
            assert server.stats.delivered >= 6

    def test_user_to_user_relay_is_counted(self):
        """If a device does address another device, the router carries
        the frame — and the violation shows up in the counter."""
        with SocketTransportServer() as server:
            with DeviceClient(server.address, "user0") as d0, \
                    DeviceClient(server.address, "user1") as d1:
                d0.send("user1", assignment())
                assert d1.receive(timeout=10.0) == [assignment()]
                assert server.user_to_user_messages() == 1

    def test_self_send_rejected(self):
        with SocketTransportServer() as server:
            with pytest.raises(ValueError):
                server.send("server", assignment())
            with DeviceClient(server.address, "user0") as device:
                with pytest.raises(ValueError):
                    device.send("user0", assignment())


class TestLifecycle:
    def test_connected_nodes_tracks_hellos(self):
        with SocketTransportServer() as server:
            with DeviceClient(server.address, "userB"):
                with DeviceClient(server.address, "userA"):
                    deadline = time.monotonic() + 10
                    while server.connected_nodes() != ["userA", "userB"] \
                            and time.monotonic() < deadline:
                        time.sleep(0.02)
                    assert server.connected_nodes() == ["userA", "userB"]

    def test_close_idempotent(self):
        server = SocketTransportServer()
        with DeviceClient(server.address, "user0"):
            pass
        server.close()
        server.close()

    def test_send_after_device_disconnect_parks_for_reconnect(self):
        """A vanished device's messages wait for its reconnect instead
        of being dropped."""
        with SocketTransportServer() as server:
            device = DeviceClient(server.address, "user0")
            deadline = time.monotonic() + 10
            while "user0" not in server.connected_nodes() \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            device.close()
            # The router notices the EOF and forgets the connection.
            deadline = time.monotonic() + 10
            while server.connected_nodes() and time.monotonic() < deadline:
                time.sleep(0.02)
            server.send("user0", assignment())
            with DeviceClient(server.address, "user0") as again:
                assert again.receive(timeout=10.0) == [assignment()]
