"""Tests for incentive allocation."""

import numpy as np
import pytest

from repro.crowdsensing.incentives import (
    RewardPolicy,
    allocate_rewards,
    reward_distortion,
    top_contributor_overlap,
)


class TestRewardPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RewardPolicy(budget=0.0)
        with pytest.raises(ValueError):
            RewardPolicy(budget=100.0, base_share=1.5)


class TestAllocateRewards:
    def test_budget_conserved(self):
        rewards = allocate_rewards(
            [1.0, 2.0, 3.0], RewardPolicy(budget=120.0)
        )
        assert rewards.sum() == pytest.approx(120.0)

    def test_monotone_in_weight(self):
        rewards = allocate_rewards(
            [0.5, 1.0, 2.0], RewardPolicy(budget=100.0)
        )
        assert rewards[0] < rewards[1] < rewards[2]

    def test_base_share_floor(self):
        policy = RewardPolicy(budget=100.0, base_share=0.3)
        rewards = allocate_rewards([0.0, 10.0], policy)
        # zero-weight user still gets the participation floor
        assert rewards[0] == pytest.approx(15.0)

    def test_pure_proportional(self):
        policy = RewardPolicy(budget=100.0, base_share=0.0)
        rewards = allocate_rewards([1.0, 3.0], policy)
        np.testing.assert_allclose(rewards, [25.0, 75.0])

    def test_equal_split_fallback(self):
        rewards = allocate_rewards([0.0, 0.0], RewardPolicy(budget=50.0))
        np.testing.assert_allclose(rewards, [25.0, 25.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_rewards([], RewardPolicy(budget=1.0))
        with pytest.raises(ValueError):
            allocate_rewards([-1.0, 1.0], RewardPolicy(budget=1.0))
        with pytest.raises(ValueError):
            allocate_rewards([np.nan], RewardPolicy(budget=1.0))


class TestDistortionMetrics:
    def test_zero_for_identical_weights(self):
        policy = RewardPolicy(budget=100.0)
        w = [1.0, 2.0, 3.0]
        assert reward_distortion(w, w, policy) == 0.0

    def test_scale_invariance_of_weights(self):
        policy = RewardPolicy(budget=100.0)
        w = np.array([1.0, 2.0, 3.0])
        assert reward_distortion(w, w * 7, policy) == pytest.approx(0.0)

    def test_bounded_by_one(self):
        policy = RewardPolicy(budget=100.0, base_share=0.0)
        assert reward_distortion([1.0, 0.0], [0.0, 1.0], policy) <= 1.0

    def test_overlap_metric(self):
        w = np.arange(20.0)
        assert top_contributor_overlap(w, w, top_k=5) == 1.0
        assert top_contributor_overlap(w, -w, top_k=5) == 0.0

    def test_overlap_shape_check(self):
        with pytest.raises(ValueError):
            top_contributor_overlap(np.ones(3), np.ones(4))


class TestEndToEndFairness:
    def test_payout_mass_stable_under_perturbation(self, synthetic_dataset):
        """Perturbation must not redistribute meaningful payout mass."""
        from repro.core.mechanism import PrivateTruthDiscovery
        from repro.metrics.weights import true_weights
        from repro.truthdiscovery.crh import CRH

        pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
        outcome = pipeline.run(synthetic_dataset.claims, random_state=0)
        oracle = true_weights(
            CRH(), synthetic_dataset.claims, synthetic_dataset.ground_truth
        )
        policy = RewardPolicy(budget=1000.0)
        distortion = reward_distortion(oracle, outcome.weights, policy)
        # less than ~10% of the budget shifts under heavy perturbation
        assert distortion < 0.10

    def test_clean_estimation_preserves_top_earners(self, synthetic_dataset):
        """Without noise, CRH's weights recover the true bonus ranking;
        under heavy noise the ranking (unlike the payout mass) degrades —
        a real deployment caveat the metrics expose."""
        from repro.metrics.weights import true_weights
        from repro.truthdiscovery.crh import CRH

        estimated = CRH().fit(synthetic_dataset.claims).weights
        oracle = true_weights(
            CRH(), synthetic_dataset.claims, synthetic_dataset.ground_truth
        )
        assert top_contributor_overlap(oracle, estimated, top_k=10) >= 0.8
