"""Exposition tests: Prometheus text rendering and the HTTP endpoint."""

from repro.obs.exposition import (
    MetricsServer,
    render_prometheus,
    scrape,
    try_scrape,
)
from repro.obs.registry import MetricRegistry


def _sample_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("repro_claims_total", "claims").inc(42)
    reg.gauge("repro_queue_depth", labels=("shard",)).labels(shard=0).set(3)
    hist = reg.histogram("repro_flush_seconds", "flush latency")
    hist.observe(1e-4)
    hist.observe(2e-3)
    return reg


class TestRender:
    def test_families_and_types_present(self):
        text = render_prometheus(_sample_registry().snapshot())
        assert "# TYPE repro_claims_total counter" in text
        assert "repro_claims_total 42" in text
        assert 'repro_queue_depth{shard="0"} 3' in text
        assert "# TYPE repro_flush_seconds histogram" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus(_sample_registry().snapshot())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_flush_seconds_bucket")
        ]
        counts = [float(line.split()[-1]) for line in lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in lines[-1]
        assert counts[-1] == 2
        assert "repro_flush_seconds_sum" in text
        assert "repro_flush_seconds_count 2" in text

    def test_empty_snapshot_renders(self):
        assert render_prometheus(MetricRegistry().snapshot()) == ""


class TestServer:
    def test_scrape_round_trips_the_snapshot(self):
        reg = _sample_registry()
        with MetricsServer(reg.snapshot) as server:
            snap = scrape(server.url)
            assert snap.value("repro_claims_total") == 42
            assert snap.value("repro_queue_depth", shard=0) == 3
            hist = snap.histograms
            assert len(hist) == 1

    def test_provider_swap_and_freeze(self):
        first = MetricRegistry()
        first.counter("c_total").inc(1)
        with MetricsServer(first.snapshot) as server:
            assert scrape(server.url).value("c_total") == 1
            second = MetricRegistry()
            second.counter("c_total").inc(10)
            server.set_provider(second.snapshot)
            assert scrape(server.url).value("c_total") == 10
            server.freeze()
            second.counter("c_total").inc(5)
            # Frozen: still serves the snapshot taken at freeze() time.
            assert scrape(server.url).value("c_total") == 10

    def test_prometheus_content_served(self):
        import urllib.request

        reg = _sample_registry()
        with MetricsServer(reg.snapshot) as server:
            body = urllib.request.urlopen(server.url).read().decode()
        assert "# TYPE repro_claims_total counter" in body

    def test_try_scrape_returns_none_when_unreachable(self):
        with MetricsServer(MetricRegistry().snapshot) as server:
            url = server.url
        assert try_scrape(url) is None
