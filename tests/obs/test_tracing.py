"""Tracing tests: sampling cadence, stage stamping, durable resolution."""

import json

import pytest

from repro.obs.tracing import STAGES, TraceCollector


class TestSampling:
    def test_disabled_collector_never_samples(self):
        collector = TraceCollector(0)
        assert not collector.enabled
        assert all(
            collector.maybe_start("c", 1) is None for _ in range(100)
        )

    def test_one_in_n_cadence(self):
        collector = TraceCollector(4)
        started = [
            collector.maybe_start("c", 1) is not None for _ in range(20)
        ]
        assert sum(started) == 5
        # Every 4th call samples, deterministically.
        assert started[3] and started[7] and not started[0]

    def test_negative_sample_every_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector(-1)


class TestStages:
    def test_volatile_flush_collapses_durable(self):
        collector = TraceCollector(1)
        trace = collector.maybe_start("c0", 64)
        trace.enqueue_ts = trace.submit_ts + 0.001
        collector.on_flushed(trace, lsn=None)
        assert trace.complete
        assert trace.durable_ts == trace.flush_ts
        (record,) = collector.records()
        assert record["lsn"] is None
        assert set(record["stage_offsets_s"]) == set(STAGES)
        assert record["total_s"] >= 0.0

    def test_durable_stamps_lazily_at_watermark(self):
        collector = TraceCollector(1)
        first = collector.maybe_start("c0", 10)
        second = collector.maybe_start("c0", 10)
        collector.on_flushed(first, lsn=3)
        collector.on_flushed(second, lsn=7)
        assert len(collector) == 0  # both awaiting durability
        assert collector.resolve_durable(2) == 0
        assert collector.resolve_durable(3) == 1
        assert first.complete and not second.complete
        assert collector.resolve_durable(100) == 1
        assert len(collector) == 2
        records = collector.records()
        assert [r["trace_id"] for r in records] == [1, 2]
        for record in records:
            assert record["stage_deltas_s"]["durable"] >= 0.0

    def test_pending_overflow_sheds_instead_of_growing(self):
        collector = TraceCollector(1, max_pending=2)
        traces = [collector.maybe_start("c", 1) for _ in range(3)]
        for i, trace in enumerate(traces):
            collector.on_flushed(trace, lsn=i + 1)
        # The third trace was shed straight to completed, durable-less.
        assert len(collector) == 1
        assert collector.records()[0]["stage_offsets_s"]["durable"] is None
        assert collector.resolve_durable(10) == 2

    def test_completed_ring_is_bounded(self):
        collector = TraceCollector(1, max_records=8)
        for _ in range(50):
            collector.on_flushed(collector.maybe_start("c", 1), lsn=None)
        assert len(collector) == 8


def test_dump_writes_json_artifact(tmp_path):
    collector = TraceCollector(1)
    collector.on_flushed(collector.maybe_start("c0", 5), lsn=None)
    path = tmp_path / "traces.json"
    assert collector.dump(str(path)) == 1
    payload = json.loads(path.read_text())
    assert payload["sample_every"] == 1
    assert len(payload["traces"]) == 1
    assert payload["traces"][0]["campaign_id"] == "c0"
