"""Unit tests for the metric registry core (repro.obs.registry)."""

import math

import pytest

from repro.obs.registry import (
    BUCKET_BASE,
    BUCKET_EDGES,
    NUM_BUCKETS,
    NULL_REGISTRY,
    MetricRegistry,
    RegistrySnapshot,
    bucket_index,
    percentile_from_counts,
    series_key,
    series_name,
)


class TestBucketIndex:
    def test_zero_and_subbase_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(BUCKET_BASE / 2) == 0
        assert bucket_index(BUCKET_BASE) == 0

    def test_exact_powers_land_on_their_edge_bucket(self):
        # Bucket i covers (BASE * 2^(i-1), BASE * 2^i]: the upper edge
        # itself belongs to the bucket.
        for i in range(1, NUM_BUCKETS):
            assert bucket_index(BUCKET_EDGES[i]) == i

    def test_values_just_above_an_edge_move_up(self):
        for i in range(1, NUM_BUCKETS - 1):
            assert bucket_index(BUCKET_EDGES[i] * 1.0001) == i + 1

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(1e9) == NUM_BUCKETS - 1
        assert bucket_index(float("inf")) == NUM_BUCKETS - 1

    def test_matches_bisect_reference(self):
        # frexp shortcut must agree with the obvious O(n) edge walk.
        import bisect

        for exp in range(-7, 3):
            for mult in (1.0, 1.3, 2.0, 7.7):
                value = mult * 10.0**exp
                expected = min(
                    bisect.bisect_left(BUCKET_EDGES, value),
                    NUM_BUCKETS - 1,
                )
                assert bucket_index(value) == expected, value


class TestPercentile:
    def test_empty_histogram_is_zero(self):
        assert percentile_from_counts([0] * NUM_BUCKETS, 99) == 0.0

    def test_single_bucket_interpolates_within_edges(self):
        counts = [0] * NUM_BUCKETS
        counts[4] = 100  # (8e-6, 1.6e-5]
        p50 = percentile_from_counts(counts, 50)
        assert BUCKET_EDGES[3] < p50 <= BUCKET_EDGES[4]
        # Linear interpolation: p100 hits the upper edge exactly.
        assert percentile_from_counts(counts, 100) == BUCKET_EDGES[4]

    def test_percentiles_are_monotone_in_q(self):
        counts = [0] * NUM_BUCKETS
        counts[2], counts[5], counts[9] = 10, 30, 5
        values = [percentile_from_counts(counts, q) for q in range(0, 101, 5)]
        assert values == sorted(values)

    def test_rank_crosses_buckets(self):
        counts = [0] * NUM_BUCKETS
        counts[0], counts[10] = 90, 10
        assert percentile_from_counts(counts, 50) <= BUCKET_EDGES[0]
        assert percentile_from_counts(counts, 99) > BUCKET_EDGES[9]

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile_from_counts([1], 101)


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        reg = MetricRegistry()
        reg.counter("c_total").inc(3)
        reg.gauge("g").set(7.5)
        hist = reg.histogram("h_seconds")
        hist.observe(1e-5)
        hist.observe(2.0)
        snap = reg.snapshot()
        assert snap.value("c_total") == 3
        assert snap.value("g") == 7.5
        assert snap.histograms[series_key("h_seconds")]["count"] == 2
        p99 = snap.histogram_percentile("h_seconds", 99)
        assert p99 is not None and p99 > 1.0

    def test_registration_is_idempotent_but_type_checked(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.counter("x", labels=("shard",))

    def test_labelled_family_children_are_cached(self):
        reg = MetricRegistry()
        fam = reg.counter("f_total", labels=("shard",))
        assert fam.labels(shard=0) is fam.labels(shard=0)
        fam.labels(shard=0).inc()
        fam.labels(shard=1).inc(2)
        snap = reg.snapshot()
        assert snap.value("f_total", shard=0) == 1
        assert snap.value("f_total", shard=1) == 2
        assert snap.family_total("f_total") == 3

    def test_cardinality_cap_collapses_to_overflow(self):
        reg = MetricRegistry()
        fam = reg.counter("cap_total", labels=("campaign",))
        for i in range(fam.MAX_CHILDREN + 40):
            fam.labels(campaign=f"c{i}").inc()
        snap = reg.snapshot()
        series = [k for k in snap.counters if k[0] == "cap_total"]
        assert len(series) == fam.MAX_CHILDREN + 1
        assert snap.value("cap_total", campaign="_overflow") == 40

    def test_null_registry_is_inert_and_free(self):
        assert not NULL_REGISTRY.enabled
        metric = NULL_REGISTRY.counter("anything")
        metric.inc()
        metric.observe(1.0)
        metric.set(2.0)
        assert metric.labels(shard=3) is metric
        snap = NULL_REGISTRY.snapshot()
        assert snap.counters == {} and snap.histograms == {}


class TestSnapshot:
    def test_merge_sums_counters_and_bucket_counts(self):
        a, b = MetricRegistry(), MetricRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.counter("c_total").inc(n)
            h = reg.histogram("h_seconds")
            for _ in range(n):
                h.observe(1e-4)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.value("c_total") == 7
        hist = merged.histograms[series_key("h_seconds")]
        assert hist["count"] == 7
        assert math.isclose(hist["sum"], 7e-4)

    def test_relabel_tags_every_series(self):
        reg = MetricRegistry()
        reg.counter("c_total", labels=("shard",)).labels(shard=1).inc()
        snap = reg.snapshot().relabel(proc="worker3")
        assert snap.value("c_total", shard=1, proc="worker3") == 1
        assert snap.value("c_total", shard=1) is None

    def test_series_name_rendering(self):
        assert series_name(series_key("up")) == "up"
        assert (
            series_name(series_key("c", {"b": 1, "a": "x"}))
            == 'c{a="x",b="1"}'
        )

    def test_dict_round_trip(self):
        reg = MetricRegistry()
        reg.counter("c_total", labels=("shard",)).labels(shard=2).inc(9)
        reg.gauge("g").set(-1.5)
        reg.histogram("h_seconds").observe(0.25)
        snap = reg.snapshot()
        clone = RegistrySnapshot.from_dict(snap.to_dict())
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms
