"""Tests for the core Algorithm 2 pipeline and its config/result types."""

import math

import numpy as np
import pytest

from repro.core.config import PrivacyConfig
from repro.core.mechanism import PrivateTruthDiscovery
from repro.privacy.mechanisms import (
    FixedGaussianMechanism,
    NullMechanism,
)
from repro.truthdiscovery.crh import CRH


class TestPrivacyConfig:
    def test_from_lambda2(self):
        config = PrivacyConfig.from_lambda2(2.0)
        assert config.lambda2 == 2.0
        assert config.epsilon is None

    def test_from_privacy_target_round_trip(self):
        config = PrivacyConfig.from_privacy_target(
            epsilon=1.0, delta=0.3, sensitivity=1.5
        )
        from repro.privacy.ldp import epsilon_of_mechanism

        assert epsilon_of_mechanism(config.lambda2, 1.5, 0.3) == pytest.approx(1.0)

    def test_expected_noise_properties(self):
        config = PrivacyConfig.from_lambda2(2.0)
        assert config.expected_noise_variance == 0.5
        assert config.expected_absolute_noise == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyConfig(lambda2=-1.0)
        with pytest.raises(ValueError):
            PrivacyConfig(lambda2=1.0, delta=1.0)


class TestConstruction:
    def test_requires_exactly_one_source(self, small_claims):
        with pytest.raises(ValueError, match="exactly one"):
            PrivateTruthDiscovery(method="crh")
        with pytest.raises(ValueError, match="exactly one"):
            PrivateTruthDiscovery(
                method="crh",
                lambda2=1.0,
                config=PrivacyConfig.from_lambda2(1.0),
            )

    def test_method_by_instance(self, small_claims):
        pipeline = PrivateTruthDiscovery(method=CRH(), lambda2=1.0)
        outcome = pipeline.run(small_claims, random_state=0)
        assert outcome.discovery.method == "crh"

    def test_method_kwargs_with_instance_rejected(self):
        with pytest.raises(ValueError, match="method_kwargs"):
            PrivateTruthDiscovery(
                method=CRH(), lambda2=1.0, distance="absolute"
            )

    def test_custom_mechanism(self, small_claims):
        pipeline = PrivateTruthDiscovery(
            method="crh", mechanism=FixedGaussianMechanism(variance=0.01)
        )
        outcome = pipeline.run(small_claims, random_state=0)
        assert outcome.perturbation.mechanism == "fixed-gaussian"

    def test_for_privacy_target(self, small_claims):
        pipeline = PrivateTruthDiscovery.for_privacy_target(
            epsilon=1.0, delta=0.3, sensitivity=1.0
        )
        outcome = pipeline.run(small_claims, random_state=0)
        assert outcome.guarantee is not None
        assert outcome.guarantee.epsilon == pytest.approx(1.0)
        assert outcome.guarantee.delta == 0.3


class TestRun:
    def test_output_shapes(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        outcome = pipeline.run(synthetic_dataset.claims, random_state=0)
        assert outcome.truths.shape == (synthetic_dataset.num_objects,)
        assert outcome.weights.shape == (synthetic_dataset.num_users,)
        assert outcome.average_absolute_noise > 0

    def test_deterministic(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        a = pipeline.run(synthetic_dataset.claims, random_state=9)
        b = pipeline.run(synthetic_dataset.claims, random_state=9)
        np.testing.assert_array_equal(a.truths, b.truths)

    def test_no_guarantee_without_target(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        outcome = pipeline.run(synthetic_dataset.claims, random_state=0)
        assert outcome.guarantee is None

    def test_guarantee_method(self):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
        g = pipeline.guarantee(sensitivity=1.0, delta=0.3)
        assert g.epsilon == pytest.approx(1.0 / (2 * math.log(1 / 0.7)))

    def test_works_with_all_methods(self, synthetic_dataset):
        from repro.truthdiscovery.registry import available_methods

        for name in available_methods():
            pipeline = PrivateTruthDiscovery(method=name, lambda2=5.0)
            outcome = pipeline.run(synthetic_dataset.claims, random_state=0)
            assert np.isfinite(outcome.truths).all()


class TestEvaluateUtility:
    def test_mae_small_relative_to_noise(self, synthetic_dataset):
        # The paper's headline: MAE a small fraction of the added noise.
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
        ev = pipeline.evaluate_utility(synthetic_dataset.claims, random_state=0)
        assert ev.average_absolute_noise > 0.3
        assert ev.mae < 0.5 * ev.average_absolute_noise

    def test_null_mechanism_gives_zero_mae(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(
            method="crh", mechanism=NullMechanism()
        )
        ev = pipeline.evaluate_utility(synthetic_dataset.claims, random_state=0)
        assert ev.mae == 0.0
        assert ev.average_absolute_noise == 0.0

    def test_timings_recorded(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        ev = pipeline.evaluate_utility(synthetic_dataset.claims, random_state=0)
        assert ev.original_seconds > 0
        assert ev.private_seconds > 0

    def test_summary_string(self, synthetic_dataset):
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=2.0)
        ev = pipeline.evaluate_utility(synthetic_dataset.claims, random_state=0)
        assert "mae=" in ev.summary()

    def test_more_noise_means_more_mae(self, synthetic_dataset):
        noisy = PrivateTruthDiscovery(method="crh", lambda2=0.05)
        quiet = PrivateTruthDiscovery(method="crh", lambda2=50.0)
        maes = {}
        for label, pipeline in (("noisy", noisy), ("quiet", quiet)):
            values = [
                pipeline.evaluate_utility(
                    synthetic_dataset.claims, random_state=seed
                ).mae
                for seed in range(5)
            ]
            maes[label] = np.mean(values)
        assert maes["noisy"] > maes["quiet"]

    def test_weights_adjust_for_noisy_users(self, synthetic_dataset):
        # The self-correction story (paper's Example in Sec 3.2): the user
        # with the largest sampled noise variance should lose weight
        # relative to their no-noise weight, on average.
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=0.3)
        drops = []
        for seed in range(10):
            ev = pipeline.evaluate_utility(
                synthetic_dataset.claims, random_state=seed
            )
            noisiest = int(np.argmax(ev.private.perturbation.noise_variances))
            drops.append(
                ev.original.weights[noisiest]
                - ev.private.discovery.weights[noisiest]
            )
        assert np.mean(drops) > 0
