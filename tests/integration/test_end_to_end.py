"""End-to-end integration tests crossing all subsystems."""

import numpy as np
import pytest

from repro.core.mechanism import PrivateTruthDiscovery
from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.runtime import build_devices, run_campaign
from repro.datasets.floorplan import generate_floorplan_dataset
from repro.datasets.synthetic import generate_synthetic
from repro.metrics.accuracy import mae
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import lambda2_for_epsilon
from repro.privacy.sensitivity import lemma47_bound
from repro.theory.tradeoff import (
    choose_noise_level,
    lambda2_for_noise_level,
    noise_level_window,
)
from repro.truthdiscovery.crh import CRH


class TestPaperStoryline:
    """The full Algorithm 2 narrative, numerically."""

    def test_utility_with_theory_driven_lambda2(self):
        # 1. Characterise the data: lambda1 = 4 (mean error var 0.25).
        lambda1 = 4.0
        dataset = generate_synthetic(
            num_users=150, num_objects=30, lambda1=lambda1, random_state=0
        )
        # 2. Pick noise level from the trade-off window.
        window = noise_level_window(
            lambda1=lambda1,
            alpha=1.0,
            beta=0.2,
            num_users=150,
            epsilon=1.0,
            delta=0.3,
        )
        assert window.feasible
        c = choose_noise_level(window)
        lambda2 = lambda2_for_noise_level(lambda1, c)
        # 3. Run Algorithm 2 and check the utility definition directly.
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=lambda2)
        maes = [
            pipeline.evaluate_utility(dataset.claims, random_state=s).mae
            for s in range(10)
        ]
        # (alpha, beta)-utility with alpha=1.0, beta=0.2: at most ~2/10
        # runs may exceed alpha; empirically all should be far below.
        assert np.mean([m >= 1.0 for m in maes]) <= 0.2
        assert np.mean(maes) < 0.5

    def test_privacy_accounting_through_pipeline(self):
        lambda1 = 4.0
        sensitivity = lemma47_bound(lambda1, b=2.0, eta=0.9).value
        pipeline = PrivateTruthDiscovery.for_privacy_target(
            epsilon=1.0, delta=0.3, sensitivity=sensitivity
        )
        dataset = generate_synthetic(
            num_users=60, num_objects=10, lambda1=lambda1, random_state=1
        )
        outcome = pipeline.run(dataset.claims, random_state=2)
        acct = PrivacyAccountant()
        acct.record_for_all(
            range(dataset.num_users), outcome.guarantee, mechanism="exp-gaussian"
        )
        worst = acct.worst_case()
        assert worst.epsilon == pytest.approx(1.0)
        assert worst.delta == pytest.approx(0.3)

    def test_noise_tolerance_headline(self):
        """Paper abstract: aggregated results do not deviate much 'even
        when large noise is added' — noise ~ claim scale, MAE << noise."""
        dataset = generate_synthetic(
            num_users=150, num_objects=30, lambda1=4.0, random_state=3
        )
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=0.5)  # E|noise| = 1
        ev = pipeline.evaluate_utility(dataset.claims, random_state=4)
        assert ev.average_absolute_noise > 0.8
        assert ev.mae < 0.25 * ev.average_absolute_noise


class TestFloorplanPipeline:
    def test_private_aggregation_still_recovers_lengths(self):
        dataset = generate_floorplan_dataset(
            num_users=100, num_segments=30, random_state=5
        )
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
        outcome = pipeline.run(dataset.claims, random_state=6)
        rel = np.abs(outcome.truths - dataset.segment_lengths) / dataset.segment_lengths
        assert np.median(rel) < 0.08

    def test_gtm_and_crh_agree_on_floorplan(self):
        dataset = generate_floorplan_dataset(
            num_users=60, num_segments=20, random_state=7
        )
        crh_truths = PrivateTruthDiscovery(method="crh", lambda2=2.0).run(
            dataset.claims, random_state=8
        ).truths
        gtm_truths = PrivateTruthDiscovery(method="gtm", lambda2=2.0).run(
            dataset.claims, random_state=8
        ).truths
        assert mae(crh_truths, gtm_truths) < 1.0


class TestSimulatedSystemMatchesDirectPipeline:
    def test_campaign_aggregate_close_to_direct_crh(self):
        """The message-passing system must compute the same kind of result
        as calling the library directly on the same observations."""
        rng = np.random.default_rng(10)
        num_users, num_objects = 30, 6
        truths = rng.uniform(2.0, 8.0, num_objects)
        observations = {
            f"u{i:02d}": {
                f"o{j}": float(truths[j] + rng.normal(0, 0.3))
                for j in range(num_objects)
            }
            for i in range(num_users)
        }
        object_ids = tuple(f"o{j}" for j in range(num_objects))
        spec = CampaignSpec(
            campaign_id="c",
            object_ids=object_ids,
            lambda2=20.0,  # light noise for a tight comparison
            min_contributors=10,
        )
        devices = build_devices(observations, random_state=11)
        report = run_campaign(spec, devices, random_state=12)
        assert report.succeeded

        # Direct computation on the *original* observations.
        from repro.truthdiscovery.claims import ClaimMatrix

        records = [
            (u, o, v) for u, objs in observations.items() for o, v in objs.items()
        ]
        claims = ClaimMatrix.from_records(
            records, user_ids=sorted(observations), object_ids=object_ids
        )
        direct = CRH().fit(claims)
        assert mae(report.truths, direct.truths) < 0.2

    def test_epsilon_sweep_through_campaigns(self):
        """Chained campaigns with decreasing epsilon: noisier submissions,
        still-reasonable aggregates, composed budget tracked."""
        rng = np.random.default_rng(13)
        truths = rng.uniform(2.0, 8.0, 4)
        observations = {
            f"u{i:02d}": {
                f"o{j}": float(truths[j] + rng.normal(0, 0.2)) for j in range(4)
            }
            for i in range(25)
        }
        acct = PrivacyAccountant()
        sensitivity, delta = 1.0, 0.3
        for round_idx, epsilon in enumerate((2.0, 1.0)):
            lambda2 = lambda2_for_epsilon(epsilon, sensitivity, delta)
            spec = CampaignSpec(
                campaign_id=f"round-{round_idx}",
                object_ids=tuple(f"o{j}" for j in range(4)),
                lambda2=lambda2,
                min_contributors=10,
            )
            devices = build_devices(observations, random_state=100 + round_idx)
            report = run_campaign(spec, devices, random_state=200 + round_idx)
            assert report.succeeded
            from repro.privacy.ldp import LDPGuarantee

            acct.record_for_all(
                report.contributors,
                LDPGuarantee(epsilon=epsilon, delta=delta),
                label=spec.campaign_id,
            )
        composed = acct.composed_guarantee("u00")
        assert composed.epsilon == pytest.approx(3.0)
        assert composed.delta == pytest.approx(0.6)
