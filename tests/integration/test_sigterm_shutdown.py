"""Graceful SIGTERM for the long-running CLI servers.

``repro standby`` and ``repro serve-shard`` are the two processes an
operator (or ``StandbyPool.close`` / a supervisor) stops with SIGTERM.
Both must treat it as a polite stop — wind down the serve loop, flush
and close their state (the standby fsyncs its replication-cursor WAL),
and exit 0 — rather than die on the interpreter default mid-frame.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.durable.wal import list_segments


def spawn(tmp_path, *args):
    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
        cwd=tmp_path,
    )


def read_port(process, *, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("PORT "):
            return int(line.split()[1])
        if not line and process.poll() is not None:
            break
    pytest.fail("server never announced its port")


def terminate_and_wait(process, *, timeout=20.0):
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=timeout)
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()


def test_standby_sigterm_exits_zero_and_keeps_wal(tmp_path):
    process = spawn(
        tmp_path, "standby", "--dir", str(tmp_path / "sb")
    )
    read_port(process)
    assert terminate_and_wait(process) == 0
    # The standby's WAL generation was closed cleanly: the directory
    # exists and holds a well-formed (possibly empty) segment set a
    # restart can resume the replication cursor from.
    assert (tmp_path / "sb").is_dir()
    list_segments(tmp_path / "sb")  # must not raise


def test_standby_sigterm_is_idempotent(tmp_path):
    process = spawn(
        tmp_path, "standby", "--dir", str(tmp_path / "sb")
    )
    read_port(process)
    process.send_signal(signal.SIGTERM)
    process.send_signal(signal.SIGTERM)  # second one must not crash it
    assert terminate_and_wait(process) == 0


def test_serve_shard_sigterm_exits_zero(tmp_path):
    process = spawn(
        tmp_path, "serve-shard", "--worker-id", "3"
    )
    read_port(process)
    assert terminate_and_wait(process) == 0
