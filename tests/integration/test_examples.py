"""Smoke tests: every example script must run end-to-end.

Examples are the first code users copy; a broken example is a broken
library.  Each script exposes ``main()``, which we import by path and
execute with stdout captured, asserting on its key output lines.
"""

import importlib.util
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_examples_directory_complete():
    scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == [
        "air_quality_monitoring",
        "compact_recover",
        "crowd_labeling",
        "crowdsensing_protocol",
        "distributed_service",
        "durable_service",
        "high_throughput_service",
        "indoor_floorplan",
        "multiprocess_workers",
        "privacy_budget_planner",
        "quickstart",
        "replicated_service",
        "streaming_monitoring",
    ]


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "average |added noise|" in out
    assert "utility loss is" in out


def test_indoor_floorplan(capsys):
    out = run_example("indoor_floorplan", capsys)
    assert "247 walkers, 129 segments" in out
    assert "median error" in out


def test_air_quality_monitoring(capsys):
    out = run_example("air_quality_monitoring", capsys)
    assert "ground-truth MAE by aggregator" in out
    assert "adversarial" in out


def test_high_throughput_service(capsys):
    out = run_example("high_throughput_service", capsys)
    assert "claims rejected over budget" in out
    assert "worst-case composed guarantee" in out
    assert "bulk path:" in out and "claims/s" in out
    assert "micro-batch latency" in out


def test_durable_service(capsys):
    out = run_example("durable_service", capsys)
    assert "crash: service process killed mid-stream" in out
    assert "truths bit-for-bit identical to the doomed service: True" in out
    assert "recovered privacy spend" in out
    assert "RMSE vs ground truth" in out


def test_compact_recover(capsys):
    out = run_example("compact_recover", capsys)
    assert "background group commits" in out
    assert "reclaimed" in out
    assert "truths bit-for-bit identical after compaction: True" in out
    assert (
        "truths bit-for-bit identical after torn compaction: True" in out
    )


def test_multiprocess_workers(capsys):
    out = run_example("multiprocess_workers", capsys)
    assert "truths identical across modes" in out
    assert "caught: WorkerHandle(" in out
    assert "bit-for-bit" in out


def test_replicated_service(capsys):
    out = run_example("replicated_service", capsys)
    assert "truths bitwise equal to primary" in out
    assert "truths bitwise equal to the crashed primary's recovered state" in out
    assert "spent budget preserved across the promotion" in out


def test_crowdsensing_protocol(capsys):
    out = run_example("crowdsensing_protocol", capsys)
    assert "0 user-to-user" in out
    assert "per-user guarantee" in out


def test_privacy_budget_planner(capsys):
    out = run_example("privacy_budget_planner", capsys)
    assert "noise-level window" in out
    assert "empirical check" in out


def test_crowd_labeling(capsys):
    out = run_example("crowd_labeling", capsys)
    assert "randomized response" in out
    assert "private-preference RR" in out


def test_streaming_monitoring(capsys):
    out = run_example("streaming_monitoring", capsys)
    assert "incident!" in out
    assert "final MAE" in out
