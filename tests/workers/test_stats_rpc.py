"""STATS RPC tests: worker registries crossing back to the parent."""

import numpy as np

from repro.service import (
    IngestService,
    LoadGenerator,
    ServiceConfig,
)


def make_service(workers, **overrides):
    defaults = dict(num_shards=4, max_batch=512)
    defaults.update(overrides)
    return IngestService(
        ServiceConfig(**defaults), workers=workers, start_method="fork"
    )


def stream(service, *, claims=4_000, seed=7):
    gen = LoadGenerator(
        "stats-c0", num_users=40, num_objects=24, random_state=seed
    )
    service.register_campaign(
        gen.campaign_id, gen.object_ids, max_users=40,
        user_ids=gen.user_ids,
    )
    for chunk in gen.column_chunks(claims, chunk_size=512):
        service.submit_columns(
            chunk.campaign_id, chunk.user_slots, chunk.object_slots,
            chunk.values,
        )
    service.flush()
    service.sync_workers()
    return gen


class TestStatsRpc:
    def test_handle_metrics_returns_worker_snapshot(self):
        service = make_service(workers=2)
        try:
            stream(service)
            snapshots = [
                handle.metrics()
                for handle in service.worker_pool.handles
            ]
            total = sum(
                snap.value("repro_worker_claims_total") or 0
                for snap in snapshots
            )
            assert total == service.stats.claims_accepted
            batch_total = sum(
                snap.value("repro_worker_batches_total") or 0
                for snap in snapshots
            )
            assert batch_total >= 1
        finally:
            service.close()

    def test_merged_snapshot_carries_proc_labelled_series(self):
        service = make_service(workers=2)
        try:
            gen = stream(service)
            service.snapshot(gen.campaign_id)
            service.sync_workers()  # refreshes cached remote snapshots
            snap = service.metrics_snapshot()
            per_proc = {
                labels_dict.get("proc"): value
                for (name, labels), value in snap.counters.items()
                if name == "repro_worker_claims_total"
                for labels_dict in [dict(labels)]
            }
            assert set(per_proc) <= {"worker0", "worker1"}
            assert sum(per_proc.values()) == service.stats.claims_accepted
            # RPC latency histograms per handle proc label.
            rpc_procs = {
                dict(labels).get("proc")
                for (name, labels) in snap.histograms
                if name == "repro_fabric_rpc_seconds"
            }
            assert rpc_procs
        finally:
            service.close()

    def test_stats_rpc_does_not_perturb_aggregation(self):
        solo = make_service(workers=0)
        pooled = make_service(workers=2)
        try:
            gen_a = stream(solo)
            gen_b = stream(pooled)
            for handle in pooled.worker_pool.handles:
                handle.metrics()
            pooled.sync_workers()
            truths_solo = solo.snapshot(gen_a.campaign_id).truths
            truths_pool = pooled.snapshot(gen_b.campaign_id).truths
            assert np.array_equal(truths_solo, truths_pool)
        finally:
            solo.close()
            pooled.close()

    def test_obs_disabled_worker_answers_empty_snapshot(self):
        service = make_service(workers=1, obs=False)
        try:
            stream(service)
            (handle,) = service.worker_pool.handles
            snap = handle.metrics()
            assert snap.counters == {} and snap.histograms == {}
        finally:
            service.close()
