"""WorkItem wire-format coverage: the bytes the worker pipe relies on.

The multi-process tentpole ships every micro-batch as
``WorkItem.to_bytes`` and the worker rebuilds it with ``from_bytes``;
these tests pin the round trip down over dtypes, shapes, NaN/inf
payloads, and an actual spawn-context pipe crossing.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.durable.records import RecordError, WorkItem
from repro.workers import protocol as proto

_SLOT_DTYPES = (np.int8, np.int16, np.int32, np.int64,
                np.uint8, np.uint16, np.uint32)
_VALUE_DTYPES = (np.float16, np.float32, np.float64)


@st.composite
def work_items(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    # Mix small slots with values past the i32 narrowing threshold so
    # both the narrow and wide encodings are exercised.
    if draw(st.booleans()):
        slot_dtype = np.dtype(np.int64)
        elements = st.integers(min_value=0, max_value=2**40)
    else:
        slot_dtype = np.dtype(draw(st.sampled_from(_SLOT_DTYPES)))
        elements = st.integers(
            min_value=0,
            max_value=min(int(np.iinfo(slot_dtype).max), 2**31 - 1),
        )
    user_slots = draw(npst.arrays(slot_dtype, n, elements=elements))
    object_slots = draw(npst.arrays(slot_dtype, n, elements=elements))
    values = draw(
        npst.arrays(
            np.dtype(draw(st.sampled_from(_VALUE_DTYPES))),
            n,
            elements=st.floats(
                width=16, allow_nan=True, allow_infinity=True
            ),
        )
    )
    campaign_id = draw(st.text(max_size=40))
    return WorkItem(
        campaign_id=campaign_id,
        user_slots=user_slots,
        object_slots=object_slots,
        values=values,
    )


class TestRoundtripProperty:
    @settings(max_examples=200, deadline=None)
    @given(work_items())
    def test_roundtrip(self, item):
        out = WorkItem.from_bytes(item.to_bytes())
        assert out.campaign_id == item.campaign_id
        # The constructor already canonicalised to i64/f64; the wire
        # must preserve those bit patterns exactly (NaNs included).
        assert out.user_slots.dtype == np.int64
        assert out.values.dtype == np.float64
        np.testing.assert_array_equal(out.user_slots, item.user_slots)
        np.testing.assert_array_equal(out.object_slots, item.object_slots)
        assert out.values.tobytes() == item.values.tobytes()

    @settings(max_examples=50, deadline=None)
    @given(work_items())
    def test_roundtrip_through_frame(self, item):
        rtype, payload = proto.decode_frame(
            proto.encode_frame(5, item.to_bytes())
        )
        out = WorkItem.from_bytes(payload)
        assert out.campaign_id == item.campaign_id
        assert out.values.tobytes() == item.values.tobytes()


class TestEdgeCases:
    def test_nan_and_inf_survive(self):
        values = np.array([np.nan, np.inf, -np.inf, -0.0])
        item = WorkItem("c", np.arange(4), np.arange(4), values)
        out = WorkItem.from_bytes(item.to_bytes())
        assert out.values.tobytes() == values.tobytes()

    def test_wide_slots_roundtrip(self):
        slots = np.array([0, 2**31, 2**40], dtype=np.int64)
        item = WorkItem("c", slots, slots[::-1].copy(), np.zeros(3))
        out = WorkItem.from_bytes(item.to_bytes())
        np.testing.assert_array_equal(out.user_slots, slots)

    def test_truncated_payload_rejected(self):
        item = WorkItem("c", np.arange(8), np.arange(8), np.zeros(8))
        with pytest.raises(RecordError):
            WorkItem.from_bytes(item.to_bytes()[:-3])

    def test_empty_item_rejected(self):
        with pytest.raises(ValueError):
            WorkItem("c", np.empty(0, int), np.empty(0, int), np.empty(0))


def _echo_work_items(conn):  # pragma: no cover - runs in the child
    """Child side of the spawn round-trip: decode, re-encode, send back."""
    while True:
        rtype, payload = proto.recv_frame(conn)
        if rtype == proto.SHUTDOWN:
            conn.close()
            return
        item = WorkItem.from_bytes(payload)
        proto.send_frame(conn, rtype, item.to_bytes())


class TestCrossProcess:
    def test_spawn_pipe_roundtrip(self):
        """The wire format survives a real spawn-context process hop."""
        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_echo_work_items, args=(child,), daemon=True
        )
        process.start()
        child.close()
        try:
            rng = np.random.default_rng(7)
            for n in (1, 5, 2048):
                item = WorkItem(
                    campaign_id=f"spawn-{n}",
                    user_slots=rng.integers(0, 2**33, size=n),
                    object_slots=rng.integers(0, 50, size=n),
                    values=rng.normal(size=n),
                )
                proto.send_frame(parent, 5, item.to_bytes())
                rtype, payload = proto.recv_frame(parent)
                out = WorkItem.from_bytes(payload)
                assert out.campaign_id == item.campaign_id
                np.testing.assert_array_equal(
                    out.user_slots, item.user_slots
                )
                np.testing.assert_array_equal(
                    out.object_slots, item.object_slots
                )
                assert out.values.tobytes() == item.values.tobytes()
        finally:
            proto.send_frame(parent, proto.SHUTDOWN, b"")
            process.join(timeout=30)
            parent.close()
        assert process.exitcode == 0
