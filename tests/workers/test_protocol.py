"""Frame and state-payload encoding tests for the worker protocol."""

import multiprocessing

import numpy as np
import pytest

from repro.durable import records as rec
from repro.workers import protocol as proto
from repro.workers.pool import shard_ranges


class TestFrames:
    @pytest.mark.parametrize(
        "rtype",
        [rec.CONFIG, rec.BATCH, proto.SNAPSHOT_REQ, proto.ERROR,
         proto.SHUTDOWN],
    )
    def test_roundtrip(self, rtype):
        payload = b"\x00\x01payload\xff" * 3
        got_type, got_payload = proto.decode_frame(
            proto.encode_frame(rtype, payload)
        )
        assert got_type == rtype
        assert got_payload == payload

    def test_empty_payload(self):
        assert proto.decode_frame(proto.encode_frame(proto.READY, b"")) == (
            proto.READY,
            b"",
        )

    def test_length_prefix_matches_payload(self):
        frame = proto.encode_frame(rec.BATCH, b"abc")
        # u32 length counts the type byte plus the payload.
        assert int.from_bytes(frame[:4], "little") == 4

    def test_truncated_frame_rejected(self):
        frame = proto.encode_frame(rec.BATCH, b"abcdef")
        with pytest.raises(proto.ProtocolError):
            proto.decode_frame(frame[:-2])

    def test_oversized_frame_rejected(self):
        frame = proto.encode_frame(rec.BATCH, b"abc") + b"xx"
        with pytest.raises(proto.ProtocolError):
            proto.decode_frame(frame)

    def test_bad_rtype_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_frame(300, b"")

    def test_worker_types_disjoint_from_record_types(self):
        worker_types = {
            proto.SNAPSHOT_REQ, proto.SNAPSHOT_RESP, proto.STATE_REQ,
            proto.STATE_RESP, proto.LOAD_STATE, proto.SYNC_REQ,
            proto.SYNC_RESP, proto.READY, proto.ERROR, proto.SHUTDOWN,
        }
        assert not worker_types & set(rec.RECORD_TYPES)

    def test_over_pipe(self):
        parent, child = multiprocessing.get_context("fork").Pipe()
        proto.send_frame(parent, rec.REFRESH, b"{}")
        assert proto.recv_frame(child) == (rec.REFRESH, b"{}")
        parent.close()
        child.close()


class TestStatePayloads:
    def test_roundtrip_nested_arrays(self):
        payload = {
            "campaign_id": "c/one",
            "counts": {"claims": 12, "batches": 3},
            "truths": np.linspace(0.0, 1.0, 7),
            "nested": [
                {"a": np.arange(5, dtype=np.int64)},
                {"b": np.array([True, False])},
            ],
            "nothing": None,
        }
        out = proto.unpack_state(proto.pack_state(payload))
        assert out["campaign_id"] == "c/one"
        assert out["counts"] == {"claims": 12, "batches": 3}
        np.testing.assert_array_equal(out["truths"], payload["truths"])
        np.testing.assert_array_equal(
            out["nested"][0]["a"], payload["nested"][0]["a"]
        )
        assert out["nested"][1]["b"].dtype == bool
        assert out["nothing"] is None

    def test_bitwise_float_fidelity(self):
        values = np.array([0.1 + 0.2, 1e-300, np.nextafter(1.0, 2.0)])
        out = proto.unpack_state(proto.pack_state({"v": values}))
        assert out["v"].tobytes() == values.tobytes()

    def test_unserialisable_payload_raises(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_state({"bad": object()})

    def test_malformed_blob_raises(self):
        with pytest.raises(proto.ProtocolError):
            proto.unpack_state(b"not an npz")


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(4, 2) == [(0, 2), (2, 4)]

    def test_uneven_split_is_contiguous_and_complete(self):
        ranges = shard_ranges(7, 3)
        assert ranges == [(0, 3), (3, 5), (5, 7)]
        covered = [s for lo, hi in ranges for s in range(lo, hi)]
        assert covered == list(range(7))

    def test_one_worker_takes_all(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_more_workers_than_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(2, 3)
