"""End-to-end tests for the multi-process shard-worker pool.

``fork`` keeps most of these fast on POSIX; the dedicated spawn test
plus the CI smoke job cover the portable startup path.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.durable import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryManager,
)
from repro.durable import records as rec
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.service import (
    BudgetLedger,
    IngestService,
    LoadGenerator,
    ServiceConfig,
)
from repro.workers import WorkerCrashedError, WorkerError
from repro.workers.handles import RemoteAggregator


def make_service(workers, *, start_method="fork", num_shards=4, **overrides):
    defaults = dict(num_shards=num_shards, max_batch=512)
    defaults.update(overrides)
    ledger = defaults.pop("ledger", None)
    durability = defaults.pop("durability", None)
    return IngestService(
        ServiceConfig(**defaults),
        ledger=ledger,
        durability=durability,
        workers=workers,
        start_method=start_method,
    )


def stream_campaigns(
    service, *, num_campaigns=4, claims=12_000, seed=11, **register_kwargs
):
    """Register campaigns, stream identical bulk traffic, return snapshots."""
    generators = []
    per_campaign = []
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"wp-c{c}", num_users=40, num_objects=24, random_state=seed + c
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=40,
            user_ids=gen.user_ids,
            **register_kwargs,
        )
        generators.append(gen)
        per_campaign.append(
            list(
                gen.column_chunks(
                    max(claims // num_campaigns, 1), chunk_size=768
                )
            )
        )
    chunks = [c for group in zip(*per_campaign) for c in group]
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        if i % 4 == 3:
            service.pump()
    service.flush()
    return {
        gen.campaign_id: service.snapshot(gen.campaign_id)
        for gen in generators
    }


class TestBitwiseAgreement:
    def test_bulk_truths_match_single_process_bitwise(self):
        with make_service(0) as single:
            expected = stream_campaigns(single)
        with make_service(2) as multi:
            got = stream_campaigns(multi)
        for cid, snap in expected.items():
            other = got[cid]
            assert np.array_equal(snap.truths, other.truths)
            assert np.array_equal(snap.seen_objects, other.seen_objects)
            assert snap.weights_by_user == other.weights_by_user
            assert snap.claims_ingested == other.claims_ingested
            assert snap.batches_ingested == other.batches_ingested

    def test_one_worker_per_shard(self):
        with make_service(0, num_shards=2) as single:
            expected = stream_campaigns(single, num_campaigns=3)
        with make_service(2, num_shards=2) as multi:
            got = stream_campaigns(multi, num_campaigns=3)
        for cid, snap in expected.items():
            assert np.array_equal(snap.truths, got[cid].truths)

    def test_submission_path_matches(self):
        def run(workers):
            service = make_service(workers, max_batch=64)
            gen = LoadGenerator(
                "wp-subs", num_users=30, num_objects=12,
                claims_per_submission=4, random_state=5,
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=30,
                user_ids=gen.user_ids,
            )
            for i, sub in enumerate(gen.submissions(600)):
                service.submit(sub)
                if i % 50 == 49:
                    service.pump()
            snap = service.snapshot(gen.campaign_id)
            service.close()
            return snap

        a, b = run(0), run(2)
        assert np.array_equal(a.truths, b.truths)
        assert a.weights_by_user == b.weights_by_user

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_streaming_method_campaigns_match_bitwise(self, method):
        """ISSUE-4: the non-CRH streaming backends must stay bitwise
        identical across the process boundary (aggregator="streaming"
        forces streaming — these campaigns are below the auto
        threshold)."""
        kwargs = dict(method=method, aggregator="streaming")
        with make_service(0) as single:
            expected = stream_campaigns(
                single, num_campaigns=3, claims=6_000, **kwargs
            )
        with make_service(2) as multi:
            got = stream_campaigns(
                multi, num_campaigns=3, claims=6_000, **kwargs
            )
        for cid, snap in expected.items():
            other = got[cid]
            assert np.array_equal(snap.truths, other.truths)
            assert snap.weights_by_user == other.weights_by_user
            assert snap.claims_ingested == other.claims_ingested

    def test_spawn_start_method_end_to_end(self):
        with make_service(0, num_shards=2) as single:
            expected = stream_campaigns(single, num_campaigns=2,
                                        claims=4_000)
        with make_service(2, num_shards=2, start_method="spawn") as multi:
            got = stream_campaigns(multi, num_campaigns=2, claims=4_000)
        for cid, snap in expected.items():
            assert np.array_equal(snap.truths, got[cid].truths)


class TestServiceSurface:
    def test_remote_campaigns_use_proxy_aggregators(self):
        with make_service(2) as service:
            gen = LoadGenerator(
                "wp-proxy", num_users=30, num_objects=20, random_state=1
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=30
            )
            state = service.campaign_state(gen.campaign_id)
            assert isinstance(state.aggregator, RemoteAggregator)
            assert service.num_workers == 2

    def test_mid_stream_snapshot_counts_pending(self):
        with make_service(1, max_batch=512) as service:
            gen = LoadGenerator(
                "wp-pending", num_users=20, num_objects=10, random_state=2
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=20,
                user_ids=gen.user_ids,
            )
            chunk = next(gen.column_chunks(100, chunk_size=100))
            service.submit_columns(
                chunk.campaign_id, chunk.user_slots, chunk.object_slots,
                chunk.values,
            )
            snap = service.snapshot(gen.campaign_id)
            # snapshot() flushes the campaign: everything is aggregated.
            assert snap.claims_ingested == 100
            assert snap.pending_claims == 0

    def test_budget_ledger_admission_stays_parent_side(self):
        ledger = BudgetLedger(
            epsilon_cap=1.0, accountant=PrivacyAccountant()
        )
        with make_service(2, ledger=ledger) as service:
            gen = LoadGenerator(
                "wp-budget", num_users=10, num_objects=6,
                claims_per_submission=2, random_state=3,
            )
            service.register_campaign(
                gen.campaign_id,
                gen.object_ids,
                max_users=10,
                user_ids=gen.user_ids,
                cost=LDPGuarantee(epsilon=0.6, delta=0.0),
            )
            subs = gen.submissions(40)
            results = [service.submit(s) for s in subs]
            assert any(r.reason == "budget" for r in results)
            service.flush()
            snap = service.snapshot(gen.campaign_id)
            assert snap.claims_ingested == sum(
                r.accepted for r in results
            )

    def test_unregister_drops_remote_campaign(self):
        with make_service(1) as service:
            gen = LoadGenerator(
                "wp-unreg", num_users=10, num_objects=6,
                claims_per_submission=2, random_state=4,
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=10
            )
            service.unregister_campaign(gen.campaign_id)
            service.worker_pool.sync()
            # Re-registering must work (worker state dropped too).
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=10
            )
            service.worker_pool.sync()

    def test_workers_capped_by_shards(self):
        with pytest.raises(ValueError):
            make_service(5, num_shards=4)


class TestLifecycle:
    def test_clean_shutdown_exits_zero(self):
        service = make_service(2)
        processes = [
            h.process for h in service.worker_pool.handles
        ]
        service.close()
        for process in processes:
            assert process.exitcode == 0
        # close() is idempotent.
        service.close()

    def test_killed_worker_raises_clear_error(self):
        service = make_service(2)
        try:
            gen = LoadGenerator(
                "wp-crash", num_users=10, num_objects=6,
                claims_per_submission=2, random_state=6,
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=10
            )
            victim = service.worker_pool.handle_for(
                service.shard_of(gen.campaign_id)
            )
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=10)
            deadline = time.monotonic() + 10
            with pytest.raises(WorkerCrashedError) as excinfo:
                while time.monotonic() < deadline:
                    for chunk in gen.column_chunks(512, chunk_size=256):
                        service.submit_columns(
                            chunk.campaign_id,
                            chunk.user_slots,
                            chunk.object_slots,
                            chunk.values,
                        )
                    service.pump()
            assert "worker" in str(excinfo.value)
        finally:
            service.close()

    def test_close_after_worker_crash_does_not_raise(self):
        """close() must stay safe after a crash: no exception, no hang
        on the dead worker, and a second close is still a no-op."""
        service = make_service(2)
        victim = service.worker_pool.handles[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        service.close()
        service.close()

    def test_remote_failure_surfaces_traceback(self):
        service = make_service(1)
        try:
            handle = service.worker_pool.handles[0]
            handle.send(rec.BATCH, b"garbage bytes")
            with pytest.raises(WorkerError) as excinfo:
                handle.sync()
            assert "Traceback" in str(excinfo.value)
        finally:
            service.close()


class TestDurabilityIntegration:
    def test_checkpoint_from_remote_state_and_recovery(self, tmp_path):
        durability = DurabilityManager(
            DurabilityConfig(directory=tmp_path, fsync="never")
        )
        service = make_service(2, durability=durability)
        try:
            gen = LoadGenerator(
                "wp-durable", num_users=40, num_objects=24, random_state=8
            )
            service.register_campaign(
                gen.campaign_id, gen.object_ids, max_users=40,
                user_ids=gen.user_ids,
            )
            chunks = list(gen.column_chunks(20_000, chunk_size=1024))
            for chunk in chunks[:10]:
                service.submit_columns(
                    chunk.campaign_id, chunk.user_slots,
                    chunk.object_slots, chunk.values,
                )
            service.pump()
            # state_dict crosses the process boundary here.
            durability.checkpoint()
            for chunk in chunks[10:]:
                service.submit_columns(
                    chunk.campaign_id, chunk.user_slots,
                    chunk.object_slots, chunk.values,
                )
            service.flush()
            live = service.snapshot(gen.campaign_id)
            durability.close()
        finally:
            service.close()

        recovered = RecoveryManager(tmp_path).recover()
        snap = recovered.service.snapshot(gen.campaign_id)
        assert recovered.report.checkpoint_lsn > 0
        assert np.array_equal(live.truths, snap.truths)
        assert live.weights_by_user == snap.weights_by_user

    def test_workers_match_durable_single_process_run(self, tmp_path):
        def run(workers, directory):
            durability = DurabilityManager(
                DurabilityConfig(directory=directory, fsync="never")
            )
            service = make_service(workers, durability=durability)
            try:
                snaps = stream_campaigns(
                    service, num_campaigns=2, claims=6_000
                )
            finally:
                durability.close()
                service.close()
            return snaps

        a = run(0, tmp_path / "single")
        b = run(2, tmp_path / "workers")
        for cid in a:
            assert np.array_equal(a[cid].truths, b[cid].truths)

    def test_async_commit_durability_stays_parent_side_and_bitwise(
        self, tmp_path
    ):
        """Async group commit changes no logged byte: a workers=2 run
        with the background WAL writer recovers to the same truths as
        an in-process synchronous-commit run on the same traffic."""

        def run(workers, directory, async_commit):
            durability = DurabilityManager(
                DurabilityConfig(
                    directory=directory,
                    fsync="batch",
                    async_commit=async_commit,
                )
            )
            service = make_service(workers, durability=durability)
            try:
                snaps = stream_campaigns(
                    service, num_campaigns=2, claims=6_000
                )
            finally:
                durability.close()
                service.close()
            return snaps

        a = run(0, tmp_path / "single", False)
        b = run(2, tmp_path / "workers", True)
        for cid in a:
            assert np.array_equal(a[cid].truths, b[cid].truths)
        # Both logs replay to the same truths: durability logging sits
        # parent-side, so neither workers nor async commit change it.
        for directory in (tmp_path / "single", tmp_path / "workers"):
            recovered = RecoveryManager(directory).recover()
            for cid in a:
                assert np.array_equal(
                    a[cid].truths,
                    recovered.service.snapshot(cid).truths,
                )
