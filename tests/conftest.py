"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import generate_synthetic, generate_with_variances
from repro.truthdiscovery.claims import ClaimMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_claims() -> ClaimMatrix:
    """5 users x 4 objects, fully observed, hand-checkable values."""
    values = np.array(
        [
            [1.0, 2.0, 3.0, 4.0],
            [1.1, 2.1, 2.9, 4.2],
            [0.9, 1.8, 3.1, 3.9],
            [1.0, 2.0, 3.0, 4.0],
            [5.0, 6.0, 7.0, 8.0],  # outlier user
        ]
    )
    return ClaimMatrix(values=values)


@pytest.fixture
def sparse_claims() -> ClaimMatrix:
    """4 users x 3 objects with missing observations."""
    values = np.array(
        [
            [1.0, 0.0, 3.0],
            [1.2, 2.0, 0.0],
            [0.0, 2.2, 3.1],
            [1.1, 2.1, 2.9],
        ]
    )
    mask = np.array(
        [
            [True, False, True],
            [True, True, False],
            [False, True, True],
            [True, True, True],
        ]
    )
    return ClaimMatrix(values=values, mask=mask)


@pytest.fixture
def synthetic_dataset():
    """Mid-size synthetic campaign with known ground truth."""
    return generate_synthetic(
        num_users=40, num_objects=12, lambda1=4.0, random_state=7
    )


@pytest.fixture
def graded_quality_dataset():
    """Users with strictly increasing error variances (quality ladder)."""
    variances = np.linspace(0.01, 2.0, 12)
    return generate_with_variances(variances, num_objects=25, random_state=11)
