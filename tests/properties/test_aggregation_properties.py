"""Property-based tests for aggregation invariants (all TD methods)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.truthdiscovery.base import weighted_aggregate
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import available_methods, create_method

claim_matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=8),
    ),
    elements=st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    ),
)


@given(claim_matrices)
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("method_name", sorted(available_methods()))
def test_truths_inside_claim_envelope(method_name, values):
    """Every method's truths lie within the per-object claim range."""
    claims = ClaimMatrix(values)
    result = create_method(method_name).fit(claims)
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = np.maximum(hi - lo, 1.0)
    # GTM shrinks toward the per-object mean which stays inside; allow a
    # tiny numerical margin proportional to the span.
    assert (result.truths >= lo - 1e-6 * span).all()
    assert (result.truths <= hi + 1e-6 * span).all()


@given(claim_matrices)
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("method_name", sorted(available_methods()))
def test_weights_finite_nonnegative_mean_one(method_name, values):
    claims = ClaimMatrix(values)
    result = create_method(method_name).fit(claims)
    assert np.isfinite(result.weights).all()
    assert (result.weights >= 0).all()
    assert result.weights.mean() == pytest.approx(1.0)


@given(
    claim_matrices,
    st.floats(min_value=-100.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_crh_translation_equivariance(values, shift):
    """Shifting every claim by a constant shifts CRH truths by it."""
    claims = ClaimMatrix(values)
    shifted = ClaimMatrix(values + shift)
    base = create_method("crh").fit(claims).truths
    moved = create_method("crh").fit(shifted).truths
    np.testing.assert_allclose(moved, base + shift, rtol=1e-6, atol=1e-6)


@given(claim_matrices, st.floats(min_value=0.01, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_weighted_aggregate_scale_equivariance(values, scale):
    """Scaling claims scales the Eq. 1 aggregate (weights fixed)."""
    claims = ClaimMatrix(values)
    weights = np.linspace(1.0, 2.0, claims.num_users)
    base = weighted_aggregate(claims, weights)
    scaled = weighted_aggregate(ClaimMatrix(values * scale), weights)
    np.testing.assert_allclose(scaled, base * scale, rtol=1e-9, atol=1e-9)


@given(claim_matrices)
@settings(max_examples=60, deadline=None)
def test_user_permutation_invariance(values):
    """Reordering users must not change CRH truths."""
    claims = ClaimMatrix(values)
    perm = np.random.default_rng(0).permutation(claims.num_users)
    permuted = ClaimMatrix(values[perm])
    a = create_method("crh").fit(claims).truths
    b = create_method("crh").fit(permuted).truths
    np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-8)
