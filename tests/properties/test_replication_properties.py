"""Property: replication resume reproduces a byte-identical WAL.

A standby's log is built by appending the shipped ``(rtype, payload)``
pairs in LSN order — frames are deterministic functions of
``(rtype, lsn, payload)``, so the standby's committed frame stream
must be byte-for-byte the primary's, *no matter where the stream was
cut and resumed*.
That is the invariant the replication cursor rests on: reconnecting at
an arbitrary durable watermark and replaying the suffix through
:class:`~repro.durable.stream.WalTailReader` may leave no seam.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.records import RECORD_TYPES
from repro.durable.stream import WalTailReader
from repro.durable.wal import SEGMENT_MAGIC, WriteAheadLog, list_segments

#: Small segments so multi-record runs exercise rotation too.
SEGMENT_BYTES = 2048

records_strategy = st.lists(
    st.tuples(
        st.sampled_from(RECORD_TYPES),
        st.binary(min_size=0, max_size=200),
    ),
    min_size=1,
    max_size=40,
)


def write_primary(directory: Path, records) -> None:
    with WriteAheadLog(
        directory, fsync="never", max_segment_bytes=SEGMENT_BYTES
    ) as wal:
        for rtype, payload in records:
            wal.append(rtype, payload)
        wal.sync()


def frame_stream(directory: Path) -> bytes:
    """Every committed frame in LSN order, segment headers stripped.

    Segment *boundaries* may legitimately differ after a resume (a
    fresh WAL handle seals the old segment and opens a new one), so
    the byte-identity invariant is over the concatenated frame stream
    — which is exactly what recovery and the tail reader consume.
    """
    return b"".join(
        seg.read_bytes()[len(SEGMENT_MAGIC):]
        for seg in list_segments(directory)
    )


@settings(max_examples=30, deadline=None)
@given(records=records_strategy, data=st.data())
def test_resume_from_any_split_is_byte_identical(records, data):
    split = data.draw(
        st.integers(min_value=0, max_value=len(records)),
        label="split",
    )
    with tempfile.TemporaryDirectory() as tmp:
        primary = Path(tmp) / "primary"
        standby = Path(tmp) / "standby"
        write_primary(primary, records)
        last = len(records)

        # Session one: ship the prefix up to the split, then "lose the
        # connection" (the standby's WAL handle closes mid-stream).
        wal = WriteAheadLog(
            standby, fsync="never", max_segment_bytes=SEGMENT_BYTES
        )
        reader = WalTailReader(primary, after_lsn=0)
        for record in reader.poll(split):
            assert wal.append(record.rtype, record.payload) == record.lsn
        wal.sync()
        wal.close()

        # Session two: a fresh handle resumes after what survived on
        # the standby's disk — exactly what StandbyServer._bootstrap
        # plus the CURSOR handshake reconstructs.
        wal = WriteAheadLog(
            standby,
            fsync="never",
            max_segment_bytes=SEGMENT_BYTES,
            start_lsn=split + 1,
        )
        reader = WalTailReader(primary, after_lsn=split)
        for record in reader.poll(last):
            assert wal.append(record.rtype, record.payload) == record.lsn
        wal.sync()
        wal.close()

        assert frame_stream(standby) == frame_stream(primary)


@settings(max_examples=30, deadline=None)
@given(records=records_strategy, data=st.data())
def test_tail_reader_suffix_matches_source(records, data):
    """The reader emits exactly the records above the cursor, with
    payloads intact, regardless of where the cursor sits."""
    cursor = data.draw(
        st.integers(min_value=0, max_value=len(records)),
        label="cursor",
    )
    with tempfile.TemporaryDirectory() as tmp:
        primary = Path(tmp) / "primary"
        write_primary(primary, records)
        out = WalTailReader(primary, after_lsn=cursor).poll(len(records))
        assert [(r.lsn, r.rtype, bytes(r.payload)) for r in out] == [
            (lsn, rtype, payload)
            for lsn, (rtype, payload) in enumerate(records, start=1)
            if lsn > cursor
        ]
