"""Property-based tests for snapshot merge algebra and serialisation.

Values are dyadic rationals (integers / 1024), so float addition is
exact and the associativity/commutativity assertions can demand
*bitwise* equality — the property the cross-process merge tree relies
on (worker snapshots merge in arbitrary arrival order).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import NUM_BUCKETS, RegistrySnapshot

dyadic = st.integers(min_value=-(2**30), max_value=2**30).map(
    lambda n: n / 1024
)
nonneg_dyadic = st.integers(min_value=0, max_value=2**30).map(
    lambda n: n / 1024
)

label_tuples = st.sampled_from(
    [
        (),
        (("shard", "0"),),
        (("shard", "1"),),
        (("proc", "worker0"), ("shard", "2")),
        (("fsync", "batch"),),
    ]
)
names = st.sampled_from(
    ["a_total", "b_total", "queue_depth", "lat_seconds"]
)


@st.composite
def snapshots(draw):
    snap = RegistrySnapshot()
    for _ in range(draw(st.integers(0, 4))):
        key = (draw(names), draw(label_tuples))
        snap.counters[key] = draw(nonneg_dyadic)
    for _ in range(draw(st.integers(0, 3))):
        key = ("g_" + draw(names), draw(label_tuples))
        snap.gauges[key] = draw(dyadic)
    for _ in range(draw(st.integers(0, 3))):
        key = ("h_" + draw(names), draw(label_tuples))
        counts = draw(
            st.lists(
                st.integers(0, 1000),
                min_size=NUM_BUCKETS,
                max_size=NUM_BUCKETS,
            )
        )
        snap.histograms[key] = {
            "count": sum(counts),
            "sum": draw(nonneg_dyadic),
            "counts": counts,
        }
    return snap


def clone(snap: RegistrySnapshot) -> RegistrySnapshot:
    return RegistrySnapshot.from_dict(snap.to_dict())


def as_tuple(snap: RegistrySnapshot) -> tuple:
    return (
        sorted(snap.counters.items()),
        sorted(snap.gauges.items()),
        sorted(
            (key, hist["count"], hist["sum"], tuple(hist["counts"]))
            for key, hist in snap.histograms.items()
        ),
    )


@given(snapshots(), snapshots())
@settings(max_examples=80, deadline=None)
def test_merge_is_commutative_bitwise(a, b):
    left = clone(a).merge(clone(b))
    right = clone(b).merge(clone(a))
    assert as_tuple(left) == as_tuple(right)


@given(snapshots(), snapshots(), snapshots())
@settings(max_examples=80, deadline=None)
def test_merge_is_associative_bitwise(a, b, c):
    left = clone(a).merge(clone(b)).merge(clone(c))
    right = clone(a).merge(clone(b).merge(clone(c)))
    assert as_tuple(left) == as_tuple(right)


@given(snapshots())
@settings(max_examples=80, deadline=None)
def test_empty_snapshot_is_merge_identity(a):
    merged = clone(a).merge(RegistrySnapshot())
    assert as_tuple(merged) == as_tuple(a)


@given(snapshots())
@settings(max_examples=80, deadline=None)
def test_dict_round_trip_is_bitwise(a):
    import json

    through_json = RegistrySnapshot.from_dict(
        json.loads(json.dumps(a.to_dict()))
    )
    assert as_tuple(through_json) == as_tuple(a)


@given(snapshots())
@settings(max_examples=80, deadline=None)
def test_relabel_preserves_values_and_counts(a):
    relabelled = clone(a).relabel(proc="worker9")
    assert len(relabelled.counters) == len(a.counters)
    assert sorted(relabelled.counters.values()) == sorted(
        a.counters.values()
    )
    for (_, labels) in relabelled.counters:
        assert ("proc", "worker9") in labels
