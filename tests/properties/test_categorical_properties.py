"""Property-based tests for the categorical extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy.randomized_response import (
    RandomizedResponseMechanism,
    debias_vote_counts,
    keep_probability,
)
from repro.truthdiscovery.categorical import (
    AccuracyEM,
    CategoricalClaimMatrix,
    MajorityVoting,
    WeightedVoting,
)


@st.composite
def categorical_claims(draw):
    num_users = draw(st.integers(min_value=2, max_value=15))
    num_objects = draw(st.integers(min_value=1, max_value=10))
    k = draw(st.integers(min_value=2, max_value=5))
    labels = draw(
        hnp.arrays(
            dtype=np.int64,
            shape=(num_users, num_objects),
            elements=st.integers(min_value=0, max_value=k - 1),
        )
    )
    return CategoricalClaimMatrix(labels=labels, num_categories=k)


@given(categorical_claims())
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("method_cls", [MajorityVoting, WeightedVoting, AccuracyEM])
def test_truths_are_valid_labels(method_cls, claims):
    result = method_cls().fit(claims)
    assert result.truths.shape == (claims.num_objects,)
    assert (result.truths >= 0).all()
    assert (result.truths < claims.num_categories).all()


@given(categorical_claims())
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("method_cls", [MajorityVoting, WeightedVoting, AccuracyEM])
def test_weights_finite_nonnegative(method_cls, claims):
    result = method_cls().fit(claims)
    assert np.isfinite(result.weights).all()
    assert (result.weights >= 0).all()


@given(categorical_claims())
@settings(max_examples=60, deadline=None)
def test_unanimous_labels_recovered(claims):
    """If every user agrees everywhere, every method returns that labelling."""
    unanimous = claims.with_labels(
        np.tile(claims.labels[:1], (claims.num_users, 1))
    )
    for method_cls in (MajorityVoting, WeightedVoting, AccuracyEM):
        result = method_cls().fit(unanimous)
        np.testing.assert_array_equal(result.truths, unanimous.labels[0])


@given(
    categorical_claims(),
    st.floats(min_value=0.05, max_value=5.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_rr_preserves_shape_and_range(claims, epsilon, seed):
    result = RandomizedResponseMechanism(epsilon).perturb(
        claims, random_state=seed
    )
    assert result.perturbed.labels.shape == claims.labels.shape
    assert (result.perturbed.labels >= 0).all()
    assert (result.perturbed.labels < claims.num_categories).all()
    # flips recorded iff the label changed (on observed entries)
    changed = result.perturbed.labels != claims.labels
    np.testing.assert_array_equal(
        changed[claims.mask], result.flipped[claims.mask]
    )


@given(
    st.floats(min_value=0.05, max_value=5.0),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=100)
def test_keep_probability_above_chance(epsilon, k):
    p = keep_probability(epsilon, k)
    assert 1.0 / k < p < 1.0


@given(
    st.integers(min_value=2, max_value=6),
    st.floats(min_value=0.1, max_value=4.0),
)
@settings(max_examples=60)
def test_debias_is_exact_inverse_in_expectation(k, epsilon):
    """debias(E[observed counts]) == true counts, exactly."""
    rng = np.random.default_rng(0)
    true_counts = rng.integers(0, 50, size=(3, k)).astype(float)
    p = keep_probability(epsilon, k)
    q = (1.0 - p) / (k - 1)
    totals = true_counts.sum(axis=1, keepdims=True)
    expected_observed = true_counts * p + (totals - true_counts) * q
    recovered = debias_vote_counts(expected_observed, epsilon, k)
    np.testing.assert_allclose(recovered, true_counts, atol=1e-9)
