"""Property: a :class:`FaultPlan` schedule is a pure function of the seed.

The chaos layer's replayability contract has two halves:

* **determinism** — two plans built from the same seed and fed the
  same fault-point trace produce byte-identical schedules (every
  query answers the same, every fired fault carries the same index,
  action, and delay);
* **per-point independence** — the schedule *at one point* depends
  only on how many times that point has been queried, never on how
  the queries interleave with other points.  Adding a WAL fault hook
  cannot shift a network fault's schedule, and a multi-threaded drill
  replays identically however the threads raced.

``repro chaos-drill`` records only the seed; these properties are what
make that a complete description of the run's injected faults.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import FAULT_POINTS, FaultPlan

POINTS = sorted(FAULT_POINTS)

#: Aggressive rates so schedules actually contain fires (the default
#: rates keep wal.* silent, which would vacuously pass everything).
RATES = {point: 0.5 for point in POINTS}

trace_strategy = st.lists(
    st.sampled_from(POINTS), min_size=1, max_size=200
)


def run_trace(seed, trace, **kwargs):
    """Feed a trace to a fresh plan; the full list of answers."""
    plan = FaultPlan(seed, rates=RATES, **kwargs)
    return [plan.fire(point) for point in trace]


def per_point_schedule(trace, answers):
    """Group (query-ordinal, answer) pairs by fault point."""
    schedule = {point: [] for point in POINTS}
    for point, answer in zip(trace, answers):
        schedule[point].append(answer)
    return schedule


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), data=st.data())
def test_same_seed_same_trace_identical_schedule(seed, data):
    trace = data.draw(trace_strategy)
    assert run_trace(seed, trace) == run_trace(seed, trace)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), data=st.data())
def test_interleaving_cannot_shift_a_points_schedule(seed, data):
    """Any permutation of the trace gives every point the same answers.

    This is the stronger contract: the nth query at a point is the
    same fault (or the same "no") no matter what happened at *other*
    points in between — the exact situation of racing WAL, link, and
    pump threads in a live drill.
    """
    trace = data.draw(trace_strategy)
    shuffled = data.draw(st.permutations(trace))
    original = per_point_schedule(trace, run_trace(seed, trace))
    reordered = per_point_schedule(
        shuffled, run_trace(seed, shuffled)
    )
    assert original == reordered


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), data=st.data())
def test_unqueried_points_are_invisible(seed, data):
    """Dropping every query at some points leaves the rest untouched.

    Equivalent to removing a hook site from the stack entirely — the
    surviving points must replay the exact same schedule.
    """
    trace = data.draw(trace_strategy)
    dropped = data.draw(
        st.sets(st.sampled_from(POINTS), max_size=len(POINTS) - 1)
    )
    filtered = [point for point in trace if point not in dropped]
    full = per_point_schedule(trace, run_trace(seed, trace))
    partial = per_point_schedule(
        filtered, run_trace(seed, filtered)
    )
    for point in POINTS:
        if point not in dropped:
            assert full[point] == partial[point]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    other=st.integers(min_value=0, max_value=2**31),
)
def test_distinct_seeds_usually_disagree(seed, other):
    """Different seeds are allowed to collide per-query but the plan
    must not ignore the seed wholesale: the RNG streams themselves
    must differ (sanity check that derive_seed sees the seed)."""
    if seed == other:
        return
    trace = POINTS * 40
    answers_a = run_trace(seed, trace, max_per_point=None)
    answers_b = run_trace(other, trace, max_per_point=None)
    # 320 Bernoulli(0.5) draws agreeing entirely means the streams
    # are identical — astronomically unlikely for honest seeding.
    assert answers_a != answers_b
