"""Property-based tests for the GTM/CATD streaming estimators.

Mirrors ``test_streaming_properties.py`` (the StreamingCRH suite) for
the two ISSUE-4 backends: range/finiteness/determinism invariants plus
the checkpoint contract — ``snapshot()``/``restore()`` carry the full
sufficient statistics bit-for-bit through a JSON round-trip, including
degenerate narrow universes and statistics that have overflowed to
inf.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truthdiscovery.streaming import (
    ClaimBatch,
    StreamingCATD,
    StreamingGTM,
)

BACKENDS = [StreamingGTM, StreamingCATD]


@st.composite
def batch_sequences(draw):
    # min 1 user/object: the narrow-slot degenerate universes must keep
    # round-tripping (single-user CATD, single-object GTM standardisation).
    num_users = draw(st.integers(min_value=1, max_value=8))
    num_objects = draw(st.integers(min_value=1, max_value=5))
    num_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    for _ in range(num_batches):
        size = draw(st.integers(min_value=1, max_value=12))
        users = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_users - 1),
                min_size=size, max_size=size,
            )
        )
        objects = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_objects - 1),
                min_size=size, max_size=size,
            )
        )
        values = draw(
            st.lists(
                st.floats(
                    min_value=-1e3, max_value=1e3,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=size, max_size=size,
            )
        )
        batches.append(
            ClaimBatch(
                users=np.array(users),
                objects=np.array(objects),
                values=np.array(values),
            )
        )
    return num_users, num_objects, batches


@pytest.mark.parametrize("backend", BACKENDS)
@given(params=batch_sequences())
@settings(max_examples=40, deadline=None)
def test_truths_within_observed_range(backend, params):
    """Seen objects' truths stay inside the global observed value range
    (GTM shrinks toward the per-object mean, CATD averages claims; both
    are convex in the observed values)."""
    num_users, num_objects, batches = params
    stream = backend(num_users=num_users, num_objects=num_objects)
    all_values = np.concatenate([b.values for b in batches])
    for batch in batches:
        stream.ingest(batch)
    seen = stream.seen_objects
    truths = stream.truths[seen]
    span = max(float(all_values.max() - all_values.min()), 1.0)
    assert (truths >= all_values.min() - 1e-6 * span).all()
    assert (truths <= all_values.max() + 1e-6 * span).all()


@pytest.mark.parametrize("backend", BACKENDS)
@given(params=batch_sequences())
@settings(max_examples=40, deadline=None)
def test_weights_finite_nonnegative(backend, params):
    num_users, num_objects, batches = params
    stream = backend(num_users=num_users, num_objects=num_objects)
    for batch in batches:
        stream.ingest(batch)
    assert np.isfinite(stream.weights).all()
    assert (stream.weights >= 0).all()


@pytest.mark.parametrize("backend", BACKENDS)
@given(params=batch_sequences())
@settings(max_examples=30, deadline=None)
def test_unseen_objects_never_move(backend, params):
    num_users, num_objects, batches = params
    stream = backend(num_users=num_users, num_objects=num_objects)
    for batch in batches:
        stream.ingest(batch)
    unseen = ~stream.seen_objects
    assert (stream.truths[unseen] == 0.0).all()


@pytest.mark.parametrize("backend", BACKENDS)
@given(params=batch_sequences())
@settings(max_examples=30, deadline=None)
def test_ingest_is_deterministic(backend, params):
    num_users, num_objects, batches = params
    streams = []
    for _ in range(2):
        s = backend(num_users=num_users, num_objects=num_objects)
        for batch in batches:
            s.ingest(batch)
        streams.append(s)
    np.testing.assert_array_equal(streams[0].truths, streams[1].truths)
    np.testing.assert_array_equal(streams[0].weights, streams[1].weights)


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    value=st.floats(min_value=-100, max_value=100),
    num_users=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_constant_stream_returns_constant(backend, value, num_users):
    stream = backend(num_users=num_users, num_objects=1)
    batch = ClaimBatch(
        users=np.arange(num_users),
        objects=np.zeros(num_users, dtype=int),
        values=np.full(num_users, value),
    )
    stream.ingest(batch)
    assert stream.truths[0] == pytest.approx(value, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
@given(params=batch_sequences(), split_at=st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_round_trip_is_exact(backend, params, split_at):
    """The checkpoint property, extended to GTM/CATD: snapshot
    mid-stream, rebuild a stream from it, continue both with the same
    batches — every retained statistic and derived value stays
    bit-for-bit equal."""
    num_users, num_objects, batches = params
    split_at = min(split_at, len(batches))
    original = backend(num_users=num_users, num_objects=num_objects)
    for batch in batches[:split_at]:
        original.ingest(batch)

    snapshot = original.snapshot()
    # Checkpoints pass through JSON; the round-trip must stay exact.
    restored = backend.from_snapshot(json.loads(json.dumps(snapshot)))

    for batch in batches[split_at:]:
        original.ingest(batch)
        restored.ingest(batch)
    assert restored.truths.tobytes() == original.truths.tobytes()
    assert restored.weights.tobytes() == original.weights.tobytes()
    np.testing.assert_array_equal(
        restored.seen_objects, original.seen_objects
    )
    assert restored.batches_ingested == original.batches_ingested
    assert restored.snapshot() == original.snapshot()


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_restore_preserves_inf_statistics(backend):
    """Finite-but-huge claims overflow the squared-sum statistics to
    inf (and derived values to nan); the checkpoint round-trip must
    carry such degenerate statistics rather than reject or launder
    them.  The binary ``arrays=True`` form (what npz checkpoints
    store) is bit-for-bit; the JSON form is exact up to NaN identity
    (JSON canonicalises NaN's sign bit)."""
    stream = backend(num_users=3, num_objects=2)
    with np.errstate(over="ignore", invalid="ignore"):
        stream.ingest(ClaimBatch(
            users=np.array([0, 1, 2]),
            objects=np.array([0, 1, 0]),
            values=np.array([1e200, -1e200, 2.0]),
        ))
    assert np.isinf(stream.snapshot(arrays=True)["sumsq"]).any()

    binary = backend.from_snapshot(stream.snapshot(arrays=True))
    for name, array in binary.snapshot(arrays=True).items():
        reference = stream.snapshot(arrays=True)[name]
        if isinstance(array, np.ndarray):
            assert array.tobytes() == reference.tobytes(), name
        else:
            assert array == reference, name

    via_json = backend.from_snapshot(
        json.loads(json.dumps(stream.snapshot()))
    )
    for name, array in via_json.snapshot(arrays=True).items():
        reference = stream.snapshot(arrays=True)[name]
        if isinstance(array, np.ndarray) and array.dtype.kind == "f":
            np.testing.assert_array_equal(array, reference, err_msg=name)
        elif isinstance(array, np.ndarray):
            assert array.tobytes() == reference.tobytes(), name
        else:
            assert array == reference, name


@pytest.mark.parametrize("backend", BACKENDS)
def test_restore_rejects_other_kind(backend):
    stream = backend(num_users=2, num_objects=2)
    other = (
        StreamingCATD if backend is StreamingGTM else StreamingGTM
    )(num_users=2, num_objects=2)
    with pytest.raises(ValueError, match="stream"):
        stream.restore(other.snapshot())


@pytest.mark.parametrize("backend", BACKENDS)
def test_rejected_snapshot_leaves_stream_untouched(backend):
    """A corrupt snapshot must not tear the live estimator: after a
    failed restore every statistic, derived value, and parameter is
    exactly what it was."""
    stream = backend(num_users=3, num_objects=2, decay=0.8)
    stream.ingest(ClaimBatch(
        users=np.array([0, 1]), objects=np.array([0, 1]),
        values=np.array([1.0, 2.0]),
    ))
    before = stream.snapshot(arrays=True)

    bad = stream.snapshot()
    bad["alpha" if backend is StreamingGTM else "significance"] = -1.0
    with pytest.raises(ValueError):
        stream.restore(bad)
    missing = stream.snapshot()
    missing.pop("prior_mean" if backend is StreamingGTM else "significance")
    with pytest.raises((ValueError, KeyError)):
        stream.restore(missing)

    after = stream.snapshot(arrays=True)
    for name, value in after.items():
        if isinstance(value, np.ndarray):
            assert value.tobytes() == before[name].tobytes(), name
        else:
            assert value == before[name], name


@pytest.mark.parametrize("backend", BACKENDS)
def test_hyperparameters_survive_round_trip(backend):
    if backend is StreamingGTM:
        stream = StreamingGTM(2, 2, alpha=3.5, beta=0.25, prior_variance=2.0)
        keys = ("alpha", "beta", "prior_variance")
    else:
        stream = StreamingCATD(2, 2, significance=0.2, distance_floor=1e-6)
        keys = ("significance", "distance_floor")
    restored = backend.from_snapshot(stream.snapshot())
    for key in keys:
        assert restored.snapshot()[key] == stream.snapshot()[key]
