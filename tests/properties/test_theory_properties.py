"""Property-based tests tying the theory module together."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.distributions import PairDeviationDistribution
from repro.theory.privacy import epsilon_from_noise_level, min_noise_level
from repro.theory.tradeoff import noise_level_window
from repro.theory.utility import (
    alpha_threshold,
    max_noise_level,
    utility_failure_bound,
)

rates = st.floats(min_value=0.05, max_value=50.0)
probs = st.floats(min_value=0.01, max_value=0.99)


@given(rates, rates)
@settings(max_examples=150, deadline=None)
def test_distribution_moments_consistent(lambda1, lambda2):
    """Closed-form mean matches quadrature for arbitrary rates."""
    dist = PairDeviationDistribution(lambda1, lambda2)
    assert dist.mean() == pytest.approx(dist.mean_numeric(), rel=1e-5)
    assert dist.variance() >= 0
    # Jensen: E[Y]^2 <= E[Y^2]
    assert dist.mean() ** 2 <= dist.mean_square() + 1e-12


@given(rates, st.floats(min_value=0.05, max_value=20.0))
@settings(max_examples=150)
def test_alpha_threshold_monotone_in_c(lambda1, c):
    """More noise raises the achievable-alpha floor."""
    assert alpha_threshold(lambda1, c * 1.5) > alpha_threshold(lambda1, c)


@given(
    rates,
    st.floats(min_value=0.01, max_value=10.0),
    probs,
    st.integers(min_value=2, max_value=10_000),
)
@settings(max_examples=150)
def test_max_noise_level_monotonicities(lambda1, alpha, beta, s):
    """Eq. 15's bound increases in every generosity direction."""
    base = max_noise_level(lambda1, alpha, beta, s)
    assert max_noise_level(lambda1 * 2, alpha, beta, s) > base
    assert max_noise_level(lambda1, alpha * 2, beta, s) > base
    assert max_noise_level(lambda1, alpha, min(beta * 2, 1.0), s) >= base
    assert max_noise_level(lambda1, alpha, beta, s * 2) > base


@given(rates, st.floats(min_value=0.05, max_value=5.0), probs)
@settings(max_examples=150)
def test_privacy_bound_inversion(lambda1, epsilon, delta):
    """epsilon_from_noise_level inverts min_noise_level exactly."""
    c = min_noise_level(lambda1, epsilon, delta)
    recovered = epsilon_from_noise_level(lambda1, c, delta)
    assert recovered == pytest.approx(epsilon, rel=1e-9)


@given(rates, st.floats(min_value=0.05, max_value=5.0), probs)
@settings(max_examples=100)
def test_privacy_bound_antitone_in_epsilon(lambda1, epsilon, delta):
    assert min_noise_level(lambda1, epsilon * 2, delta) < min_noise_level(
        lambda1, epsilon, delta
    )


@given(
    rates,
    st.floats(min_value=0.1, max_value=10.0),
    probs,
    st.integers(min_value=2, max_value=1000),
    st.floats(min_value=0.05, max_value=5.0),
    probs,
)
@settings(max_examples=150)
def test_window_consistency(lambda1, alpha, beta, s, epsilon, delta):
    """The window is exactly the intersection of the two theorem bounds."""
    window = noise_level_window(lambda1, alpha, beta, s, epsilon, delta)
    assert window.c_max == pytest.approx(
        max_noise_level(lambda1, alpha, beta, s)
    )
    assert window.c_min == pytest.approx(min_noise_level(lambda1, epsilon, delta))
    assert window.feasible == (window.c_min <= window.c_max and window.c_max > 0)


@given(rates, st.floats(min_value=0.05, max_value=5.0), st.integers(min_value=2, max_value=10_000))
@settings(max_examples=100, deadline=None)
def test_failure_bound_in_unit_interval(lambda1, c, s):
    alpha = alpha_threshold(lambda1, c) * 1.5
    bound = utility_failure_bound(lambda1, c, alpha, s)
    assert 0.0 <= bound <= 1.0
