"""Property-based tests for the streaming engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truthdiscovery.streaming import ClaimBatch, StreamingCRH


@st.composite
def batch_sequences(draw):
    num_users = draw(st.integers(min_value=2, max_value=8))
    num_objects = draw(st.integers(min_value=1, max_value=5))
    num_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    for b in range(num_batches):
        size = draw(st.integers(min_value=1, max_value=12))
        users = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_users - 1),
                min_size=size, max_size=size,
            )
        )
        objects = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_objects - 1),
                min_size=size, max_size=size,
            )
        )
        values = draw(
            st.lists(
                st.floats(
                    min_value=-1e3, max_value=1e3,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=size, max_size=size,
            )
        )
        batches.append(
            ClaimBatch(
                users=np.array(users),
                objects=np.array(objects),
                values=np.array(values),
            )
        )
    return num_users, num_objects, batches


@given(batch_sequences())
@settings(max_examples=60, deadline=None)
def test_truths_within_observed_range(params):
    """Seen objects' truths stay inside the global observed value range."""
    num_users, num_objects, batches = params
    stream = StreamingCRH(num_users=num_users, num_objects=num_objects)
    all_values = np.concatenate([b.values for b in batches])
    for batch in batches:
        stream.ingest(batch)
    seen = stream.seen_objects
    truths = stream.truths[seen]
    assert (truths >= all_values.min() - 1e-6).all()
    assert (truths <= all_values.max() + 1e-6).all()


@given(batch_sequences())
@settings(max_examples=60, deadline=None)
def test_weights_finite_nonnegative(params):
    num_users, num_objects, batches = params
    stream = StreamingCRH(num_users=num_users, num_objects=num_objects)
    for batch in batches:
        stream.ingest(batch)
    assert np.isfinite(stream.weights).all()
    assert (stream.weights >= 0).all()


@given(batch_sequences())
@settings(max_examples=40, deadline=None)
def test_unseen_objects_never_move(params):
    num_users, num_objects, batches = params
    stream = StreamingCRH(num_users=num_users, num_objects=num_objects)
    for batch in batches:
        stream.ingest(batch)
    unseen = ~stream.seen_objects
    assert (stream.truths[unseen] == 0.0).all()


@given(batch_sequences())
@settings(max_examples=40, deadline=None)
def test_ingest_is_deterministic(params):
    num_users, num_objects, batches = params
    streams = []
    for _ in range(2):
        s = StreamingCRH(num_users=num_users, num_objects=num_objects)
        for batch in batches:
            s.ingest(batch)
        streams.append(s)
    np.testing.assert_array_equal(streams[0].truths, streams[1].truths)
    np.testing.assert_array_equal(streams[0].weights, streams[1].weights)


@given(
    st.floats(min_value=-100, max_value=100),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=60)
def test_constant_stream_returns_constant(value, num_users):
    stream = StreamingCRH(num_users=num_users, num_objects=1)
    batch = ClaimBatch(
        users=np.arange(num_users),
        objects=np.zeros(num_users, dtype=int),
        values=np.full(num_users, value),
    )
    stream.ingest(batch)
    assert stream.truths[0] == pytest.approx(value, abs=1e-9)


@given(batch_sequences(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_round_trip_is_exact(params, split_at):
    """The ISSUE-2 checkpoint property: snapshot mid-stream, rebuild a
    stream from it, continue both with the same batches — every
    retained statistic and derived value stays bit-for-bit equal."""
    num_users, num_objects, batches = params
    split_at = min(split_at, len(batches))
    original = StreamingCRH(num_users=num_users, num_objects=num_objects)
    for batch in batches[:split_at]:
        original.ingest(batch)

    snapshot = original.snapshot()
    # Checkpoints pass through JSON; the round-trip must stay exact.
    import json

    restored = StreamingCRH.from_snapshot(json.loads(json.dumps(snapshot)))

    for batch in batches[split_at:]:
        original.ingest(batch)
        restored.ingest(batch)
    assert restored.truths.tobytes() == original.truths.tobytes()
    assert restored.weights.tobytes() == original.weights.tobytes()
    np.testing.assert_array_equal(
        restored.seen_objects, original.seen_objects
    )
    assert restored.batches_ingested == original.batches_ingested
    assert restored.snapshot() == original.snapshot()
