"""Property-based tests for Lemma 4.4 (the utility proof's pivot).

For any losses t and any monotonically decreasing weight function f,
the f-weighted average of t never exceeds the unweighted average.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.theory.lemmas import chebyshev_sum_gap, weighted_average_bound_holds

losses = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=2, max_value=40),
    elements=st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@given(losses)
@settings(max_examples=200)
def test_lemma44_reciprocal_weights(t):
    assert weighted_average_bound_holds(t, lambda x: 1.0 / (1.0 + x))


@given(losses)
@settings(max_examples=200)
def test_lemma44_exponential_weights(t):
    # exp(-x) underflows to 0 for large x; shift into a safe range while
    # keeping monotonicity.
    scale = max(float(np.max(t)), 1.0)
    assert weighted_average_bound_holds(t, lambda x: np.exp(-x / scale))


@given(losses)
@settings(max_examples=200)
def test_lemma44_crh_style_log_weights(t):
    # CRH's -log(share) weights, floored like the implementation.
    def crh_weights(x):
        x = np.maximum(x, 1e-8)
        shares = np.clip(x / x.sum(), 1e-300, 1.0 - 1e-12)
        return -np.log(shares)

    assert weighted_average_bound_holds(t, crh_weights)


@given(losses, st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=200)
def test_lemma44_power_law_weights(t, power):
    assert weighted_average_bound_holds(
        t, lambda x: (1.0 + x) ** (-power)
    )


@given(losses)
@settings(max_examples=200)
def test_chebyshev_gap_nonpositive_for_decreasing_weights(t):
    w = 1.0 / (1.0 + t)
    assert chebyshev_sum_gap(t, w) <= 1e-6 * max(1.0, float(np.abs(t).max()))
