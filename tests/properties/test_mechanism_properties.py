"""Property-based tests for the perturbation mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy.ldp import epsilon_for_variance, epsilon_of_mechanism, lambda2_for_epsilon
from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism
from repro.truthdiscovery.claims import ClaimMatrix

claim_matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    ),
    elements=st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    ),
)


@given(
    claim_matrices,
    st.floats(min_value=0.01, max_value=100.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=80, deadline=None)
def test_perturbation_is_additive_and_consistent(values, lambda2, seed):
    claims = ClaimMatrix(values)
    mech = ExponentialVarianceGaussianMechanism(lambda2)
    result = mech.perturb(claims, random_state=seed)
    np.testing.assert_allclose(
        result.perturbed.values, claims.values + result.noise
    )
    assert result.noise_variances.shape == (claims.num_users,)
    assert (result.noise_variances > 0).all()


@given(
    claim_matrices,
    st.floats(min_value=0.01, max_value=100.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_perturbation_deterministic_in_seed(values, lambda2, seed):
    claims = ClaimMatrix(values)
    mech = ExponentialVarianceGaussianMechanism(lambda2)
    a = mech.perturb(claims, random_state=seed)
    b = mech.perturb(claims, random_state=seed)
    np.testing.assert_array_equal(a.noise, b.noise)


@given(
    st.floats(min_value=0.01, max_value=50.0),
    st.floats(min_value=0.01, max_value=50.0),
    st.floats(min_value=0.001, max_value=0.999),
)
@settings(max_examples=200)
def test_epsilon_lambda2_inversion(epsilon, sensitivity, delta):
    lam = lambda2_for_epsilon(epsilon, sensitivity, delta)
    assert epsilon_of_mechanism(lam, sensitivity, delta) == pytest.approx(
        epsilon, rel=1e-9
    )


@given(
    st.floats(min_value=0.001, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=200)
def test_eq18_density_ratio_on_valid_region(variance, sensitivity):
    """Eq. 18's pointwise bound: with x1 < x2, the Gaussian density ratio
    p(x | x1) / p(x | x2) is within exp(Delta^2 / 2y) for all outputs
    x >= x1 (the bound's valid half-line; the opposite tail is what the
    delta slack of the (eps, delta) definition absorbs)."""
    x1, x2 = 0.0, sensitivity
    eps = epsilon_for_variance(variance, sensitivity) if sensitivity > 0 else 0.0
    xs = np.linspace(x1, x2 + 5 * np.sqrt(variance), 25)
    log_ratio = ((xs - x2) ** 2 - (xs - x1) ** 2) / (2 * variance)
    assert (log_ratio <= eps + 1e-9).all()


@given(st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=100)
def test_expected_noise_monotone_in_lambda2(lambda2):
    mech_a = ExponentialVarianceGaussianMechanism(lambda2)
    mech_b = ExponentialVarianceGaussianMechanism(lambda2 * 2.0)
    assert mech_b.expected_noise_magnitude() < mech_a.expected_noise_magnitude()
