"""The service-topology API and its deprecation shims."""

import warnings

import pytest

from repro.durable import DurabilityConfig, DurabilityManager
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.topology import Topology


class TestFactories:
    def test_in_process_default(self):
        topo = Topology.in_process()
        assert topo.kind == "in_process"
        assert topo.durability is None

    def test_workers(self):
        topo = Topology.workers(4, start_method="fork")
        assert topo.kind == "workers"
        assert topo.processes == 4
        assert topo.start_method == "fork"

    def test_fabric(self):
        topo = Topology.fabric(2, supervise=False)
        assert topo.kind == "fabric"
        assert topo.processes == 2
        assert topo.supervise is False

    def test_replicated(self, tmp_path):
        topo = Topology.replicated(
            standbys=2,
            durability=tmp_path,
            sync="semi-sync",
            standby_dirs=[tmp_path / "a", tmp_path / "b"],
            standby_fsync="always",
            ack_timeout=5.0,
        )
        assert topo.kind == "replicated"
        assert topo.standbys == 2
        assert topo.sync == "semi-sync"
        assert topo.standby_dirs == (
            str(tmp_path / "a"),
            str(tmp_path / "b"),
        )
        assert topo.standby_fsync == "always"
        assert topo.ack_timeout == 5.0

    def test_frozen(self):
        topo = Topology.in_process()
        with pytest.raises(AttributeError):
            topo.kind = "fabric"


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            Topology(kind="cluster")

    @pytest.mark.parametrize("processes", [0, -1])
    def test_workers_need_processes(self, processes):
        with pytest.raises(ValueError, match="processes"):
            Topology.workers(processes)

    @pytest.mark.parametrize("processes", [0, -3])
    def test_fabric_needs_processes(self, processes):
        with pytest.raises(ValueError, match="processes"):
            Topology.fabric(processes)

    def test_replicated_needs_standbys(self, tmp_path):
        with pytest.raises(ValueError, match="standbys"):
            Topology.replicated(standbys=0, durability=tmp_path)

    def test_replicated_bad_sync(self, tmp_path):
        with pytest.raises(ValueError, match="sync must be one of"):
            Topology.replicated(durability=tmp_path, sync="full")

    def test_replicated_requires_durability(self):
        with pytest.raises(ValueError, match="requires durability"):
            Topology.replicated(standbys=1, durability=None)

    def test_standby_dirs_count_must_match(self, tmp_path):
        with pytest.raises(ValueError, match="standby_dirs"):
            Topology.replicated(
                standbys=2,
                durability=tmp_path,
                standby_dirs=[tmp_path / "only-one"],
            )


class TestLegacyKwargShim:
    def test_workers_and_hosts_mutually_exclusive(self):
        with pytest.raises(
            ValueError,
            match=(
                r"workers \(pipe pool\) and hosts \(socket fabric\) are "
                r"mutually exclusive; pick one"
            ),
        ):
            Topology._from_legacy_kwargs(workers=2, hosts=2)

    def test_legacy_workers_maps_to_workers(self):
        assert Topology._from_legacy_kwargs(
            workers=3, start_method="fork"
        ) == Topology.workers(3, start_method="fork")

    def test_legacy_hosts_maps_to_fabric(self):
        assert Topology._from_legacy_kwargs(
            hosts=2, supervise=False
        ) == Topology.fabric(2, supervise=False)

    def test_legacy_default_maps_to_in_process(self):
        assert Topology._from_legacy_kwargs() == Topology.in_process()

    def test_legacy_durability_is_preserved(self, tmp_path):
        topo = Topology._from_legacy_kwargs(durability=tmp_path)
        assert topo == Topology.in_process(durability=tmp_path)


class TestIngestServiceShims:
    def test_legacy_durability_kwarg_warns_once_same_topology(
        self, tmp_path
    ):
        manager = DurabilityManager(DurabilityConfig(directory=tmp_path))
        with pytest.warns(DeprecationWarning) as caught:
            service = IngestService(
                ServiceConfig(num_shards=2), durability=manager
            )
        try:
            assert len(caught) == 1
            assert "topology=" in str(caught[0].message)
            assert service.topology == Topology.in_process(
                durability=manager
            )
            assert service.durability is manager
        finally:
            service.close()
            manager.close()

    def test_legacy_workers_kwarg_builds_worker_topology(self):
        with pytest.warns(DeprecationWarning):
            service = IngestService(
                ServiceConfig(num_shards=2), workers=1
            )
        try:
            assert service.topology == Topology.workers(1)
        finally:
            service.close()

    def test_topology_and_legacy_kwargs_conflict(self, tmp_path):
        manager = DurabilityManager(DurabilityConfig(directory=tmp_path))
        try:
            with pytest.raises(
                ValueError, match="either topology= or the deprecated"
            ):
                IngestService(
                    ServiceConfig(num_shards=2),
                    topology=Topology.in_process(),
                    durability=manager,
                )
        finally:
            manager.close()

    def test_default_is_in_process_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = IngestService(ServiceConfig(num_shards=2))
        try:
            assert service.topology == Topology.in_process()
            assert service.replication is None
            assert service.standbys is None
        finally:
            service.close()

    def test_topology_durability_accepts_config_and_path(self, tmp_path):
        service = IngestService(
            ServiceConfig(num_shards=2),
            topology=Topology.in_process(
                durability=DurabilityConfig(directory=tmp_path / "a")
            ),
        )
        try:
            assert service.durability is not None
            assert (tmp_path / "a").is_dir()
        finally:
            service.close()

        service = IngestService(
            ServiceConfig(num_shards=2),
            topology=Topology.in_process(durability=tmp_path / "b"),
        )
        try:
            assert service.durability is not None
            assert (tmp_path / "b").is_dir()
        finally:
            service.close()

    def test_service_built_manager_closed_with_service(self, tmp_path):
        """durability= as a path/config has no other owner — close()
        must close the manager it built; a caller-attached manager must
        survive close() for recovery."""
        service = IngestService(
            ServiceConfig(num_shards=2),
            topology=Topology.in_process(durability=tmp_path / "own"),
        )
        manager = service.durability
        service.close()
        assert manager.wal.closed

        caller_owned = DurabilityManager(
            DurabilityConfig(directory=tmp_path / "theirs")
        )
        service = IngestService(
            ServiceConfig(num_shards=2),
            topology=Topology.in_process(durability=caller_owned),
        )
        service.close()
        assert not caller_owned.wal.closed
        caller_owned.close()
