"""Budget-ledger admission control tests."""

import pytest

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.service.ledger import BudgetLedger

RELEASE = LDPGuarantee(epsilon=1.0, delta=0.05)


class TestBudgetLedger:
    def test_admits_until_epsilon_cap(self):
        ledger = BudgetLedger(epsilon_cap=2.5)
        assert ledger.admit("u1", RELEASE).admitted
        assert ledger.admit("u1", RELEASE).admitted
        denial = ledger.admit("u1", RELEASE)
        assert not denial.admitted
        assert denial.reason == "epsilon-exhausted"
        assert denial.remaining_epsilon == pytest.approx(0.5)
        assert ledger.admitted == 2 and ledger.denied == 1

    def test_denial_spends_nothing(self):
        ledger = BudgetLedger(epsilon_cap=1.5)
        ledger.admit("u1", RELEASE)
        ledger.admit("u1", RELEASE)  # denied
        assert ledger.spent("u1").epsilon == pytest.approx(1.0)
        # A smaller release still fits afterwards.
        assert ledger.admit("u1", LDPGuarantee(0.5, 0.0)).admitted

    def test_delta_cap_enforced(self):
        ledger = BudgetLedger(epsilon_cap=100.0, delta_cap=0.08)
        assert ledger.admit("u1", RELEASE).admitted
        denial = ledger.admit("u1", RELEASE)
        assert not denial.admitted
        assert denial.reason == "delta-exhausted"

    def test_per_user_isolation(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        assert ledger.admit("u1", RELEASE).admitted
        assert not ledger.admit("u1", RELEASE).admitted
        assert ledger.admit("u2", RELEASE).admitted
        assert ledger.num_users == 2

    def test_wrapped_accountant_records_admitted_only(self):
        accountant = PrivacyAccountant()
        ledger = BudgetLedger(epsilon_cap=1.0, accountant=accountant)
        ledger.admit("u1", RELEASE, mechanism="exp-gauss", label="c1")
        ledger.admit("u1", RELEASE)  # denied, must not be recorded
        assert accountant.num_events == 1
        composed = accountant.composed_guarantee("u1")
        assert composed.epsilon == pytest.approx(ledger.spent("u1").epsilon)

    def test_worst_case_tracks_heaviest_spender(self):
        ledger = BudgetLedger(epsilon_cap=10.0)
        ledger.admit("light", LDPGuarantee(0.5, 0.0))
        for _ in range(3):
            ledger.admit("heavy", RELEASE)
        assert ledger.worst_case().epsilon == pytest.approx(3.0)

    def test_worst_case_is_elementwise_over_users(self):
        # Biggest epsilon- and delta-spenders differ: the bound must
        # cover both, not just the lexicographic max user.
        ledger = BudgetLedger(epsilon_cap=10.0)
        ledger.admit("eps-heavy", LDPGuarantee(1.0, 0.0))
        ledger.admit("delta-heavy", LDPGuarantee(0.9, 0.8))
        worst = ledger.worst_case()
        assert worst.epsilon == pytest.approx(1.0)
        assert worst.delta == pytest.approx(0.8)

    def test_can_admit_previews_without_spending(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        assert ledger.can_admit("u1", RELEASE)
        assert ledger.spent("u1").epsilon == 0.0  # preview spent nothing
        ledger.admit("u1", RELEASE)
        assert not ledger.can_admit("u1", RELEASE)

    def test_reset(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        ledger.admit("u1", RELEASE)
        ledger.reset()
        assert ledger.num_users == 0
        assert ledger.admit("u1", RELEASE).admitted


class TestLedgerSerialisation:
    def test_round_trip_preserves_spend(self):
        ledger = BudgetLedger(epsilon_cap=2.0, delta_cap=0.2)
        ledger.admit("u1", RELEASE)
        ledger.admit("u2", LDPGuarantee(0.25, 0.0))
        records = ledger.to_records()
        restored = BudgetLedger.from_records(
            records, epsilon_cap=2.0, delta_cap=0.2
        )
        for user in ("u1", "u2"):
            assert restored.spent(user) == ledger.spent(user)
        assert restored.num_users == 2

    def test_records_are_json_friendly(self):
        import json

        ledger = BudgetLedger(epsilon_cap=2.0)
        ledger.admit("u1", RELEASE)
        round_tripped = json.loads(json.dumps(ledger.to_records()))
        restored = BudgetLedger.from_records(round_tripped, epsilon_cap=2.0)
        assert restored.spent("u1") == ledger.spent("u1")

    def test_recovered_ledger_refuses_over_budget_users(self):
        # The ISSUE-2 satellite: spent state survives a restart and an
        # exhausted user stays exhausted.
        ledger = BudgetLedger(epsilon_cap=2.0)
        ledger.admit("u1", RELEASE)
        ledger.admit("u1", RELEASE)  # 2.0 spent: exactly at the cap
        restored = BudgetLedger.from_records(
            ledger.to_records(), epsilon_cap=2.0
        )
        denial = restored.admit("u1", RELEASE)
        assert not denial.admitted
        assert denial.reason == "epsilon-exhausted"
        # A fresh user is unaffected.
        assert restored.admit("u9", RELEASE).admitted

    def test_restore_above_cap_is_kept_not_clamped(self):
        restored = BudgetLedger.from_records(
            [{"user_id": "u1", "epsilon": 5.0, "delta": 0.0}],
            epsilon_cap=2.0,
        )
        assert restored.spent("u1").epsilon == pytest.approx(5.0)
        assert not restored.admit("u1", LDPGuarantee(0.01, 0.0)).admitted

    def test_duplicate_records_rejected(self):
        records = [
            {"user_id": "u1", "epsilon": 1.0, "delta": 0.0},
            {"user_id": "u1", "epsilon": 0.5, "delta": 0.0},
        ]
        with pytest.raises(ValueError, match="duplicate"):
            BudgetLedger.from_records(records, epsilon_cap=2.0)

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            BudgetLedger.from_records(
                [{"user_id": "u1", "epsilon": -1.0, "delta": 0.0}],
                epsilon_cap=2.0,
            )

    def test_record_spent_bypasses_caps(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        ledger.record_spent("u1", LDPGuarantee(3.0, 0.0))
        assert ledger.spent("u1").epsilon == pytest.approx(3.0)
        assert not ledger.admit("u1", LDPGuarantee(0.1, 0.0)).admitted


class TestLedgerConcurrency:
    def test_concurrent_admits_never_oversubscribe_the_cap(self):
        import threading

        charge = LDPGuarantee(epsilon=0.1, delta=0.0)
        ledger = BudgetLedger(epsilon_cap=1.0)  # room for exactly 10
        admitted = []

        def worker():
            wins = 0
            for _ in range(10):
                if ledger.admit("u1", charge).admitted:
                    wins += 1
            admitted.append(wins)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        # A torn read-modify-write would either lose a charge (spent <
        # admitted * 0.1) or admit past the cap (sum > 10).
        assert sum(admitted) == 10
        assert ledger.spent("u1").epsilon == pytest.approx(1.0)

    def test_lock_composes_for_atomic_sections(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        with ledger.lock:  # re-entrant: inner calls must not deadlock
            assert ledger.can_admit("u1", RELEASE)
            assert ledger.admit("u1", RELEASE).admitted
        assert ledger.spent("u1").epsilon == pytest.approx(1.0)
