"""Budget-ledger admission control tests."""

import pytest

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.service.ledger import BudgetLedger

RELEASE = LDPGuarantee(epsilon=1.0, delta=0.05)


class TestBudgetLedger:
    def test_admits_until_epsilon_cap(self):
        ledger = BudgetLedger(epsilon_cap=2.5)
        assert ledger.admit("u1", RELEASE).admitted
        assert ledger.admit("u1", RELEASE).admitted
        denial = ledger.admit("u1", RELEASE)
        assert not denial.admitted
        assert denial.reason == "epsilon-exhausted"
        assert denial.remaining_epsilon == pytest.approx(0.5)
        assert ledger.admitted == 2 and ledger.denied == 1

    def test_denial_spends_nothing(self):
        ledger = BudgetLedger(epsilon_cap=1.5)
        ledger.admit("u1", RELEASE)
        ledger.admit("u1", RELEASE)  # denied
        assert ledger.spent("u1").epsilon == pytest.approx(1.0)
        # A smaller release still fits afterwards.
        assert ledger.admit("u1", LDPGuarantee(0.5, 0.0)).admitted

    def test_delta_cap_enforced(self):
        ledger = BudgetLedger(epsilon_cap=100.0, delta_cap=0.08)
        assert ledger.admit("u1", RELEASE).admitted
        denial = ledger.admit("u1", RELEASE)
        assert not denial.admitted
        assert denial.reason == "delta-exhausted"

    def test_per_user_isolation(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        assert ledger.admit("u1", RELEASE).admitted
        assert not ledger.admit("u1", RELEASE).admitted
        assert ledger.admit("u2", RELEASE).admitted
        assert ledger.num_users == 2

    def test_wrapped_accountant_records_admitted_only(self):
        accountant = PrivacyAccountant()
        ledger = BudgetLedger(epsilon_cap=1.0, accountant=accountant)
        ledger.admit("u1", RELEASE, mechanism="exp-gauss", label="c1")
        ledger.admit("u1", RELEASE)  # denied, must not be recorded
        assert accountant.num_events == 1
        composed = accountant.composed_guarantee("u1")
        assert composed.epsilon == pytest.approx(ledger.spent("u1").epsilon)

    def test_worst_case_tracks_heaviest_spender(self):
        ledger = BudgetLedger(epsilon_cap=10.0)
        ledger.admit("light", LDPGuarantee(0.5, 0.0))
        for _ in range(3):
            ledger.admit("heavy", RELEASE)
        assert ledger.worst_case().epsilon == pytest.approx(3.0)

    def test_worst_case_is_elementwise_over_users(self):
        # Biggest epsilon- and delta-spenders differ: the bound must
        # cover both, not just the lexicographic max user.
        ledger = BudgetLedger(epsilon_cap=10.0)
        ledger.admit("eps-heavy", LDPGuarantee(1.0, 0.0))
        ledger.admit("delta-heavy", LDPGuarantee(0.9, 0.8))
        worst = ledger.worst_case()
        assert worst.epsilon == pytest.approx(1.0)
        assert worst.delta == pytest.approx(0.8)

    def test_can_admit_previews_without_spending(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        assert ledger.can_admit("u1", RELEASE)
        assert ledger.spent("u1").epsilon == 0.0  # preview spent nothing
        ledger.admit("u1", RELEASE)
        assert not ledger.can_admit("u1", RELEASE)

    def test_reset(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        ledger.admit("u1", RELEASE)
        ledger.reset()
        assert ledger.num_users == 0
        assert ledger.admit("u1", RELEASE).admitted
