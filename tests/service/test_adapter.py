"""Crowdsensing-over-service integration tests (plus a slow target check)."""

import numpy as np
import pytest

from repro.crowdsensing import (
    CampaignSpec,
    InProcessTransport,
    build_devices,
    run_campaign,
)
from repro.crowdsensing.messages import ClaimSubmission
from repro.crowdsensing.server import AggregationServer
from repro.service import IngestService, ServiceConfig


def observations(num_users: int) -> dict:
    return {
        f"u{i}": {"o1": 1.0 + 0.01 * i, "o2": 2.0 - 0.01 * i}
        for i in range(num_users)
    }


class TestServiceBackedCampaigns:
    def test_run_campaign_matches_classic_path(self):
        spec = CampaignSpec(
            campaign_id="parity", object_ids=("o1", "o2"), lambda2=2.0
        )
        classic = run_campaign(
            spec, build_devices(observations(8), random_state=5),
            random_state=5,
        )
        service = IngestService(ServiceConfig(num_shards=2, max_batch=4))
        served = run_campaign(
            spec, build_devices(observations(8), random_state=5),
            random_state=5, service=service,
        )
        assert served.succeeded
        assert served.contributors == classic.contributors
        # Same dedup'd dense claims, same method: identical aggregates.
        np.testing.assert_allclose(served.truths, classic.truths, atol=1e-9)

    def test_quorum_enforced_on_service_path(self):
        spec = CampaignSpec(
            campaign_id="quorum", object_ids=("o1", "o2"), lambda2=2.0,
            min_contributors=5,
        )
        service = IngestService(ServiceConfig(num_shards=1))
        report = run_campaign(
            spec, build_devices(observations(3), random_state=5),
            random_state=5, service=service,
        )
        assert not report.succeeded
        assert report.submissions_received == 3

    def test_mid_campaign_snapshot_readable(self):
        transport = InProcessTransport(random_state=0)
        service = IngestService(ServiceConfig(num_shards=1, max_batch=2))
        server = AggregationServer(transport, service=service)
        spec = CampaignSpec(
            campaign_id="live", object_ids=("o1",), lambda2=1.0,
            min_contributors=1,
        )
        server.announce_campaign(spec, ["u1", "u2"])
        transport.drain_until_idle()
        transport.send("u1", "server", ClaimSubmission("live", "u1", ("o1",), (4.0,)))
        transport.drain_until_idle()
        assert server.collect() == {"live": 1}
        # Fresh truths are queryable before finalise — the classic path
        # cannot do this.
        snap = service.snapshot("live")
        assert snap.truth_for("o1") == pytest.approx(4.0)
        # Message bodies are not retained on this backend: loud failure
        # instead of a silently empty inbox.
        with pytest.raises(RuntimeError, match="not retained"):
            server.submissions_for("live")
        report = server.finalise(spec, assignments_sent=2)
        assert report.succeeded

    def test_uncovered_objects_fail_the_campaign(self):
        """No published truth may be a 0.0 placeholder for an unclaimed
        object."""
        transport = InProcessTransport(random_state=0)
        service = IngestService(ServiceConfig(num_shards=1))
        server = AggregationServer(transport, service=service)
        spec = CampaignSpec(
            campaign_id="gaps", object_ids=("o1", "o2"), lambda2=1.0,
            min_contributors=1,
        )
        server.announce_campaign(spec, ["u1"])
        transport.drain_until_idle()
        transport.send(
            "u1", "server", ClaimSubmission("gaps", "u1", ("o1",), (4.0,))
        )
        transport.drain_until_idle()
        server.collect()
        report = server.finalise(spec, assignments_sent=1, announce=False)
        assert not report.succeeded  # o2 never received a claim

    def test_finalise_without_announce_fails_like_classic_path(self):
        transport = InProcessTransport(random_state=0)
        service = IngestService(ServiceConfig(num_shards=1))
        server = AggregationServer(transport, service=service)
        spec = CampaignSpec(
            campaign_id="ghost", object_ids=("o1",), lambda2=1.0
        )
        report = server.finalise(spec, assignments_sent=0, announce=False)
        assert not report.succeeded
        assert report.contributors == ()

    def test_reannounce_resets_service_state(self):
        """Round 2 of a campaign must not inherit round 1's aggregates."""
        transport = InProcessTransport(random_state=0)
        service = IngestService(ServiceConfig(num_shards=1, max_batch=2))
        server = AggregationServer(transport, service=service)
        spec = CampaignSpec(
            campaign_id="rounds", object_ids=("o1",), lambda2=1.0,
            min_contributors=1,
        )
        for round_value in (10.0, 20.0):
            server.announce_campaign(spec, ["u1"])
            transport.drain_until_idle()
            transport.send(
                "u1", "server",
                ClaimSubmission("rounds", "u1", ("o1",), (round_value,)),
            )
            transport.drain_until_idle()
            server.collect()
            report = server.finalise(spec, assignments_sent=1, announce=False)
            assert report.succeeded
            # Each round aggregates only its own claim.
            assert report.truths[0] == pytest.approx(round_value)


class TestServerRegressions:
    """Late/duplicate submission handling on the classic path."""

    def test_collect_returns_per_campaign_counts(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        for cid in ("a", "b"):
            server.announce_campaign(
                CampaignSpec(campaign_id=cid, object_ids=("o1",), lambda2=1.0),
                [],
            )
        transport.send("u1", "server", ClaimSubmission("a", "u1", ("o1",), (1.0,)))
        transport.send("u2", "server", ClaimSubmission("a", "u2", ("o1",), (2.0,)))
        transport.send("u1", "server", ClaimSubmission("b", "u1", ("o1",), (3.0,)))
        transport.drain_until_idle()
        assert server.collect() == {"a": 2, "b": 1}

    def test_late_submission_counted_not_silently_dropped(self, caplog):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="late", object_ids=("o1",), lambda2=1.0,
            min_contributors=1,
        )
        server.announce_campaign(spec, ["u1"])
        transport.send("u1", "server", ClaimSubmission("late", "u1", ("o1",), (1.0,)))
        transport.drain_until_idle()
        server.collect()
        server.finalise(spec, assignments_sent=1, announce=False)
        # A straggler retries after the campaign closed.
        transport.send("u1", "server", ClaimSubmission("late", "u1", ("o1",), (1.1,)))
        transport.drain_until_idle()
        with caplog.at_level("WARNING", logger="repro.crowdsensing.server"):
            counts = server.collect()
        assert counts == {}
        assert server.late_submission_counts == {"late": 1}
        assert any("late submission" in r.message for r in caplog.records)

    def test_reannounce_reopens_campaign(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="re", object_ids=("o1",), lambda2=1.0,
            min_contributors=1,
        )
        server.announce_campaign(spec, [])
        server.finalise(spec, assignments_sent=0, announce=False)
        # A round-1 straggler arrives after the close and is counted.
        transport.send("u9", "server", ClaimSubmission("re", "u9", ("o1",), (9.0,)))
        transport.drain_until_idle()
        server.collect()
        assert server.late_submission_counts == {"re": 1}
        server.announce_campaign(spec, [])  # round 2 reopens the bucket
        transport.send("u1", "server", ClaimSubmission("re", "u1", ("o1",), (2.0,)))
        transport.drain_until_idle()
        assert server.collect() == {"re": 1}
        # Round 1's stragglers do not haunt round 2's counters.
        assert server.late_submission_counts == {}

    def test_duplicate_submissions_still_deduplicated(self):
        transport = InProcessTransport(random_state=0)
        server = AggregationServer(transport)
        spec = CampaignSpec(
            campaign_id="dup", object_ids=("o1",), lambda2=1.0,
            min_contributors=1,
        )
        server.announce_campaign(spec, ["u1"])
        received = 0
        for value in (1.0, 2.0, 3.0):
            transport.send(
                "u1", "server", ClaimSubmission("dup", "u1", ("o1",), (value,))
            )
            # Drain between retries so arrival order is deterministic
            # (the reliable link still jitters per-message latency).
            transport.drain_until_idle()
            received += server.collect().get("dup", 0)
        assert received == 3
        report = server.finalise(spec, assignments_sent=1, announce=False)
        assert report.submissions_received == 1
        assert report.truths[0] == pytest.approx(3.0)  # last retry wins


@pytest.mark.slow
def test_service_meets_throughput_targets():
    """Full-scale acceptance run (also exercised by the benchmark)."""
    from repro.service.bench import run_service_bench

    report = run_service_bench(
        total_claims=200_000, submission_claims=40_000,
        baseline_claims=10_000,
    )
    assert report["bulk"]["claims_per_sec"] >= 100_000
    assert report["speedup_bulk_vs_baseline"] >= 10.0
    assert report["streaming_vs_batch_rmse"] <= 1e-3
