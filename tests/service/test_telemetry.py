"""Service telemetry tests: registry wiring, stats surface, tracing."""

import json

import pytest

from repro.crowdsensing.messages import ClaimSubmission
from repro.durable.manager import DurabilityConfig, DurabilityManager
from repro.service.ingest import IngestService, ServiceConfig


def make_service(**overrides) -> IngestService:
    defaults = dict(num_shards=2, max_batch=8, queue_capacity=16)
    defaults.update(overrides)
    durability = defaults.pop("durability", None)
    return IngestService(ServiceConfig(**defaults), durability=durability)


def sub(campaign="c1", user="u1", objects=("o0", "o1"), values=(1.0, 2.0)):
    return ClaimSubmission(
        campaign_id=campaign, user_id=user,
        object_ids=tuple(objects), values=tuple(values),
    )


def fill(service, campaign="c1", users=6):
    service.register_campaign(campaign, ("o0", "o1"), max_users=users)
    for i in range(users):
        assert service.submit(sub(campaign=campaign, user=f"u{i}")).ok
    service.flush()


class TestMetricsSnapshot:
    def test_core_families_present_and_consistent(self):
        service = make_service()
        fill(service)
        snap = service.metrics_snapshot()
        assert snap.value("repro_submissions_total") == 6
        assert snap.family_total("repro_claims_accepted_total") == 12
        assert snap.family_total("repro_claims_processed_total") == 12
        # Latency histograms observed real work.
        flush_count = sum(
            h["count"]
            for (name, _), h in snap.histograms.items()
            if name == "repro_batch_flush_seconds"
        )
        assert flush_count >= 1
        wait_count = sum(
            h["count"]
            for (name, _), h in snap.histograms.items()
            if name == "repro_queue_wait_seconds"
        )
        assert wait_count >= 1

    def test_rejections_counted_by_reason_and_shard(self):
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=1)
        assert service.submit(sub(user="u1")).ok
        assert service.submit(sub(user="u2")).reason == "capacity"
        assert service.submit(sub(objects=("o0", "oX"))).reason == (
            "unknown-object"
        )
        snap = service.metrics_snapshot()
        assert snap.value("repro_claims_rejected_total", reason="capacity") == 2
        assert snap.value(
            "repro_claims_rejected_total", reason="unknown-object"
        ) == 2
        assert snap.family_total("repro_shard_claims_rejected_total") == 4

    def test_queue_depth_gauges_track_live_queues(self):
        service = make_service(max_batch=64)
        service.register_campaign("c1", ("o0", "o1"), max_users=8)
        for i in range(4):
            service.submit(sub(user=f"u{i}"))
        snap = service.metrics_snapshot()
        depths = [
            v
            for (name, _), v in snap.gauges.items()
            if name == "repro_queue_depth"
        ]
        assert sum(depths) == sum(service.queue_depths()) > 0

    def test_disabled_obs_keeps_stats_but_drops_registry(self):
        service = make_service(obs=False)
        fill(service)
        assert not service.telemetry.enabled
        assert service.stats.claims_accepted == 12
        snap = service.metrics_snapshot()
        # Synthesised counters still surface; registry-native series
        # (histograms) are gone.
        assert snap.value("repro_submissions_total") == 6
        assert snap.histograms == {}

    def test_snapshot_read_latency_observed(self):
        service = make_service()
        fill(service)
        service.snapshot("c1")
        snap = service.metrics_snapshot()
        hist = snap.histograms.get(("repro_snapshot_read_seconds", ()))
        assert hist is not None and hist["count"] == 1
        assert snap.value("repro_snapshot_reads_total") == 1

    def test_snapshot_is_json_serialisable(self):
        service = make_service()
        fill(service)
        payload = json.dumps(service.metrics_snapshot().to_dict())
        assert "repro_submissions_total" in payload


class TestStatsSurface:
    def test_as_dict_exposes_queue_depths_and_per_shard_counts(self):
        service = make_service()
        fill(service)
        stats = service.stats.as_dict()
        assert stats["queue_depths"] == service.queue_depths()
        shards = stats["shards"]
        assert len(shards) == 2
        assert sum(s["accepted"] for s in shards) == 12
        assert sum(s["processed"] for s in shards) == 12
        for entry in shards:
            assert set(entry) >= {
                "accepted", "rejected", "processed", "queue_depth",
            }

    def test_wal_counters_read_live_and_survive_close(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp_path, fsync="never")
        )
        service = make_service(durability=manager)
        service.register_campaign("c1", ("o0", "o1"), max_users=8)
        for i in range(8):
            service.submit(sub(user=f"u{i}"))
        # No flush/pump yet: the property must read the live WAL, not a
        # stale sample (batches may not have hit the log yet, but after
        # an explicit flush the live view is immediate).
        service.flush()
        live = service.stats.wal_appends
        assert live == manager.wal.records_written > 0
        assert service.stats.wal_commit_groups == manager.wal.groups_committed
        service.close()
        stats = service.stats
        # After close the cached sample keeps answering.
        assert stats.wal_appends == live
        assert stats.as_dict()["wal_appends"] == live
        manager.close()

    def test_wal_commit_histogram_labelled_by_fsync_mode(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp_path, fsync="batch")
        )
        service = make_service(durability=manager)
        fill(service)
        snap = service.metrics_snapshot()
        hist = snap.histograms.get(
            ("repro_wal_commit_seconds", (("fsync", "batch"),))
        )
        assert hist is not None and hist["count"] >= 1
        assert snap.value("repro_wal_commit_groups_total") >= 1
        service.close()
        manager.close()


class TestTracing:
    def test_volatile_traces_complete_at_flush(self):
        service = make_service(trace_sample_every=1)
        fill(service)
        traces = service.telemetry.traces
        assert len(traces) == 6
        for record in traces.records():
            offsets = record["stage_offsets_s"]
            assert record["lsn"] is None
            assert offsets["durable"] == offsets["flush"]
            assert offsets["enqueue"] is not None

    def test_durable_traces_resolve_at_watermark(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp_path, fsync="batch")
        )
        service = make_service(trace_sample_every=1, durability=manager)
        fill(service)
        service.pump()  # drain + resolve against the durable watermark
        traces = service.telemetry.traces
        assert len(traces) == 6
        for record in traces.records():
            assert record["lsn"] is not None
            assert record["stage_offsets_s"]["durable"] is not None
        service.close()
        manager.close()

    def test_sampling_disabled_by_default(self):
        service = make_service()
        fill(service)
        assert len(service.telemetry.traces) == 0

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ValueError):
            make_service(trace_sample_every=-1)
