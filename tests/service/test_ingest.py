"""Ingestion-service tests: validation, admission, backpressure, reads."""

import numpy as np
import pytest

from repro.crowdsensing.messages import ClaimSubmission
from repro.privacy.ldp import LDPGuarantee
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.ledger import BudgetLedger


def make_service(**overrides) -> IngestService:
    defaults = dict(num_shards=2, max_batch=8, queue_capacity=16)
    defaults.update(overrides)
    ledger = defaults.pop("ledger", None)
    return IngestService(ServiceConfig(**defaults), ledger=ledger)


def sub(campaign="c1", user="u1", objects=("o0", "o1"), values=(1.0, 2.0)):
    return ClaimSubmission(
        campaign_id=campaign, user_id=user,
        object_ids=tuple(objects), values=tuple(values),
    )


class TestValidationAndAdmission:
    def test_unknown_campaign_rejected(self):
        service = make_service()
        result = service.submit(sub())
        assert not result.ok and result.reason == "unknown-campaign"
        assert service.stats.rejected_unknown_campaign == 2

    def test_unknown_object_rejected(self):
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=4)
        result = service.submit(sub(objects=("o0", "oX")))
        assert result.reason == "unknown-object"

    def test_non_finite_value_rejected(self):
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=4)
        result = service.submit(sub(values=(1.0, float("nan"))))
        assert result.reason == "invalid-value"
        assert service.stats.rejected_invalid_value == 2

    def test_huge_finite_values_accepted(self):
        # Finiteness is per-value: individually finite claims whose sum
        # overflows must not be rejected.
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=4)
        assert service.submit(sub(values=(1e308, 1e308))).ok

    def test_capacity_rejection_after_slots_exhausted(self):
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=2)
        assert service.submit(sub(user="u1")).ok
        assert service.submit(sub(user="u2")).ok
        assert service.submit(sub(user="u1")).ok  # known user: fine
        result = service.submit(sub(user="u3"))
        assert result.reason == "capacity"
        assert service.stats.rejected_capacity == 2

    def test_budget_denial(self):
        ledger = BudgetLedger(epsilon_cap=1.5)
        service = make_service(ledger=ledger)
        cost = LDPGuarantee(epsilon=1.0, delta=0.0)
        service.register_campaign("c1", ("o0", "o1"), max_users=4, cost=cost)
        assert service.submit(sub(user="u1")).ok
        result = service.submit(sub(user="u1"))
        assert result.reason == "budget"
        assert service.stats.rejected_budget == 2
        # Another user still has budget.
        assert service.submit(sub(user="u2")).ok

    def test_no_ledger_means_no_budget_control(self):
        service = make_service()  # no ledger
        cost = LDPGuarantee(epsilon=1.0, delta=0.0)
        service.register_campaign("c1", ("o0", "o1"), max_users=4, cost=cost)
        for _ in range(5):
            assert service.submit(sub(user="u1")).ok

    def test_duplicate_registration_rejected(self):
        service = make_service()
        service.register_campaign("c1", ("o0",), max_users=2)
        with pytest.raises(ValueError, match="already registered"):
            service.register_campaign("c1", ("o0",), max_users=2)


class TestBackpressure:
    def test_reject_policy_refuses_when_queue_full(self):
        service = make_service(num_shards=1, queue_capacity=2, overflow="reject")
        service.register_campaign("c1", ("o0", "o1"), max_users=8)
        assert service.submit(sub(user="u1")).ok
        assert service.submit(sub(user="u2")).ok
        result = service.submit(sub(user="u3"))
        assert not result.ok and result.reason == "overflow"
        assert service.stats.rejected_overflow == 2
        # Pumping drains the queue and restores headroom.
        service.pump()
        assert service.queue_depths() == [0]
        assert service.submit(sub(user="u3")).ok

    def test_overflow_rejection_spends_no_budget(self):
        ledger = BudgetLedger(epsilon_cap=10.0)
        service = make_service(
            num_shards=1, queue_capacity=1, overflow="reject", ledger=ledger
        )
        cost = LDPGuarantee(epsilon=1.0, delta=0.0)
        service.register_campaign("c1", ("o0", "o1"), max_users=8, cost=cost)
        assert service.submit(sub(user="u1")).ok
        result = service.submit(sub(user="u2"))
        assert result.reason == "overflow"
        # The refused submission must not have charged u2's budget.
        assert ledger.spent("u2").epsilon == 0.0
        assert ledger.spent("u1").epsilon == pytest.approx(1.0)
        # Bulk path: same guarantee.
        result = service.submit_columns(
            "c1", np.array([3]), np.array([0]), np.array([1.0])
        )
        assert result.reason == "overflow"
        assert ledger.admitted == 1 and ledger.denied == 0

    def test_drop_oldest_policy_sheds_head_of_queue(self):
        service = make_service(
            num_shards=1, queue_capacity=2, overflow="drop_oldest", max_batch=4
        )
        service.register_campaign("c1", ("o0",), max_users=8)
        for i in range(5):
            result = service.submit(sub(user=f"u{i}", objects=("o0",),
                                        values=(float(i),)))
            assert result.ok  # drop_oldest always accepts the newest
        service.flush()
        snap = service.snapshot("c1")
        # The three oldest items were shed; the two newest survived.
        assert snap.claims_ingested == 2
        assert service._shards[0].items_dropped == 3
        assert service._shards[0].claims_dropped == 3
        # Shed users never became contributors (quorum integrity).
        assert set(snap.weights_by_user) == {"u3", "u4"}


class TestBulkColumns:
    def test_round_trip_and_counts(self):
        service = make_service(num_shards=2, max_batch=16)
        service.register_campaign("c1", ("o0", "o1", "o2"), max_users=4)
        result = service.submit_columns(
            "c1",
            np.array([0, 1, 2, 0]),
            np.array([0, 1, 2, 2]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        assert result.ok and result.accepted == 4
        service.flush()
        snap = service.snapshot("c1")
        assert snap.claims_ingested == 4
        assert snap.num_contributors == 3
        assert snap.coverage == 1.0

    def test_multidimensional_columns_rejected_up_front(self):
        service = make_service()
        service.register_campaign("c1", ("o0", "o1"), max_users=2)
        with pytest.raises(ValueError, match="1-D"):
            service.submit_columns(
                "c1",
                np.array([[0, 1]]),
                np.array([[0, 1]]),
                np.array([[1.0, 2.0]]),
            )
        # The shard queue stays clean: later traffic pumps fine.
        assert service.submit_columns(
            "c1", np.array([0]), np.array([0]), np.array([1.0])
        ).ok
        assert service.snapshot("c1").claims_ingested == 1

    def test_out_of_range_slots_rejected_atomically(self):
        service = make_service()
        service.register_campaign("c1", ("o0",), max_users=2)
        result = service.submit_columns(
            "c1", np.array([0, 5]), np.array([0, 0]), np.array([1.0, 2.0])
        )
        assert result.reason == "capacity" and result.rejected == 2
        result = service.submit_columns(
            "c1", np.array([0, 1]), np.array([0, 3]), np.array([1.0, 2.0])
        )
        assert result.reason == "unknown-object"

    def test_bulk_budget_admission_is_atomic(self):
        ledger = BudgetLedger(epsilon_cap=1.0)
        service = make_service(ledger=ledger)
        cost = LDPGuarantee(epsilon=0.6, delta=0.0)
        service.register_campaign("c1", ("o0",), max_users=4, cost=cost)
        # Exhaust slot 1's user.
        assert service.submit_columns(
            "c1", np.array([1]), np.array([0]), np.array([1.0])
        ).ok
        # Mixed chunk: slot 0 has headroom, slot 1 does not.
        result = service.submit_columns(
            "c1", np.array([0, 1]), np.array([0, 0]), np.array([1.0, 2.0])
        )
        assert result.reason == "budget"
        # Atomicity: the fresh user was not charged by the failed chunk.
        state = service.campaign_state("c1")
        assert ledger.spent(state.user_table[0]).epsilon == 0.0

    def test_rejected_traffic_does_not_consume_user_slots(self):
        ledger = BudgetLedger(epsilon_cap=0.5)
        service = make_service(ledger=ledger)
        cost = LDPGuarantee(epsilon=1.0, delta=0.0)  # never admissible
        service.register_campaign("c1", ("o0", "o1"), max_users=2, cost=cost)
        for i in range(5):
            assert service.submit(sub(user=f"u{i}")).reason == "budget"
        # Budget-rejected users must not have filled the 2-slot table.
        assert len(service.campaign_state("c1").user_table) == 0

    def test_bulk_budget_charges_per_claim(self):
        """Merging submissions into one chunk must not under-charge:
        each bulk claim is an independent release."""
        ledger = BudgetLedger(epsilon_cap=1.0)
        service = make_service(ledger=ledger)
        cost = LDPGuarantee(epsilon=0.4, delta=0.0)
        service.register_campaign("c1", ("o0", "o1"), max_users=4, cost=cost)
        result = service.submit_columns(
            "c1",
            np.array([0, 0, 1]),
            np.array([0, 1, 0]),
            np.ones(3),
        )
        assert result.ok
        state = service.campaign_state("c1")
        assert ledger.spent(state.user_table[0]).epsilon == pytest.approx(0.8)
        assert ledger.spent(state.user_table[1]).epsilon == pytest.approx(0.4)
        # User 0 has 0.2 headroom left: one more claim (0.4) is denied.
        result = service.submit_columns(
            "c1", np.array([0]), np.array([0]), np.array([1.0])
        )
        assert result.reason == "budget"
        # A two-claim chunk for user 1 (0.8 composed on top of 0.4
        # spent) exceeds the cap; a single claim (0.4) still fits.
        assert service.submit_columns(
            "c1", np.array([1, 1]), np.array([0, 1]), np.ones(2)
        ).reason == "budget"
        assert service.submit_columns(
            "c1", np.array([1]), np.array([1]), np.array([1.0])
        ).ok


class TestSnapshots:
    def test_snapshot_is_read_only_and_fresh(self):
        service = make_service(num_shards=1, max_batch=4)
        service.register_campaign("c1", ("o0", "o1"), max_users=4)
        service.submit(sub(user="u1", values=(1.0, 3.0)))
        snap = service.snapshot("c1")  # forces flush
        assert snap.claims_ingested == 2
        assert snap.truth_for("o0") == pytest.approx(1.0)
        with pytest.raises(ValueError):
            snap.truths[0] = 99.0
        with pytest.raises(KeyError):
            snap.truth_for("missing")

    def test_snapshot_does_not_force_cosharded_refinement(self):
        service = make_service(num_shards=1, max_batch=64)
        service.register_campaign("a", ("o0",), max_users=4)
        service.register_campaign("b", ("o0",), max_users=4)
        service.submit(sub(campaign="a", objects=("o0",), values=(1.0,)))
        service.submit(sub(campaign="b", objects=("o0",), values=(2.0,)))
        service.snapshot("a")
        # b's claims were pumped into its batcher but not flushed/refined.
        assert service.campaign_state("b").batcher.pending == 1
        assert service.snapshot("b").truth_for("o0") == pytest.approx(2.0)

    def test_snapshot_unknown_campaign(self):
        service = make_service()
        with pytest.raises(KeyError):
            service.snapshot("nope")

    def test_snapshot_reads_are_counted(self):
        service = make_service()
        service.register_campaign("c1", ("o0",), max_users=4)
        service.submit(sub(user="u1", objects=("o0",), values=(1.0,)))
        assert service.stats.snapshot_reads == 0
        service.snapshot("c1")
        service.snapshot("c1")
        assert service.stats.snapshot_reads == 2
        assert service.stats.snapshot_read_seconds > 0.0
        as_dict = service.stats.as_dict()
        assert as_dict["snapshot_reads"] == 2
        # A failed read (unknown campaign) counts nothing.
        with pytest.raises(KeyError):
            service.snapshot("nope")
        assert service.stats.snapshot_reads == 2

    def test_truths_converge_to_ground_truth(self):
        rng = np.random.default_rng(7)
        service = make_service(num_shards=2, max_batch=64, queue_capacity=128)
        truths = np.array([2.0, 5.0, 8.0])
        service.register_campaign("c1", ("o0", "o1", "o2"), max_users=50)
        for u in range(50):
            values = truths + rng.normal(0.0, 0.3, size=3)
            service.submit(
                sub(user=f"u{u}", objects=("o0", "o1", "o2"),
                    values=tuple(float(v) for v in values))
            )
        snap = service.snapshot("c1")
        np.testing.assert_allclose(snap.truths, truths, atol=0.25)
        assert snap.num_contributors == 50


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(overflow="panic")
    with pytest.raises(ValueError):
        ServiceConfig(num_shards=0)
    with pytest.raises(ValueError):
        ServiceConfig(decay=0.0)
