"""Aggregation-backend tests: streaming/full parity and backend choice."""

import numpy as np
import pytest

from repro.service.aggregator import (
    FullRefitAggregator,
    StreamingAggregator,
    make_aggregator,
)
from repro.service.loadgen import LoadGenerator
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.registry import create_method
from repro.truthdiscovery.streaming import ClaimBatch


def dense_batch(rng, num_users, num_objects, truths):
    users = np.repeat(np.arange(num_users), num_objects)
    objects = np.tile(np.arange(num_objects), num_users)
    values = truths[objects] + rng.normal(0.0, 0.4, size=objects.size)
    return ClaimBatch(users=users, objects=objects, values=values)


class TestStreamingVsBatchAgreement:
    def test_dense_campaign_matches_full_crh_refit(self):
        """Streaming truths must match a from-scratch CRH fit (tolerance)."""
        rng = np.random.default_rng(11)
        num_users, num_objects = 40, 25
        truths = rng.uniform(0.0, 10.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streaming = StreamingAggregator(
            num_users, num_objects, decay=1.0, refine_sweeps=40
        )
        streaming.ingest(batch)

        claims = ClaimMatrix.from_columns(
            batch.users, batch.objects, batch.values,
            user_ids=tuple(range(num_users)),
            object_ids=tuple(range(num_objects)),
        )
        reference = CRH(distance="squared").fit(claims)

        rmse = float(np.sqrt(np.mean(
            (streaming.truths() - reference.truths) ** 2
        )))
        assert rmse <= 1e-3

    def test_incremental_batches_reach_same_fixed_point(self):
        rng = np.random.default_rng(23)
        num_users, num_objects = 30, 12
        truths = rng.uniform(0.0, 5.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streamed = StreamingAggregator(
            num_users, num_objects, decay=1.0, refine_sweeps=30,
            refine_every=10**9,
        )
        # Same claims, delivered in 6 interleaved micro-batches.
        for part in range(6):
            sl = slice(part, None, 6)
            streamed.ingest(ClaimBatch(
                users=batch.users[sl],
                objects=batch.objects[sl],
                values=batch.values[sl],
            ))
        full = FullRefitAggregator(
            num_users, num_objects, method="crh", distance="squared"
        )
        full.ingest(batch)
        np.testing.assert_allclose(
            streamed.truths(), full.truths(), atol=1e-3
        )


class TestStreamingMethodParity:
    """Streaming GTM/CATD must agree with their batch refits."""

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_dense_campaign_matches_batch_refit(self, method):
        rng = np.random.default_rng(17)
        num_users, num_objects = 40, 25
        truths = rng.uniform(0.0, 10.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streaming = StreamingAggregator(
            num_users, num_objects, method=method, decay=1.0,
            refine_sweeps=40,
        )
        streaming.ingest(batch)

        claims = ClaimMatrix.from_columns(
            batch.users, batch.objects, batch.values,
            user_ids=tuple(range(num_users)),
            object_ids=tuple(range(num_objects)),
        )
        reference = create_method(method).fit(claims)

        rmse = float(np.sqrt(np.mean(
            (streaming.truths() - reference.truths) ** 2
        )))
        assert rmse <= 1e-3
        np.testing.assert_allclose(
            streaming.weights(), reference.weights, atol=1e-3
        )

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_incremental_batches_reach_same_fixed_point(self, method):
        rng = np.random.default_rng(29)
        num_users, num_objects = 30, 12
        truths = rng.uniform(0.0, 5.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streamed = StreamingAggregator(
            num_users, num_objects, method=method, decay=1.0,
            refine_sweeps=30, refine_every=10**9,
        )
        for part in range(6):
            sl = slice(part, None, 6)
            streamed.ingest(ClaimBatch(
                users=batch.users[sl],
                objects=batch.objects[sl],
                values=batch.values[sl],
            ))
        whole = StreamingAggregator(
            num_users, num_objects, method=method, decay=1.0,
            refine_sweeps=30, refine_every=10**9,
        )
        whole.ingest(batch)
        np.testing.assert_allclose(
            streamed.truths(), whole.truths(), atol=1e-3
        )

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_state_dict_round_trip_bitwise(self, method):
        rng = np.random.default_rng(41)
        num_users, num_objects = 12, 7
        truths = rng.uniform(0.0, 5.0, size=num_objects)
        original = StreamingAggregator(
            num_users, num_objects, method=method, refine_every=30
        )
        batches = [
            dense_batch(rng, num_users, num_objects, truths)
            for _ in range(3)
        ]
        original.ingest(batches[0])
        original.ingest(batches[1])

        restored = StreamingAggregator(
            num_users, num_objects, method=method, refine_every=30
        )
        restored.load_state(original.state_dict())
        original.ingest(batches[2])
        restored.ingest(batches[2])
        assert original.truths().tobytes() == restored.truths().tobytes()
        assert original.weights().tobytes() == restored.weights().tobytes()

    def test_load_state_accepts_pre_issue4_crh_state(self):
        """Checkpoints written before the multi-method refactor have no
        "method" entry and keep the estimator snapshot under "crh";
        they must keep restoring bit-for-bit."""
        rng = np.random.default_rng(5)
        truths = rng.uniform(0.0, 5.0, size=6)
        original = StreamingAggregator(8, 6, refine_every=30)
        original.ingest(dense_batch(rng, 8, 6, truths))
        state = original.state_dict()
        legacy = dict(state)
        legacy.pop("method")
        legacy["crh"] = dict(legacy.pop("stream"))
        legacy["crh"].pop("kind")  # pre-refactor snapshots had no kind
        restored = StreamingAggregator(8, 6, refine_every=30)
        restored.load_state(legacy)
        assert restored.truths().tobytes() == original.truths().tobytes()

    def test_load_state_rejects_method_mismatch(self):
        gtm = StreamingAggregator(4, 3, method="gtm")
        catd = StreamingAggregator(4, 3, method="catd")
        with pytest.raises(ValueError, match="'gtm' stream"):
            catd.load_state(gtm.state_dict())

    def test_unknown_streaming_method_rejected(self):
        with pytest.raises(ValueError, match="no streaming estimator"):
            StreamingAggregator(4, 3, method="median")


class TestRefreshCounters:
    def test_streaming_counts_refinements(self):
        rng = np.random.default_rng(3)
        truths = rng.uniform(0.0, 5.0, size=6)
        agg = StreamingAggregator(8, 6, refine_every=10**9)
        agg.ingest(dense_batch(rng, 8, 6, truths))
        assert agg.refreshes == 0
        agg.truths()
        assert agg.refreshes == 1
        assert agg.refresh_seconds > 0.0
        # A clean read does no deferred work.
        agg.truths()
        assert agg.refreshes == 1

    def test_full_refit_counts_refits(self):
        rng = np.random.default_rng(3)
        truths = rng.uniform(0.0, 5.0, size=6)
        agg = FullRefitAggregator(8, 6)
        agg.ingest(dense_batch(rng, 8, 6, truths))
        agg.truths()
        agg.truths()
        assert agg.refreshes == 1
        agg.ingest(dense_batch(rng, 8, 6, truths))
        agg.truths()
        assert agg.refreshes == 2
        assert agg.refresh_seconds > 0.0


class TestDecaySchedule:
    def test_reads_do_not_change_forgetting(self):
        """Polling truths after every batch must not alter the decay
        schedule relative to an unpolled twin stream."""
        rng = np.random.default_rng(3)
        truths = rng.uniform(0.0, 5.0, size=6)
        batches = [dense_batch(rng, 8, 6, truths) for _ in range(4)]
        # High sweep count so both sides converge to the fixed point of
        # their retained statistics — which the fix makes identical.
        polled = StreamingAggregator(
            8, 6, decay=0.5, refine_sweeps=30, refine_every=10**6
        )
        quiet = StreamingAggregator(
            8, 6, decay=0.5, refine_sweeps=30, refine_every=10**6
        )
        for batch in batches:
            polled.ingest(batch)
            polled.truths()  # read-forced refresh
            quiet.ingest(batch)
        np.testing.assert_allclose(
            polled.truths(), quiet.truths(), atol=1e-6
        )

    def test_multi_window_refresh_compounds_decay(self):
        """A refresh spanning k refine windows applies decay**k, so old
        claims are not over-retained under chunky arrivals."""
        from repro.truthdiscovery.streaming import StreamingCRH

        def build():
            crh = StreamingCRH(2, 1, decay=0.5, refine_sweeps=5)
            crh.ingest(ClaimBatch(
                users=np.array([0]), objects=np.array([0]),
                values=np.array([8.0]),
            ))
            return crh

        new_batch = ClaimBatch(
            users=np.array([1]), objects=np.array([0]),
            values=np.array([0.0]),
        )
        one_step = build().ingest(new_batch, decay_steps=1)
        three_steps = build().ingest(new_batch, decay_steps=3)
        # More forgetting steps discount the old claim (8.0) harder, so
        # the truth lands closer to the fresh claim (0.0).
        assert three_steps[0] < one_step[0]
        # Zero steps folds without forgetting at all.
        no_step = build().ingest(new_batch, decay_steps=0)
        assert one_step[0] < no_step[0]


class TestFullRefitAggregator:
    def test_lazy_refit_and_partial_coverage(self):
        agg = FullRefitAggregator(num_users=5, num_objects=4)
        agg.ingest(ClaimBatch(
            users=np.array([0, 1]), objects=np.array([1, 1]),
            values=np.array([2.0, 4.0]),
        ))
        assert agg.claims_ingested == 2
        truths = agg.truths()
        assert truths[1] == pytest.approx(3.0, abs=1e-6)
        # Unseen objects report 0.0 and are flagged unseen.
        seen = agg.seen_objects()
        assert list(seen) == [False, True, False, False]
        assert truths[0] == 0.0
        # Silent users keep weight 1.
        weights = agg.weights()
        assert weights[4] == 1.0

    def test_duplicate_claims_keep_last(self):
        agg = FullRefitAggregator(num_users=2, num_objects=1)
        agg.ingest(ClaimBatch(
            users=np.array([0, 1, 0]), objects=np.array([0, 0, 0]),
            values=np.array([1.0, 5.0, 3.0]),
        ))
        truths = agg.truths()
        # User 0's later claim (3.0) replaced the earlier 1.0.
        assert 3.0 <= truths[0] <= 5.0


class TestMakeAggregator:
    def test_auto_small_campaign_full_refit(self):
        agg = make_aggregator(10, 10, kind="auto", full_refit_max_cells=128)
        assert isinstance(agg, FullRefitAggregator)

    def test_auto_large_campaign_streams(self):
        agg = make_aggregator(100, 100, kind="auto", full_refit_max_cells=128)
        assert isinstance(agg, StreamingAggregator)

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_streamable_methods_stream_at_scale(self, method):
        agg = make_aggregator(
            100, 100, kind="auto", method=method, full_refit_max_cells=128
        )
        assert isinstance(agg, StreamingAggregator)
        assert agg.method == method

    @pytest.mark.parametrize("method", ["gtm", "catd"])
    def test_streamable_methods_full_refit_when_small(self, method):
        agg = make_aggregator(
            10, 10, kind="auto", method=method, full_refit_max_cells=128
        )
        assert isinstance(agg, FullRefitAggregator)

    def test_unstreamable_method_forces_full_refit(self):
        agg = make_aggregator(
            100, 100, kind="auto", method="median", full_refit_max_cells=128
        )
        assert isinstance(agg, FullRefitAggregator)

    def test_batch_only_kwargs_keep_full_refit(self):
        """Fitting knobs the streaming estimators cannot honour
        (convergence, distance, ...) must keep an auto campaign on the
        full-refit backend instead of crashing — pre-ISSUE-4
        registrations with such kwargs stay valid."""
        agg = make_aggregator(
            100, 100, kind="auto", method="catd", convergence=None,
            full_refit_max_cells=128,
        )
        assert isinstance(agg, FullRefitAggregator)
        agg = make_aggregator(
            100, 100, kind="auto", method="crh", distance="squared",
            full_refit_max_cells=128,
        )
        assert isinstance(agg, FullRefitAggregator)
        # Model hyper-parameters shared with the batch method stream.
        agg = make_aggregator(
            100, 100, kind="auto", method="gtm", alpha=3.0,
            full_refit_max_cells=128,
        )
        assert isinstance(agg, StreamingAggregator)

    def test_batch_only_kwargs_rejected_when_streaming_forced(self):
        with pytest.raises(ValueError, match="batch-only fitting knobs"):
            make_aggregator(
                10, 10, kind="streaming", method="catd", convergence=None
            )

    def test_decay_forces_streaming_backend(self):
        # Forgetting cannot silently switch off for small campaigns.
        agg = make_aggregator(
            10, 10, kind="auto", decay=0.9, full_refit_max_cells=128
        )
        assert isinstance(agg, StreamingAggregator)
        with pytest.raises(ValueError, match="cannot forget"):
            make_aggregator(10, 10, kind="full", decay=0.9)

    def test_streaming_with_unstreamable_method_rejected(self):
        with pytest.raises(ValueError, match="no streaming estimator"):
            make_aggregator(10, 10, kind="streaming", method="median")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator kind"):
            make_aggregator(10, 10, kind="sideways")


class TestLoadGenerator:
    def test_deterministic_given_seed(self):
        a = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        b = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        np.testing.assert_array_equal(a.truths, b.truths)
        subs_a, subs_b = a.submissions(4), b.submissions(4)
        assert [s.values for s in subs_a] == [s.values for s in subs_b]

    def test_submission_shape_and_object_subset(self):
        gen = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        (sub,) = gen.submissions(1)
        assert len(sub.object_ids) == 3
        assert len(set(sub.object_ids)) == 3  # without replacement
        assert set(sub.object_ids) <= set(gen.object_ids)

    def test_column_chunks_total(self):
        gen = LoadGenerator(
            "c", num_users=4, num_objects=4, claims_per_submission=2,
            random_state=5,
        )
        chunks = list(gen.column_chunks(1000, chunk_size=300))
        assert [c.size for c in chunks] == [300, 300, 300, 100]

    def test_dense_round_covers_everything_once(self):
        gen = LoadGenerator(
            "c", num_users=3, num_objects=4, claims_per_submission=4,
            random_state=5,
        )
        subs = gen.dense_round()
        assert len(subs) == 3
        assert all(sub.object_ids == gen.object_ids for sub in subs)
        assert len({sub.user_id for sub in subs}) == 3
