"""Aggregation-backend tests: streaming/full parity and backend choice."""

import numpy as np
import pytest

from repro.service.aggregator import (
    FullRefitAggregator,
    StreamingAggregator,
    make_aggregator,
)
from repro.service.loadgen import LoadGenerator
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.streaming import ClaimBatch


def dense_batch(rng, num_users, num_objects, truths):
    users = np.repeat(np.arange(num_users), num_objects)
    objects = np.tile(np.arange(num_objects), num_users)
    values = truths[objects] + rng.normal(0.0, 0.4, size=objects.size)
    return ClaimBatch(users=users, objects=objects, values=values)


class TestStreamingVsBatchAgreement:
    def test_dense_campaign_matches_full_crh_refit(self):
        """Streaming truths must match a from-scratch CRH fit (tolerance)."""
        rng = np.random.default_rng(11)
        num_users, num_objects = 40, 25
        truths = rng.uniform(0.0, 10.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streaming = StreamingAggregator(
            num_users, num_objects, decay=1.0, refine_sweeps=40
        )
        streaming.ingest(batch)

        claims = ClaimMatrix.from_columns(
            batch.users, batch.objects, batch.values,
            user_ids=tuple(range(num_users)),
            object_ids=tuple(range(num_objects)),
        )
        reference = CRH(distance="squared").fit(claims)

        rmse = float(np.sqrt(np.mean(
            (streaming.truths() - reference.truths) ** 2
        )))
        assert rmse <= 1e-3

    def test_incremental_batches_reach_same_fixed_point(self):
        rng = np.random.default_rng(23)
        num_users, num_objects = 30, 12
        truths = rng.uniform(0.0, 5.0, size=num_objects)
        batch = dense_batch(rng, num_users, num_objects, truths)

        streamed = StreamingAggregator(
            num_users, num_objects, decay=1.0, refine_sweeps=30,
            refine_every=10**9,
        )
        # Same claims, delivered in 6 interleaved micro-batches.
        for part in range(6):
            sl = slice(part, None, 6)
            streamed.ingest(ClaimBatch(
                users=batch.users[sl],
                objects=batch.objects[sl],
                values=batch.values[sl],
            ))
        full = FullRefitAggregator(
            num_users, num_objects, method="crh", distance="squared"
        )
        full.ingest(batch)
        np.testing.assert_allclose(
            streamed.truths(), full.truths(), atol=1e-3
        )


class TestDecaySchedule:
    def test_reads_do_not_change_forgetting(self):
        """Polling truths after every batch must not alter the decay
        schedule relative to an unpolled twin stream."""
        rng = np.random.default_rng(3)
        truths = rng.uniform(0.0, 5.0, size=6)
        batches = [dense_batch(rng, 8, 6, truths) for _ in range(4)]
        # High sweep count so both sides converge to the fixed point of
        # their retained statistics — which the fix makes identical.
        polled = StreamingAggregator(
            8, 6, decay=0.5, refine_sweeps=30, refine_every=10**6
        )
        quiet = StreamingAggregator(
            8, 6, decay=0.5, refine_sweeps=30, refine_every=10**6
        )
        for batch in batches:
            polled.ingest(batch)
            polled.truths()  # read-forced refresh
            quiet.ingest(batch)
        np.testing.assert_allclose(
            polled.truths(), quiet.truths(), atol=1e-6
        )

    def test_multi_window_refresh_compounds_decay(self):
        """A refresh spanning k refine windows applies decay**k, so old
        claims are not over-retained under chunky arrivals."""
        from repro.truthdiscovery.streaming import StreamingCRH

        def build():
            crh = StreamingCRH(2, 1, decay=0.5, refine_sweeps=5)
            crh.ingest(ClaimBatch(
                users=np.array([0]), objects=np.array([0]),
                values=np.array([8.0]),
            ))
            return crh

        new_batch = ClaimBatch(
            users=np.array([1]), objects=np.array([0]),
            values=np.array([0.0]),
        )
        one_step = build().ingest(new_batch, decay_steps=1)
        three_steps = build().ingest(new_batch, decay_steps=3)
        # More forgetting steps discount the old claim (8.0) harder, so
        # the truth lands closer to the fresh claim (0.0).
        assert three_steps[0] < one_step[0]
        # Zero steps folds without forgetting at all.
        no_step = build().ingest(new_batch, decay_steps=0)
        assert one_step[0] < no_step[0]


class TestFullRefitAggregator:
    def test_lazy_refit_and_partial_coverage(self):
        agg = FullRefitAggregator(num_users=5, num_objects=4)
        agg.ingest(ClaimBatch(
            users=np.array([0, 1]), objects=np.array([1, 1]),
            values=np.array([2.0, 4.0]),
        ))
        assert agg.claims_ingested == 2
        truths = agg.truths()
        assert truths[1] == pytest.approx(3.0, abs=1e-6)
        # Unseen objects report 0.0 and are flagged unseen.
        seen = agg.seen_objects()
        assert list(seen) == [False, True, False, False]
        assert truths[0] == 0.0
        # Silent users keep weight 1.
        weights = agg.weights()
        assert weights[4] == 1.0

    def test_duplicate_claims_keep_last(self):
        agg = FullRefitAggregator(num_users=2, num_objects=1)
        agg.ingest(ClaimBatch(
            users=np.array([0, 1, 0]), objects=np.array([0, 0, 0]),
            values=np.array([1.0, 5.0, 3.0]),
        ))
        truths = agg.truths()
        # User 0's later claim (3.0) replaced the earlier 1.0.
        assert 3.0 <= truths[0] <= 5.0


class TestMakeAggregator:
    def test_auto_small_campaign_full_refit(self):
        agg = make_aggregator(10, 10, kind="auto", full_refit_max_cells=128)
        assert isinstance(agg, FullRefitAggregator)

    def test_auto_large_campaign_streams(self):
        agg = make_aggregator(100, 100, kind="auto", full_refit_max_cells=128)
        assert isinstance(agg, StreamingAggregator)

    def test_non_crh_method_forces_full_refit(self):
        agg = make_aggregator(
            100, 100, kind="auto", method="gtm", full_refit_max_cells=128
        )
        assert isinstance(agg, FullRefitAggregator)

    def test_decay_forces_streaming_backend(self):
        # Forgetting cannot silently switch off for small campaigns.
        agg = make_aggregator(
            10, 10, kind="auto", decay=0.9, full_refit_max_cells=128
        )
        assert isinstance(agg, StreamingAggregator)
        with pytest.raises(ValueError, match="cannot forget"):
            make_aggregator(10, 10, kind="full", decay=0.9)

    def test_streaming_with_non_crh_method_rejected(self):
        with pytest.raises(ValueError, match="only supports 'crh'"):
            make_aggregator(10, 10, kind="streaming", method="gtm")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator kind"):
            make_aggregator(10, 10, kind="sideways")


class TestLoadGenerator:
    def test_deterministic_given_seed(self):
        a = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        b = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        np.testing.assert_array_equal(a.truths, b.truths)
        subs_a, subs_b = a.submissions(4), b.submissions(4)
        assert [s.values for s in subs_a] == [s.values for s in subs_b]

    def test_submission_shape_and_object_subset(self):
        gen = LoadGenerator(
            "c", num_users=10, num_objects=6, claims_per_submission=3,
            random_state=5,
        )
        (sub,) = gen.submissions(1)
        assert len(sub.object_ids) == 3
        assert len(set(sub.object_ids)) == 3  # without replacement
        assert set(sub.object_ids) <= set(gen.object_ids)

    def test_column_chunks_total(self):
        gen = LoadGenerator(
            "c", num_users=4, num_objects=4, claims_per_submission=2,
            random_state=5,
        )
        chunks = list(gen.column_chunks(1000, chunk_size=300))
        assert [c.size for c in chunks] == [300, 300, 300, 100]

    def test_dense_round_covers_everything_once(self):
        gen = LoadGenerator(
            "c", num_users=3, num_objects=4, claims_per_submission=4,
            random_state=5,
        )
        subs = gen.dense_round()
        assert len(subs) == 3
        assert all(sub.object_ids == gen.object_ids for sub in subs)
        assert len({sub.user_id for sub in subs}) == 3
