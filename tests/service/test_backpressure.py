"""Concurrent-producer backpressure tests.

The service is single-consumer (one pumping thread) but must tolerate
many producer threads: enqueue and the pump's queue takeover share a
per-shard lock.  These tests drive a full shard queue from several
threads under both overflow policies and assert that nothing deadlocks
and that every claim is accounted for exactly once — processed,
dropped, or rejected.
"""

import threading

import numpy as np
import pytest

from repro.service.ingest import IngestService, ServiceConfig
from repro.service.shard import Shard

CAMPAIGN = "bp-c0"
NUM_USERS = 16
NUM_OBJECTS = 8
CHUNK = 32


def make_service(overflow, queue_capacity=8):
    service = IngestService(
        ServiceConfig(
            num_shards=1,
            max_batch=CHUNK,
            queue_capacity=queue_capacity,
            overflow=overflow,
        )
    )
    service.register_campaign(
        CAMPAIGN,
        [f"obj{i}" for i in range(NUM_OBJECTS)],
        max_users=NUM_USERS,
        user_ids=[f"user{i}" for i in range(NUM_USERS)],
    )
    return service


def producer(service, chunks_per_thread, seed, accepted_claims):
    rng = np.random.default_rng(seed)
    accepted = 0
    for _ in range(chunks_per_thread):
        result = service.submit_columns(
            CAMPAIGN,
            rng.integers(0, NUM_USERS, size=CHUNK),
            rng.integers(0, NUM_OBJECTS, size=CHUNK),
            rng.normal(size=CHUNK),
        )
        accepted += result.accepted
    accepted_claims.append(accepted)


@pytest.mark.parametrize("overflow", ["drop_oldest", "reject"])
def test_concurrent_producers_never_deadlock_and_account_exactly(overflow):
    """Hammer one tiny shard queue from 8 threads while pumping.

    ``drop_oldest`` must never deadlock and its drop counters must
    explain every accepted-but-unprocessed claim; ``reject`` must
    refuse (not lose) the overflow.
    """
    service = make_service(overflow)
    shard = service._shards[0]
    accepted_claims: list[int] = []
    threads = [
        threading.Thread(
            target=producer,
            args=(service, 60, seed, accepted_claims),
        )
        for seed in range(8)
    ]
    stop = threading.Event()

    def pump_loop():
        while not stop.is_set():
            service.pump()

    pumper = threading.Thread(target=pump_loop)
    pumper.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "producer deadlocked"
    stop.set()
    pumper.join(timeout=60)
    assert not pumper.is_alive(), "pump loop deadlocked"
    service.pump()  # drain whatever the producers left behind

    accepted = sum(accepted_claims)
    processed = shard.claims_processed
    dropped = shard.claims_dropped
    assert shard.queue_depth == 0
    # Every accepted claim is either processed or (drop_oldest only)
    # shed by eviction — exactly once.
    assert accepted == processed + dropped
    if overflow == "reject":
        assert dropped == 0
        total_submitted = 8 * 60 * CHUNK
        assert accepted + service.stats.rejected_overflow >= accepted
        assert accepted <= total_submitted
    # The campaign's own accounting matches what was actually pumped.
    state = service.campaign_state(CAMPAIGN)
    assert state.claims_accepted == processed
    assert int(state.claims_by_slot.sum()) == processed


def test_drop_oldest_eviction_counts_are_exact_single_threaded():
    service = make_service("drop_oldest", queue_capacity=4)
    shard = service._shards[0]
    rng = np.random.default_rng(0)
    for _ in range(10):
        service.submit_columns(
            CAMPAIGN,
            rng.integers(0, NUM_USERS, size=CHUNK),
            rng.integers(0, NUM_OBJECTS, size=CHUNK),
            rng.normal(size=CHUNK),
        )
    # 10 accepted, capacity 4: six oldest items evicted, newest 4 kept.
    assert shard.items_dropped == 6
    assert shard.claims_dropped == 6 * CHUNK
    assert shard.queue_depth == 4
    service.pump()
    assert shard.claims_processed == 4 * CHUNK
    assert service.stats.claims_accepted == 10 * CHUNK


def test_enqueue_is_thread_safe_at_shard_level():
    """Direct shard hammering: total items in == queued + dropped."""
    shard = Shard(0, queue_capacity=16)
    items_per_thread = 500

    def worker(seed):
        values = np.ones(1)
        slots = np.zeros(1, dtype=np.int64)
        for _ in range(items_per_thread):
            assert shard.enqueue(
                (None, slots, slots, values), overflow="drop_oldest"
            )

    threads = [
        threading.Thread(target=worker, args=(s,)) for s in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    assert shard.queue_depth + shard.items_dropped == 6 * items_per_thread
    assert shard.queue_depth <= 16


def test_overflow_reject_never_spends_budget_concurrently():
    """A reservation, not a has_room peek, gates the budget charge: no
    producer may spend epsilon on a submission the queue then refuses."""
    from repro.privacy.ldp import LDPGuarantee
    from repro.service.ledger import BudgetLedger

    cost = LDPGuarantee(epsilon=0.001, delta=0.0)
    ledger = BudgetLedger(epsilon_cap=1e9)
    service = IngestService(
        ServiceConfig(
            num_shards=1,
            max_batch=CHUNK,
            queue_capacity=4,
            overflow="reject",
        ),
        ledger=ledger,
    )
    service.register_campaign(
        CAMPAIGN,
        [f"obj{i}" for i in range(NUM_OBJECTS)],
        max_users=NUM_USERS,
        user_ids=[f"user{i}" for i in range(NUM_USERS)],
        cost=cost,
    )
    accepted_claims: list[int] = []
    threads = [
        threading.Thread(
            target=producer, args=(service, 50, seed, accepted_claims)
        )
        for seed in range(8)
    ]
    stop = threading.Event()

    def pump_loop():
        while not stop.is_set():
            service.pump()

    pumper = threading.Thread(target=pump_loop)
    pumper.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    stop.set()
    pumper.join(timeout=60)
    service.pump()

    accepted = sum(accepted_claims)
    total_spent = sum(
        ledger.spent(f"user{i}").epsilon for i in range(NUM_USERS)
    )
    # Bulk admission charges cost * per-user claim count per chunk, so
    # total spent epsilon must equal accepted claims exactly — any
    # overflow-rejected chunk that charged anyway would show up here.
    assert total_spent == pytest.approx(accepted * cost.epsilon)


def test_concurrent_placeholder_slots_stay_unique():
    """Racing bulk submitters must not mint duplicate 'slot:N' ids."""
    service = IngestService(
        ServiceConfig(num_shards=1, max_batch=CHUNK, queue_capacity=10_000)
    )
    service.register_campaign(
        CAMPAIGN,
        [f"obj{i}" for i in range(NUM_OBJECTS)],
        max_users=256,
    )
    state = service.campaign_state(CAMPAIGN)

    def worker(seed):
        rng = np.random.default_rng(seed)
        for _ in range(50):
            slots = rng.integers(0, 256, size=CHUNK)
            service.submit_columns(
                CAMPAIGN,
                slots,
                rng.integers(0, NUM_OBJECTS, size=CHUNK),
                rng.normal(size=CHUNK),
            )

    threads = [
        threading.Thread(target=worker, args=(s,)) for s in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    assert len(state.user_table) == len(set(state.user_table))
    assert state.user_table == [
        f"slot:{i}" for i in range(len(state.user_table))
    ]
    assert len(state.user_index) == len(state.user_table)


def test_reservation_protocol_at_shard_level():
    shard = Shard(0, queue_capacity=2)
    assert shard.try_reserve() and shard.try_reserve()
    # Capacity is fully reserved: no third reservation, no unreserved
    # enqueue under reject.
    assert not shard.try_reserve()
    item = (None, np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64),
            np.ones(1))
    assert not shard.enqueue(item, overflow="reject")
    # Reserved enqueues always land.
    assert shard.enqueue(item, overflow="reject", reserved=True)
    assert shard.enqueue(item, overflow="reject", reserved=True)
    assert shard.queue_depth == 2
    assert not shard.has_room
    # A cancelled reservation re-opens its slot (here: reserve fails
    # while full, then succeeds again after the queue drains).
    shard2 = Shard(1, queue_capacity=1)
    assert shard2.try_reserve()
    assert not shard2.try_reserve()
    shard2.cancel_reservation()
    assert shard2.try_reserve()
