"""Micro-batcher and shard-routing tests."""

import numpy as np
import pytest

from repro.service.batcher import MicroBatcher
from repro.service.shard import shard_for


class TestMicroBatcher:
    def test_emits_full_batches_and_splits_overflow(self):
        batcher = MicroBatcher(max_batch=4)
        out = batcher.add(0, np.array([0, 1]), np.array([1.0, 2.0]))
        assert out == [] and batcher.pending == 2
        # 5 more claims: fills one batch of 4, leaves 3 pending.
        out = batcher.add_columns(
            np.array([1, 1, 1, 2, 2]),
            np.array([0, 1, 2, 0, 1]),
            np.array([3.0, 4.0, 5.0, 6.0, 7.0]),
        )
        assert len(out) == 1
        batch = out[0]
        assert batch.size == 4
        np.testing.assert_array_equal(batch.users, [0, 0, 1, 1])
        np.testing.assert_array_equal(batch.values, [1.0, 2.0, 3.0, 4.0])
        assert batcher.pending == 3

    def test_flush_emits_partial_and_empties(self):
        batcher = MicroBatcher(max_batch=8)
        batcher.add(3, np.array([0]), np.array([9.0]))
        tail = batcher.flush()
        assert tail.size == 1 and tail.users[0] == 3
        assert batcher.flush() is None
        assert batcher.batches_emitted == 1

    def test_emitted_batches_are_copies(self):
        batcher = MicroBatcher(max_batch=2)
        (batch,) = batcher.add_columns(
            np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0])
        )
        batcher.add_columns(
            np.array([5, 6]), np.array([0, 1]), np.array([8.0, 9.0])
        )
        # Refilling the buffer must not mutate the already-emitted batch.
        np.testing.assert_array_equal(batch.users, [0, 1])
        np.testing.assert_array_equal(batch.values, [1.0, 2.0])

    def test_large_chunk_spans_many_batches(self):
        batcher = MicroBatcher(max_batch=16)
        n = 100
        out = batcher.add_columns(
            np.zeros(n, dtype=np.int64),
            np.arange(n) % 4,
            np.linspace(0.0, 1.0, n),
        )
        assert len(out) == 6  # 96 claims in 6 full batches
        assert batcher.pending == 4
        assert batcher.claims_buffered == n


class TestShardRouting:
    def test_deterministic_across_calls(self):
        for cid in ("alpha", "beta", "campaign-42", "日本語"):
            assert shard_for(cid, 4) == shard_for(cid, 4)

    def test_stable_known_values(self):
        # CRC32-based routing must never change between versions: claims
        # would migrate between shards mid-campaign.  Pin known outputs.
        assert shard_for("alpha", 4) == zlib_route("alpha", 4)
        assert shard_for("beta", 7) == zlib_route("beta", 7)

    def test_range_and_spread(self):
        shards = [shard_for(f"c{i}", 8) for i in range(256)]
        assert all(0 <= s < 8 for s in shards)
        # Uniform-ish: every shard owns something at this scale.
        assert len(set(shards)) == 8

    def test_single_shard(self):
        assert shard_for("anything", 1) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_for("c", 0)


def zlib_route(cid: str, n: int) -> int:
    import zlib

    return zlib.crc32(cid.encode("utf-8")) % n


def test_duplicate_user_ids_rejected():
    """Two slots sharing one identity would break bulk budget charging."""
    import pytest as _pytest

    from repro.service.ingest import IngestService, ServiceConfig

    service = IngestService(ServiceConfig(num_shards=1))
    with _pytest.raises(ValueError, match="user_ids must be unique"):
        service.register_campaign(
            "dup-users", ("o0",), max_users=2, user_ids=("a", "a")
        )
