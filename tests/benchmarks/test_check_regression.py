"""Unit tests for the CI bench-regression gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location(
    "check_regression", _MODULE_PATH
)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def service_report(
    *,
    bulk=3_000_000.0,
    workers=1_600_000.0,
    submissions=450_000.0,
    rmse=1.4e-9,
    bitwise=True,
    method_rmse=3.2e-8,
    read_speedup=4.0,
    hosts=1_500_000.0,
    hosts_bitwise=True,
    failover_bitwise=True,
    recovery_seconds=1.2,
):
    return {
        "bulk": {"claims_per_sec": bulk},
        "bulk_workers": {"claims_per_sec": workers},
        "submissions": {"claims_per_sec": submissions},
        "streaming_vs_batch_rmse": rmse,
        "workers_truths_match_bitwise": bitwise,
        "bulk_hosts": {"claims_per_sec": hosts},
        "hosts_truths_match_bitwise": hosts_bitwise,
        "failover": {
            "restarts": 1,
            "recovery_seconds": recovery_seconds,
            "truths_match_bitwise": failover_bitwise,
            "claims_per_sec": hosts * 0.8,
        },
        "methods": {
            method: {
                "streaming_vs_batch_rmse": method_rmse,
                "read_speedup_final": read_speedup,
                "read_speedup_mean": read_speedup,
            }
            for method in ("crh", "gtm", "catd")
        },
    }


def durability_report(
    *,
    batch=2_500_000.0,
    bitwise=True,
    bytes_per=12.1,
    async_retention=0.7,
    always_speedup=2.3,
    async_bitwise=True,
    compaction_bitwise=True,
    shrunk=True,
):
    return {
        "unlogged": {"claims_per_sec": 6_000_000.0},
        "unlogged_always": {"claims_per_sec": 4_000_000.0},
        "logged": {
            "never": {
                "claims_per_sec": 4_000_000.0,
                "retention_vs_unlogged": 0.75,
            },
            "batch": {
                "claims_per_sec": batch,
                "bytes_per_claim": bytes_per,
                "retention_vs_unlogged": 0.6,
            },
            "always": {
                "claims_per_sec": 1_300_000.0,
                "retention_vs_unlogged": 0.3,
            },
        },
        "logged_async": {
            "never": {
                "claims_per_sec": 4_500_000.0,
                "retention_vs_unlogged": 0.8,
            },
            "batch": {
                "claims_per_sec": 4_200_000.0,
                "retention_vs_unlogged": async_retention,
            },
            "always": {
                "claims_per_sec": 3_000_000.0,
                "retention_vs_unlogged": 0.65,
                "speedup_vs_sync_always": always_speedup,
            },
        },
        "recovery": {
            "replay_only": {
                "claims_per_sec": 3_500_000.0,
                "truths_match_bitwise": bitwise,
            },
            "checkpointed": {
                "claims_per_sec": 0.0,
                "truths_match_bitwise": True,
            },
            "async_commit": {
                "claims_per_sec": 3_500_000.0,
                "truths_match_bitwise": async_bitwise,
            },
        },
        "compaction": {
            "shrunk": shrunk,
            "recovery": {"truths_match_bitwise": compaction_bitwise},
        },
    }


def chaos_report(
    *,
    detection=2.4,
    promotion=1.0,
    wall=4.6,
    auto_promoted=True,
    bitwise=True,
    budget=True,
):
    return {
        "kind": "chaos",
        "seeds": [101, 202],
        "watchdog": {
            "detection_seconds_max": detection,
            "promotion_seconds_max": promotion,
            "failover_wall_seconds_max": wall,
        },
        "invariants": {
            "auto_promoted": auto_promoted,
            "truths_match_bitwise": bitwise,
            "budget_spent_matches": budget,
        },
    }


def failures(results):
    return [c.metric.path for c in results if c.ok is False]


class TestCompare:
    def test_identical_reports_pass(self):
        results = check_regression.check_regression(
            service_report(), service_report(), kind="service"
        )
        assert not failures(results)

    def test_throughput_below_tolerance_fails(self):
        fresh = service_report(bulk=3_000_000.0 * 0.5)
        results = check_regression.check_regression(
            service_report(), fresh, kind="service", tolerance=0.4
        )
        assert failures(results) == ["bulk.claims_per_sec"]

    def test_throughput_within_tolerance_passes(self):
        fresh = service_report(bulk=3_000_000.0 * 0.7)
        results = check_regression.check_regression(
            service_report(), fresh, kind="service", tolerance=0.4
        )
        assert not failures(results)

    def test_rmse_noise_below_floor_passes(self):
        # 100x the (near-zero) baseline but far under the 1e-3 floor.
        fresh = service_report(rmse=1.4e-7)
        results = check_regression.check_regression(
            service_report(), fresh, kind="service"
        )
        assert not failures(results)

    def test_rmse_past_floor_fails(self):
        fresh = service_report(rmse=5e-3)
        results = check_regression.check_regression(
            service_report(), fresh, kind="service"
        )
        assert failures(results) == ["streaming_vs_batch_rmse"]

    def test_bitwise_flag_false_fails_regardless_of_tolerance(self):
        fresh = service_report(bitwise=False)
        results = check_regression.check_regression(
            service_report(), fresh, kind="service", tolerance=0.99
        )
        assert failures(results) == ["workers_truths_match_bitwise"]

    def test_method_rmse_past_floor_fails(self):
        results = check_regression.check_regression(
            service_report(),
            service_report(method_rmse=2e-3),
            kind="service",
        )
        assert "methods.gtm.streaming_vs_batch_rmse" in failures(results)

    def test_read_speedup_gates_on_absolute_floor_only(self):
        # Jitter relative to the baseline is fine as long as the
        # streaming read stays structurally cheaper than the refit...
        results = check_regression.check_regression(
            service_report(read_speedup=40.0),
            service_report(read_speedup=1.8),
            kind="service",
        )
        assert failures(results) == []
        # ...but a speedup collapsing toward 1x trips the floor.
        results = check_regression.check_regression(
            service_report(),
            service_report(read_speedup=1.05),
            kind="service",
        )
        assert "methods.crh.read_speedup_mean" in failures(results)

    def test_hosts_bitwise_flag_false_fails(self):
        results = check_regression.check_regression(
            service_report(),
            service_report(hosts_bitwise=False),
            kind="service",
            tolerance=0.99,
        )
        assert failures(results) == ["hosts_truths_match_bitwise"]

    def test_failover_bitwise_flag_false_fails(self):
        results = check_regression.check_regression(
            service_report(),
            service_report(failover_bitwise=False),
            kind="service",
            tolerance=0.99,
        )
        assert failures(results) == ["failover.truths_match_bitwise"]

    def test_failover_recovery_gates_on_absolute_ceiling(self):
        # Recovery time is seconds-scale and jittery: 20x the baseline
        # still passes while under the 30 s floor...
        results = check_regression.check_regression(
            service_report(recovery_seconds=1.2),
            service_report(recovery_seconds=24.0),
            kind="service",
        )
        assert not failures(results)
        # ...but a recovery a caller would notice trips it.
        results = check_regression.check_regression(
            service_report(),
            service_report(recovery_seconds=45.0),
            kind="service",
        )
        assert failures(results) == ["failover.recovery_seconds"]

    def test_legacy_service_report_without_fabric_skips(self):
        """Pre-fabric baselines lack the hosts sections: skip, not
        fail."""
        base = service_report()
        for key in ("bulk_hosts", "hosts_truths_match_bitwise", "failover"):
            del base[key]
        results = check_regression.check_regression(
            base, service_report(), kind="service"
        )
        skipped = [c.metric.path for c in results if c.ok is None]
        assert "bulk_hosts.claims_per_sec" in skipped
        assert "failover.recovery_seconds" in skipped
        assert not failures(results)

    def test_missing_sections_are_skipped(self):
        base = service_report()
        fresh = service_report()
        del base["bulk_workers"]
        results = check_regression.check_regression(
            base, fresh, kind="service"
        )
        skipped = [c.metric.path for c in results if c.ok is None]
        assert "bulk_workers.claims_per_sec" in skipped
        assert not failures(results)

    def test_zero_baseline_is_skipped_not_divided(self):
        results = check_regression.check_regression(
            durability_report(), durability_report(), kind="durability"
        )
        by_path = {c.metric.path: c for c in results}
        # recovery.checkpointed replays nothing in smoke runs.
        assert (
            by_path["recovery.checkpointed.truths_match_bitwise"].ok
            is True
        )

    def test_no_common_metric_is_an_error(self):
        with pytest.raises(ValueError):
            check_regression.check_regression(
                {"x": 1}, {"y": 2}, kind="service"
            )

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regression.check_regression(
                service_report(), service_report(), kind="service",
                tolerance=1.5,
            )

    def test_durability_bytes_per_claim_guard(self):
        fresh = durability_report(bytes_per=30.0)
        results = check_regression.check_regression(
            durability_report(), fresh, kind="durability"
        )
        assert failures(results) == ["logged.batch.bytes_per_claim"]

    def test_async_retention_floor(self):
        fresh = durability_report(async_retention=0.1)
        results = check_regression.check_regression(
            durability_report(), fresh, kind="durability", tolerance=0.9
        )
        assert failures(results) == [
            "logged_async.batch.retention_vs_unlogged"
        ]

    def test_always_speedup_floor(self):
        # Above the floor: jitter down from the baseline is fine.
        results = check_regression.check_regression(
            durability_report(always_speedup=3.0),
            durability_report(always_speedup=1.4),
            kind="durability",
        )
        assert not failures(results)
        # Collapsing to parity with per-frame sync trips it.
        results = check_regression.check_regression(
            durability_report(),
            durability_report(always_speedup=0.9),
            kind="durability",
        )
        assert failures(results) == [
            "logged_async.always.speedup_vs_sync_always"
        ]

    def test_async_and_compaction_bitwise_flags_are_hard(self):
        for kwargs, path in (
            (
                {"async_bitwise": False},
                "recovery.async_commit.truths_match_bitwise",
            ),
            (
                {"compaction_bitwise": False},
                "compaction.recovery.truths_match_bitwise",
            ),
            ({"shrunk": False}, "compaction.shrunk"),
        ):
            results = check_regression.check_regression(
                durability_report(),
                durability_report(**kwargs),
                kind="durability",
                tolerance=0.99,
            )
            assert failures(results) == [path]

    def test_legacy_report_without_async_sections_skips(self):
        """Pre-async baselines lack the new sections: skip, not fail."""
        legacy = {
            "unlogged": {"claims_per_sec": 6_000_000.0},
            "logged": {
                "batch": {
                    "claims_per_sec": 2_500_000.0,
                    "bytes_per_claim": 16.1,
                }
            },
            "recovery": {
                "replay_only": {"truths_match_bitwise": True}
            },
        }
        results = check_regression.check_regression(
            legacy, legacy, kind="durability"
        )
        assert not failures(results)


class TestChaosKind:
    def test_identical_reports_pass(self):
        report = chaos_report()
        results = check_regression.check_regression(
            report, chaos_report(), kind="chaos"
        )
        assert failures(results) == []

    def test_detection_gates_on_absolute_ceiling(self):
        # Healthy drills sit near 2.4s; the bound is
        # max(baseline*(1+tol), 10s floor), so jitter up to the floor
        # passes and a watchdog past its SLO fails.
        results = check_regression.check_regression(
            chaos_report(), chaos_report(detection=9.0), kind="chaos"
        )
        assert failures(results) == []
        results = check_regression.check_regression(
            chaos_report(), chaos_report(detection=11.0), kind="chaos"
        )
        assert failures(results) == ["watchdog.detection_seconds_max"]

    def test_promotion_ceiling(self):
        results = check_regression.check_regression(
            chaos_report(), chaos_report(promotion=16.0), kind="chaos"
        )
        assert failures(results) == ["watchdog.promotion_seconds_max"]

    def test_invariant_flags_are_hard(self):
        for kwargs, path in (
            ({"auto_promoted": False}, "invariants.auto_promoted"),
            ({"bitwise": False}, "invariants.truths_match_bitwise"),
            ({"budget": False}, "invariants.budget_spent_matches"),
        ):
            results = check_regression.check_regression(
                chaos_report(), chaos_report(**kwargs), kind="chaos"
            )
            assert failures(results) == [path]


class TestCli:
    def write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", service_report())
        fresh = self.write(tmp_path, "fresh.json", service_report())
        code = check_regression.main(
            ["--kind", "service", "--baseline", base, "--fresh", fresh]
        )
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_exit_nonzero_on_doctored_throughput(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", service_report())
        fresh = self.write(
            tmp_path, "fresh.json", service_report(bulk=100.0)
        )
        code = check_regression.main(
            ["--kind", "service", "--baseline", base, "--fresh", fresh]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out
        assert "regressed" in out.err

    def test_exit_two_on_unreadable_input(self, tmp_path):
        base = self.write(tmp_path, "base.json", service_report())
        code = check_regression.main(
            [
                "--kind", "service",
                "--baseline", base,
                "--fresh", str(tmp_path / "missing.json"),
            ]
        )
        assert code == 2

    def test_committed_smoke_baselines_self_compare(self):
        """The baselines CI diffs against must pass against themselves."""
        results_dir = _MODULE_PATH.parent.parent / "results"
        for kind, name in (
            ("service", "BENCH_service_smoke.json"),
            ("durability", "BENCH_durability_smoke.json"),
            ("chaos", "BENCH_chaos_smoke.json"),
        ):
            path = str(results_dir / name)
            assert check_regression.main(
                ["--kind", kind, "--baseline", path, "--fresh", path]
            ) == 0
