"""CATD — Confidence-Aware Truth Discovery (Li et al., VLDB 2015).

A third continuous-data truth discovery method, included to back the
paper's claim that the perturbation mechanism "can work with any truth
discovery method that can handle continuous data" (Section 3.1).

CATD addresses the long-tail phenomenon: most users contribute few
claims, so point estimates of their quality are unreliable.  Instead of
the plain inverse-distance weight, CATD uses the upper bound of a
(1 - alpha) confidence interval of the error-variance estimate:

    w_s = chi2.ppf(alpha/2, df=N_s) / sum_n d(x^s_n, x*_n)

where ``N_s`` is the number of claims by user ``s``.  Users with few
observations get shrunk toward lower weight because the chi-squared
quantile grows sub-linearly in the claim count.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy import stats

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import ConvergenceCriterion
from repro.truthdiscovery.distance import DistanceFn, get_distance
from repro.utils.validation import ensure_in_range, ensure_positive


class CATD(TruthDiscoveryMethod):
    """Confidence-aware truth discovery for continuous data.

    Parameters
    ----------
    significance:
        The ``alpha`` of the chi-squared confidence interval (default
        0.05, i.e. a 95% interval, the value used in the CATD paper).
    distance:
        Distance function; default plain squared distance, matching the
        CATD formulation (variance estimation, not normalised loss).
    distance_floor:
        Lower clip on per-user total distance (same role as in CRH).
    """

    name = "catd"

    def __init__(
        self,
        *,
        significance: float = 0.05,
        distance: Union[str, DistanceFn] = "squared",
        distance_floor: float = 1e-8,
        convergence: Optional[ConvergenceCriterion] = None,
    ) -> None:
        super().__init__(convergence=convergence)
        self._significance = ensure_in_range(
            significance, "significance", 0.0, 1.0,
            low_inclusive=False, high_inclusive=False,
        )
        self._distance = get_distance(distance)
        self._floor = ensure_positive(distance_floor, "distance_floor")

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        distances = np.maximum(self._distance(claims, truths), self._floor)
        counts = np.maximum(claims.observation_counts, 1)
        quantiles = stats.chi2.ppf(self._significance / 2.0, df=counts)
        # chi2.ppf can be 0 for tiny df at extreme significance; floor so
        # every participating user retains a positive weight.
        quantiles = np.maximum(quantiles, 1e-12)
        return quantiles / distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CATD(significance={self._significance})"
