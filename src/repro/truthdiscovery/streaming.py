"""Streaming truth discovery (extension subsystem).

Crowd sensing is continuous: claims arrive in batches as users move
through the world, and the server wants fresh aggregates without
refitting from scratch.  :class:`StreamingCRH` maintains CRH-style
truths and weights incrementally over arriving claim batches with
exponential forgetting:

* per-object weighted sums and weight totals are decayed by ``decay``
  per batch, so stale claims age out;
* per-user distance statistics are decayed the same way, and weights
  are re-derived with Eq. 3's -log-share rule after every batch;
* each batch triggers a small number of refinement sweeps (aggregate /
  re-weight) over the *retained statistics* rather than raw history, so
  memory is O(S + N), independent of stream length.

The perturbation mechanism is orthogonal: feed perturbed batches and the
stream stays locally private — demonstrated in
``examples/streaming_monitoring.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_int

_DISTANCE_FLOOR = 1e-8


@dataclass(frozen=True)
class ClaimBatch:
    """One arrival: ``(user_index, object_index, value)`` triples."""

    users: np.ndarray
    objects: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        users = np.asarray(self.users, dtype=np.int64)
        objects = np.asarray(self.objects, dtype=np.int64)
        values = np.asarray(self.values, dtype=float)
        if not (users.shape == objects.shape == values.shape):
            raise ValueError("users/objects/values must share a shape")
        if users.ndim != 1:
            raise ValueError("batch arrays must be 1-D")
        if users.size == 0:
            raise ValueError("batch must be non-empty")
        if not np.all(np.isfinite(values)):
            raise ValueError("batch values must be finite")
        object.__setattr__(self, "users", users)
        object.__setattr__(self, "objects", objects)
        object.__setattr__(self, "values", values)

    @property
    def size(self) -> int:
        return self.users.size

    @classmethod
    def from_records(cls, records: Iterable[tuple]) -> "ClaimBatch":
        rows = list(records)
        if not rows:
            raise ValueError("batch must be non-empty")
        users, objects, values = zip(*rows)
        return cls(
            users=np.array(users), objects=np.array(objects),
            values=np.array(values, dtype=float),
        )


class StreamingCRH:
    """Incremental CRH over claim batches with exponential forgetting.

    Parameters
    ----------
    num_users, num_objects:
        Fixed population/task-universe sizes (indices into them arrive
        in batches).
    decay:
        Multiplicative retention per batch in (0, 1]; 1.0 never forgets,
        0.9 halves a claim's influence every ~6.6 batches.
    refine_sweeps:
        Aggregate/re-weight sweeps applied after ingesting each batch.
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        decay: float = 0.95,
        refine_sweeps: int = 2,
    ) -> None:
        ensure_int(num_users, "num_users", minimum=1)
        ensure_int(num_objects, "num_objects", minimum=1)
        self._decay = ensure_in_range(
            decay, "decay", 0.0, 1.0, low_inclusive=False
        )
        self._sweeps = ensure_int(refine_sweeps, "refine_sweeps", minimum=1)
        self._num_users = num_users
        self._num_objects = num_objects
        # Retained sufficient statistics.
        self._value_sum = np.zeros((num_users, num_objects))
        self._value_weight = np.zeros((num_users, num_objects))
        self._weights = np.ones(num_users)
        self._truths = np.zeros(num_objects)
        self._seen_objects = np.zeros(num_objects, dtype=bool)
        self._batches = 0

    # ------------------------------------------------------------------
    @property
    def truths(self) -> np.ndarray:
        """Current aggregated results (zeros for never-seen objects)."""
        return self._truths.copy()

    @property
    def weights(self) -> np.ndarray:
        """Current user weights (mean 1 over active users)."""
        return self._weights.copy()

    @property
    def batches_ingested(self) -> int:
        return self._batches

    @property
    def seen_objects(self) -> np.ndarray:
        """Boolean mask of objects with at least one retained claim."""
        return self._seen_objects.copy()

    # ------------------------------------------------------------------
    def ingest(
        self, batch: ClaimBatch, *, decay_steps: int = 1
    ) -> np.ndarray:
        """Absorb one batch and return the refreshed truths.

        ``decay_steps`` is how many forgetting steps precede the fold:
        0 folds the claims in without forgetting (for callers whose
        batch boundaries are dictated by reads rather than the decay
        schedule), k > 1 applies ``decay**k`` (for callers that batch
        several decay windows' worth of claims into one ingest).
        """
        if decay_steps < 0:
            raise ValueError(f"decay_steps must be >= 0, got {decay_steps}")
        if batch.users.max() >= self._num_users or batch.users.min() < 0:
            raise ValueError("batch user index out of range")
        if batch.objects.max() >= self._num_objects or batch.objects.min() < 0:
            raise ValueError("batch object index out of range")
        # Forget, then fold the new claims into the retained cells.
        if decay_steps:
            factor = self._decay**decay_steps
            self._value_sum *= factor
            self._value_weight *= factor
        np.add.at(self._value_sum, (batch.users, batch.objects), batch.values)
        np.add.at(self._value_weight, (batch.users, batch.objects), 1.0)
        self._seen_objects |= np.bincount(
            batch.objects, minlength=self._num_objects
        ).astype(bool)
        self._batches += 1
        for _ in range(self._sweeps):
            self._aggregate()
            self._reweigh()
        return self.truths

    # ------------------------------------------------------------------
    def _cell_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained per-(user, object) mean claims and a presence mask."""
        present = self._value_weight > 1e-12
        means = np.where(
            present, self._value_sum / np.maximum(self._value_weight, 1e-12), 0.0
        )
        return means, present

    def _aggregate(self) -> None:
        means, present = self._cell_means()
        w = np.where(present, self._weights[:, None] * self._value_weight, 0.0)
        totals = w.sum(axis=0)
        sums = (w * means).sum(axis=0)
        updated = totals > 1e-12
        self._truths = np.where(updated, sums / np.maximum(totals, 1e-12),
                                self._truths)

    def _reweigh(self) -> None:
        means, present = self._cell_means()
        residual_sq = np.where(
            present, (means - self._truths[None, :]) ** 2 * self._value_weight, 0.0
        )
        distances = residual_sq.sum(axis=1)
        active = present.any(axis=1)
        if not active.any():
            return
        distances = np.maximum(distances, _DISTANCE_FLOOR)
        shares = distances[active] / distances[active].sum()
        shares = np.clip(shares, 1e-300, 1.0 - 1e-12)
        weights = np.ones(self._num_users)
        weights[active] = -np.log(shares)
        # Normalise over active users to mean 1 (inactive users keep 1).
        total = weights[active].sum()
        if total > 0:
            weights[active] *= active.sum() / total
        self._weights = weights

    # ------------------------------------------------------------------
    def snapshot(self, *, arrays: bool = False) -> dict:
        """Full serialisable stream state (the checkpoint format).

        By default the dict is JSON-friendly (nested lists of Python
        floats, which round-trip float64 exactly); ``arrays=True``
        keeps the bulk entries as ndarray copies instead — the right
        shape for binary checkpoint stores, which would otherwise pay
        an O(S x N) list round-trip per checkpoint.  Either form
        carries everything :meth:`restore` / :meth:`from_snapshot` need
        to resume the stream bit-for-bit: the retained sufficient
        statistics (``value_sum`` / ``value_weight``), the derived
        truths/weights, and the construction parameters.
        """
        convert = (
            (lambda a: a.copy()) if arrays else (lambda a: a.tolist())
        )
        return {
            "num_users": self._num_users,
            "num_objects": self._num_objects,
            "decay": self._decay,
            "refine_sweeps": self._sweeps,
            "batches": self._batches,
            "truths": convert(self._truths),
            "weights": convert(self._weights),
            "seen_objects": convert(self._seen_objects),
            "value_sum": convert(self._value_sum),
            "value_weight": convert(self._value_weight),
        }

    def restore(self, snapshot: dict) -> None:
        """Overwrite this stream's state from a :meth:`snapshot` dict.

        The snapshot must describe the same ``(num_users, num_objects)``
        universe; decay and sweep settings are taken from the snapshot
        so a restored stream forgets at the checkpointed rate.  Array
        entries may be lists (JSON round-trip) or ndarrays.
        """
        num_users = ensure_int(snapshot["num_users"], "num_users", minimum=1)
        num_objects = ensure_int(
            snapshot["num_objects"], "num_objects", minimum=1
        )
        if (num_users, num_objects) != (self._num_users, self._num_objects):
            raise ValueError(
                f"snapshot is for a ({num_users}, {num_objects}) universe; "
                f"this stream is ({self._num_users}, {self._num_objects})"
            )
        shape = (num_users, num_objects)
        value_sum = np.asarray(snapshot["value_sum"], dtype=float)
        value_weight = np.asarray(snapshot["value_weight"], dtype=float)
        truths = np.asarray(snapshot["truths"], dtype=float)
        weights = np.asarray(snapshot["weights"], dtype=float)
        seen = np.asarray(snapshot["seen_objects"], dtype=bool)
        if value_sum.shape != shape or value_weight.shape != shape:
            raise ValueError("snapshot cell statistics have the wrong shape")
        if (truths.shape != (num_objects,) or seen.shape != (num_objects,)
                or weights.shape != (num_users,)):
            raise ValueError("snapshot vectors have the wrong shape")
        self._decay = ensure_in_range(
            snapshot["decay"], "decay", 0.0, 1.0, low_inclusive=False
        )
        self._sweeps = ensure_int(
            snapshot["refine_sweeps"], "refine_sweeps", minimum=1
        )
        self._batches = ensure_int(snapshot["batches"], "batches", minimum=0)
        self._value_sum = value_sum.copy()
        self._value_weight = value_weight.copy()
        self._truths = truths.copy()
        self._weights = weights.copy()
        self._seen_objects = seen.copy()

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "StreamingCRH":
        """Rebuild a stream from a :meth:`snapshot` dict (checkpoint load)."""
        stream = cls(
            num_users=int(snapshot["num_users"]),
            num_objects=int(snapshot["num_objects"]),
            decay=float(snapshot["decay"]),
            refine_sweeps=int(snapshot["refine_sweeps"]),
        )
        stream.restore(snapshot)
        return stream
