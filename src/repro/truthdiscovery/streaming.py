"""Streaming truth discovery (extension subsystem).

Crowd sensing is continuous: claims arrive in batches as users move
through the world, and the server wants fresh aggregates without
refitting from scratch.  Every estimator here maintains *per-(user,
object) sufficient statistics* — small dense arrays that summarise the
whole stream — instead of raw claim history, so memory and per-read
cost are O(S x N), independent of stream length:

* :class:`StreamingCRH` — CRH-style truths and weights: per-cell
  weighted value sums and claim counts, Eq. 3's -log-share weights;
* :class:`StreamingGTM` — the Gaussian Truth Model's EM loop over
  per-cell (count, sum, sum-of-squares) moments: per-object
  standardisation, posterior-mean truth updates, inverse-gamma MAP
  variance updates, all recomputed from the retained moments;
* :class:`StreamingCATD` — confidence-aware weights: exact per-user
  squared residuals from the same moment statistics, chi-squared
  confidence-interval weights ``chi2.ppf(alpha/2, N_s) / distance``.

All three share the :class:`StreamingEstimator` skeleton: statistics
are decayed by ``decay`` per forgetting step (stale claims age out),
each ingested batch is folded with scatter-adds, and a small number of
refinement sweeps (aggregate / re-weight) runs over the retained
statistics.  ``snapshot()`` / ``restore()`` round-trip the complete
stream state bit-for-bit — the contract the durable checkpoint store
relies on.

Duplicate (user, object) claims count as repeated evidence (their
moments accumulate), which is what makes the statistics mergeable and
O(1) per claim; batch refits built on :class:`ClaimMatrix` instead keep
the last claim per cell.  On duplicate-free dense data the streaming
fixed points match their batch counterparts to iteration tolerance
(asserted by the service benchmark and ``tests/service``).

The perturbation mechanism is orthogonal: feed perturbed batches and the
stream stays locally private — demonstrated in
``examples/streaming_monitoring.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_int, ensure_positive

_DISTANCE_FLOOR = 1e-8
#: Below this, a decayed count/weight is treated as "no retained claim".
_PRESENCE_FLOOR = 1e-12


@dataclass(frozen=True)
class ClaimBatch:
    """One arrival: ``(user_index, object_index, value)`` triples."""

    users: np.ndarray
    objects: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        users = np.asarray(self.users, dtype=np.int64)
        objects = np.asarray(self.objects, dtype=np.int64)
        values = np.asarray(self.values, dtype=float)
        if not (users.shape == objects.shape == values.shape):
            raise ValueError("users/objects/values must share a shape")
        if users.ndim != 1:
            raise ValueError("batch arrays must be 1-D")
        if users.size == 0:
            raise ValueError("batch must be non-empty")
        if not np.all(np.isfinite(values)):
            raise ValueError("batch values must be finite")
        object.__setattr__(self, "users", users)
        object.__setattr__(self, "objects", objects)
        object.__setattr__(self, "values", values)

    @property
    def size(self) -> int:
        return self.users.size

    @classmethod
    def from_records(cls, records: Iterable[tuple]) -> "ClaimBatch":
        """Build from ``(user, object, value)`` triples.

        An ``(n, 3)`` ndarray takes a columnar fast path — sliced
        straight into columns, ~30x faster end-to-end than transposing
        an equivalent tuple list (micro-benched on 100k rows); the
        user/object columns survive a float table exactly (they are
        slot indices, far below 2**53).  Any other iterable goes
        through the per-tuple transpose, whose shape-error behaviour
        callers rely on for malformed rows.
        """
        if isinstance(records, np.ndarray):
            table = records
            if table.ndim != 2 or table.shape[1] != 3:
                raise ValueError(
                    f"record array must have shape (n, 3), got "
                    f"{table.shape}"
                )
            if table.shape[0] == 0:
                raise ValueError("batch must be non-empty")
            return cls(
                users=table[:, 0].astype(np.int64),
                objects=table[:, 1].astype(np.int64),
                values=table[:, 2].astype(float),
            )
        rows = list(records)
        if not rows:
            raise ValueError("batch must be non-empty")
        users, objects, values = zip(*rows)
        return cls(
            users=np.array(users), objects=np.array(objects),
            values=np.array(values, dtype=float),
        )


class StreamingEstimator(ABC):
    """Shared skeleton of the incremental sufficient-statistics estimators.

    Subclasses declare their per-(user, object) statistic arrays in
    ``_STAT_FIELDS`` (each backed by an ``_<name>`` attribute of shape
    ``(S, N)``), fold batches into them (:meth:`_fold`), and implement
    one refinement pass over the retained statistics (:meth:`_refine`).
    The base class owns ingest validation, the decay schedule, derived
    truths/weights storage, and the generic :meth:`snapshot` /
    :meth:`restore` round-trip (construction parameters beyond
    ``decay``/``refine_sweeps`` ride along via :meth:`_extra_params`).

    Parameters
    ----------
    num_users, num_objects:
        Fixed population/task-universe sizes (indices into them arrive
        in batches).
    decay:
        Multiplicative retention per forgetting step in (0, 1]; 1.0
        never forgets, 0.9 halves a claim's influence every ~6.6 steps.
    refine_sweeps:
        Aggregate/re-weight sweeps applied after ingesting each batch.
    """

    #: Snapshot discriminator; subclasses override ("crh", "gtm", ...).
    kind: str = "abstract"
    #: Names of the (S, N) statistic arrays (snapshot entries; each is
    #: stored on the instance as ``_<name>``).
    _STAT_FIELDS: tuple = ()

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        decay: float = 0.95,
        refine_sweeps: int = 2,
    ) -> None:
        ensure_int(num_users, "num_users", minimum=1)
        ensure_int(num_objects, "num_objects", minimum=1)
        self._decay = ensure_in_range(
            decay, "decay", 0.0, 1.0, low_inclusive=False
        )
        self._sweeps = ensure_int(refine_sweeps, "refine_sweeps", minimum=1)
        self._num_users = num_users
        self._num_objects = num_objects
        for field in self._STAT_FIELDS:
            setattr(self, f"_{field}", np.zeros((num_users, num_objects)))
        self._truths = np.zeros(num_objects)
        self._weights = np.ones(num_users)
        self._seen_objects = np.zeros(num_objects, dtype=bool)
        self._batches = 0

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @property
    def truths(self) -> np.ndarray:
        """Current aggregated results (zeros for never-seen objects)."""
        return self._truths.copy()

    @property
    def weights(self) -> np.ndarray:
        """Current user weights (mean 1 over active users)."""
        return self._weights.copy()

    @property
    def batches_ingested(self) -> int:
        return self._batches

    @property
    def seen_objects(self) -> np.ndarray:
        """Boolean mask of objects with at least one retained claim."""
        return self._seen_objects.copy()

    def _stat_arrays(self) -> dict[str, np.ndarray]:
        """The live statistic arrays by snapshot name."""
        return {f: getattr(self, f"_{f}") for f in self._STAT_FIELDS}

    # ------------------------------------------------------------------
    def ingest(
        self, batch: ClaimBatch, *, decay_steps: int = 1
    ) -> np.ndarray:
        """Absorb one batch and return the refreshed truths.

        ``decay_steps`` is how many forgetting steps precede the fold:
        0 folds the claims in without forgetting (for callers whose
        batch boundaries are dictated by reads rather than the decay
        schedule), k > 1 applies ``decay**k`` (for callers that batch
        several decay windows' worth of claims into one ingest).
        """
        if decay_steps < 0:
            raise ValueError(f"decay_steps must be >= 0, got {decay_steps}")
        if batch.users.max() >= self._num_users or batch.users.min() < 0:
            raise ValueError("batch user index out of range")
        if batch.objects.max() >= self._num_objects or batch.objects.min() < 0:
            raise ValueError("batch object index out of range")
        # Forget, then fold the new claims into the retained cells.
        if decay_steps:
            factor = self._decay**decay_steps
            for array in self._stat_arrays().values():
                array *= factor
        self._fold(batch)
        self._seen_objects |= np.bincount(
            batch.objects, minlength=self._num_objects
        ).astype(bool)
        self._batches += 1
        self._refine()
        return self.truths

    @abstractmethod
    def _fold(self, batch: ClaimBatch) -> None:
        """Scatter-add one batch into the statistic arrays."""

    @abstractmethod
    def _refine(self) -> None:
        """Run ``refine_sweeps`` aggregate/re-weight sweeps over the
        retained statistics, updating ``_truths`` and ``_weights``."""

    # ------------------------------------------------------------------
    def _extra_params(self) -> dict:
        """Subclass construction parameters carried in snapshots."""
        return {}

    def _restore_extra(self, snapshot: dict) -> None:
        """Restore :meth:`_extra_params` entries (validate as needed)."""

    def snapshot(self, *, arrays: bool = False) -> dict:
        """Full serialisable stream state (the checkpoint format).

        By default the dict is JSON-friendly (nested lists of Python
        floats, which round-trip float64 exactly); ``arrays=True``
        keeps the bulk entries as ndarray copies instead — the right
        shape for binary checkpoint stores, which would otherwise pay
        an O(S x N) list round-trip per checkpoint.  Either form
        carries everything :meth:`restore` / :meth:`from_snapshot` need
        to resume the stream bit-for-bit: the retained sufficient
        statistics, the derived truths/weights, and the construction
        parameters.
        """
        convert = (
            (lambda a: a.copy()) if arrays else (lambda a: a.tolist())
        )
        snap = {
            "kind": self.kind,
            "num_users": self._num_users,
            "num_objects": self._num_objects,
            "decay": self._decay,
            "refine_sweeps": self._sweeps,
            "batches": self._batches,
            "truths": convert(self._truths),
            "weights": convert(self._weights),
            "seen_objects": convert(self._seen_objects),
        }
        snap.update(self._extra_params())
        for name, array in self._stat_arrays().items():
            snap[name] = convert(array)
        return snap

    def restore(self, snapshot: dict) -> None:
        """Overwrite this stream's state from a :meth:`snapshot` dict.

        The snapshot must describe the same estimator kind and the same
        ``(num_users, num_objects)`` universe; decay, sweep, and model
        settings are taken from the snapshot so a restored stream
        behaves at the checkpointed configuration.  Array entries may
        be lists (JSON round-trip) or ndarrays.
        """
        snap_kind = snapshot.get("kind", self.kind)
        if snap_kind != self.kind:
            raise ValueError(
                f"snapshot is for a {snap_kind!r} stream; this is "
                f"{self.kind!r}"
            )
        num_users = ensure_int(snapshot["num_users"], "num_users", minimum=1)
        num_objects = ensure_int(
            snapshot["num_objects"], "num_objects", minimum=1
        )
        if (num_users, num_objects) != (self._num_users, self._num_objects):
            raise ValueError(
                f"snapshot is for a ({num_users}, {num_objects}) universe; "
                f"this stream is ({self._num_users}, {self._num_objects})"
            )
        shape = (num_users, num_objects)
        stats = {}
        for name in self._STAT_FIELDS:
            array = np.asarray(snapshot[name], dtype=float)
            if array.shape != shape:
                raise ValueError(
                    "snapshot cell statistics have the wrong shape"
                )
            stats[name] = array
        truths = np.asarray(snapshot["truths"], dtype=float)
        weights = np.asarray(snapshot["weights"], dtype=float)
        seen = np.asarray(snapshot["seen_objects"], dtype=bool)
        if (truths.shape != (num_objects,) or seen.shape != (num_objects,)
                or weights.shape != (num_users,)):
            raise ValueError("snapshot vectors have the wrong shape")
        decay = ensure_in_range(
            snapshot["decay"], "decay", 0.0, 1.0, low_inclusive=False
        )
        sweeps = ensure_int(
            snapshot["refine_sweeps"], "refine_sweeps", minimum=1
        )
        batches = ensure_int(snapshot["batches"], "batches", minimum=0)
        # Subclass hyper-parameters validate-then-assign atomically, and
        # run before any base mutation: a rejected snapshot must leave
        # the live estimator exactly as it was, never in a torn hybrid.
        self._restore_extra(snapshot)
        self._decay = decay
        self._sweeps = sweeps
        self._batches = batches
        for name, array in stats.items():
            setattr(self, f"_{name}", array.copy())
        self._truths = truths.copy()
        self._weights = weights.copy()
        self._seen_objects = seen.copy()

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "StreamingEstimator":
        """Rebuild a stream from a :meth:`snapshot` dict (checkpoint load)."""
        stream = cls(
            num_users=int(snapshot["num_users"]),
            num_objects=int(snapshot["num_objects"]),
            decay=float(snapshot["decay"]),
            refine_sweeps=int(snapshot["refine_sweeps"]),
        )
        stream.restore(snapshot)
        return stream

    # ------------------------------------------------------------------
    @staticmethod
    def _normalise_active(weights: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Mean-1 weights over ``active`` users; inactive users keep 1."""
        out = np.ones(weights.shape[0])
        if active.any():
            total = weights[active].sum()
            if total > 0:
                out[active] = weights[active] * (active.sum() / total)
        return out


class StreamingCRH(StreamingEstimator):
    """Incremental CRH over claim batches with exponential forgetting.

    Retained statistics: per-cell weighted value sums (``value_sum``)
    and claim counts (``value_weight``).  Each sweep re-derives truths
    as count-and-weight-weighted cell-mean averages and user weights
    with Eq. 3's -log-share rule over the retained squared residuals.
    """

    kind = "crh"
    _STAT_FIELDS = ("value_sum", "value_weight")

    def _fold(self, batch: ClaimBatch) -> None:
        np.add.at(self._value_sum, (batch.users, batch.objects), batch.values)
        np.add.at(self._value_weight, (batch.users, batch.objects), 1.0)

    def _refine(self) -> None:
        for _ in range(self._sweeps):
            self._aggregate()
            self._reweigh()

    # ------------------------------------------------------------------
    def _cell_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained per-(user, object) mean claims and a presence mask."""
        present = self._value_weight > _PRESENCE_FLOOR
        means = np.where(
            present,
            self._value_sum / np.maximum(self._value_weight, _PRESENCE_FLOOR),
            0.0,
        )
        return means, present

    def _aggregate(self) -> None:
        means, present = self._cell_means()
        w = np.where(present, self._weights[:, None] * self._value_weight, 0.0)
        totals = w.sum(axis=0)
        sums = (w * means).sum(axis=0)
        updated = totals > _PRESENCE_FLOOR
        self._truths = np.where(updated, sums / np.maximum(totals, _PRESENCE_FLOOR),
                                self._truths)

    def _reweigh(self) -> None:
        means, present = self._cell_means()
        residual_sq = np.where(
            present, (means - self._truths[None, :]) ** 2 * self._value_weight, 0.0
        )
        distances = residual_sq.sum(axis=1)
        active = present.any(axis=1)
        if not active.any():
            return
        distances = np.maximum(distances, _DISTANCE_FLOOR)
        shares = distances[active] / distances[active].sum()
        shares = np.clip(shares, 1e-300, 1.0 - 1e-12)
        weights = np.ones(self._num_users)
        weights[active] = -np.log(shares)
        # Normalise over active users to mean 1 (inactive users keep 1).
        self._weights = self._normalise_active(weights, active)


class _MomentStreamingEstimator(StreamingEstimator):
    """Base for estimators over per-cell (count, sum, sum-of-squares).

    The three moment arrays are the sufficient statistics of every
    squared-residual quantity the GTM and CATD updates need: for cell
    ``(s, n)`` with count ``c``, value sum ``v``, squared sum ``q`` and
    any reference point ``t``,

        sum over the cell's claims of ``(x - t)^2``
            = ``q - 2 t v + c t^2``

    exactly — so per-user distances and EM residuals are recovered from
    O(S x N) state without revisiting a single raw claim.
    """

    _STAT_FIELDS = ("counts", "sums", "sumsq")

    def _fold(self, batch: ClaimBatch) -> None:
        at = (batch.users, batch.objects)
        np.add.at(self._counts, at, 1.0)
        np.add.at(self._sums, at, batch.values)
        np.add.at(self._sumsq, at, batch.values**2)

    def _present(self) -> np.ndarray:
        return self._counts > _PRESENCE_FLOOR

    def _residual_sq(
        self, truths: np.ndarray, present: np.ndarray
    ) -> np.ndarray:
        """Per-cell sum of squared residuals against ``truths``.

        Clipped at 0: the three-moment expansion can go slightly
        negative under float cancellation when a cell's claims all
        equal the truth.
        """
        res = np.where(
            present,
            self._sumsq
            - 2.0 * truths[None, :] * self._sums
            + self._counts * truths[None, :] ** 2,
            0.0,
        )
        return np.maximum(res, 0.0)


class StreamingGTM(_MomentStreamingEstimator):
    """Incremental Gaussian Truth Model over moment statistics.

    Mirrors :class:`~repro.truthdiscovery.gtm.GTM` — per-object
    standardisation, posterior-mean truth updates, inverse-gamma MAP
    variance updates — but against retained per-cell moments instead of
    a claim matrix.  Each refinement recomputes the per-object z-score
    parameters from the retained column moments (the batch model
    computes them once per fit from the same evidence), then runs the
    EM sweeps in standardised space and maps the truths back.

    ``weights`` exposes precisions normalised to mean 1 over active
    users (the batch fit's reporting convention); the raw precisions —
    the EM state the posterior-mean shrinkage depends on — persist
    internally and in snapshots.

    Parameters
    ----------
    prior_mean, prior_variance, alpha, beta, variance_floor:
        As in :class:`~repro.truthdiscovery.gtm.GTM` (priors live in
        standardised claim space).
    """

    kind = "gtm"

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        decay: float = 0.95,
        refine_sweeps: int = 2,
        prior_mean: float = 0.0,
        prior_variance: float = 1.0,
        alpha: float = 2.0,
        beta: float = 0.5,
        variance_floor: float = 1e-8,
    ) -> None:
        super().__init__(
            num_users, num_objects, decay=decay, refine_sweeps=refine_sweeps
        )
        self._mu0 = float(prior_mean)
        self._sigma0_sq = ensure_positive(prior_variance, "prior_variance")
        self._alpha = ensure_positive(alpha, "alpha")
        self._beta = ensure_positive(beta, "beta")
        self._var_floor = ensure_positive(variance_floor, "variance_floor")

    @property
    def weights(self) -> np.ndarray:
        """User precisions, mean-1 normalised over active users."""
        return self._normalise_active(
            self._weights, self._counts.sum(axis=1) > _PRESENCE_FLOOR
        )

    def _extra_params(self) -> dict:
        return {
            "prior_mean": self._mu0,
            "prior_variance": self._sigma0_sq,
            "alpha": self._alpha,
            "beta": self._beta,
            "variance_floor": self._var_floor,
        }

    def _restore_extra(self, snapshot: dict) -> None:
        # Validate everything before assigning anything (see restore).
        mu0 = float(snapshot["prior_mean"])
        sigma0_sq = ensure_positive(
            snapshot["prior_variance"], "prior_variance"
        )
        alpha = ensure_positive(snapshot["alpha"], "alpha")
        beta = ensure_positive(snapshot["beta"], "beta")
        var_floor = ensure_positive(
            snapshot["variance_floor"], "variance_floor"
        )
        self._mu0 = mu0
        self._sigma0_sq = sigma0_sq
        self._alpha = alpha
        self._beta = beta
        self._var_floor = var_floor

    def _refine(self) -> None:
        present = self._present()
        active = present.any(axis=1)
        if not active.any():
            return
        # Per-object standardisation from the column moments, matching
        # ClaimMatrix.object_means / object_stds (population variance,
        # std floored at 1e-12) on duplicate-free data.
        col_counts = self._counts.sum(axis=0)
        seen = col_counts > _PRESENCE_FLOOR
        safe_counts = np.maximum(col_counts, _PRESENCE_FLOOR)
        m = np.where(seen, self._sums.sum(axis=0) / safe_counts, 0.0)
        var = np.maximum(
            self._sumsq.sum(axis=0) / safe_counts - m**2, 0.0
        )
        s = np.sqrt(np.maximum(var, 1e-24))
        # Standardised cell moments: z = (x - m_n) / s_n.  The squared
        # sum is the moment expansion around m, rescaled (clipping
        # before or after the positive division is equivalent).
        z_sum = np.where(
            present, (self._sums - self._counts * m[None, :]) / s[None, :], 0.0
        )
        z_sumsq = self._residual_sq(m, present) / s[None, :] ** 2
        claims_per_user = self._counts.sum(axis=1)
        precisions = self._weights
        mu = np.zeros(self._num_objects)
        for _ in range(self._sweeps):
            # Truth update: posterior mean of mu_n given precisions.
            num = self._mu0 / self._sigma0_sq + (
                np.where(present, precisions[:, None] * z_sum, 0.0).sum(axis=0)
            )
            den = 1.0 / self._sigma0_sq + (
                np.where(present, precisions[:, None] * self._counts, 0.0)
                .sum(axis=0)
            )
            mu = num / den
            # Quality update: MAP of the inverse-gamma posterior from
            # the exact standardised residuals.
            residual = np.where(
                present,
                z_sumsq
                - 2.0 * mu[None, :] * z_sum
                + self._counts * mu[None, :] ** 2,
                0.0,
            )
            residual = np.maximum(residual, 0.0).sum(axis=1)
            variances = (self._beta + 0.5 * residual) / (
                self._alpha + 1.0 + 0.5 * claims_per_user
            )
            variances = np.maximum(variances, self._var_floor)
            precisions = np.where(active, 1.0 / variances, 1.0)
        self._weights = precisions
        self._truths = np.where(seen, mu * s + m, self._truths)


class StreamingCATD(_MomentStreamingEstimator):
    """Incremental CATD (squared distance) over moment statistics.

    Mirrors :class:`~repro.truthdiscovery.catd.CATD` with its default
    squared distance: truths are Eq. 1 weighted averages (cell counts
    weighting repeated evidence), and user weights are the chi-squared
    confidence bound ``chi2.ppf(significance / 2, df=N_s) / distance``
    with the *exact* per-user squared distance recovered from the
    moments.  ``N_s`` is the user's retained claim count (fractional
    under decay; scipy's ``chi2.ppf`` accepts real df).

    ``weights`` exposes the mean-1 normalisation over active users;
    raw chi-squared weights persist internally (Eq. 1 is scale
    invariant, so this is presentation only).

    Parameters
    ----------
    significance, distance_floor:
        As in :class:`~repro.truthdiscovery.catd.CATD`.
    """

    kind = "catd"

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        decay: float = 0.95,
        refine_sweeps: int = 2,
        significance: float = 0.05,
        distance_floor: float = 1e-8,
    ) -> None:
        super().__init__(
            num_users, num_objects, decay=decay, refine_sweeps=refine_sweeps
        )
        self._significance = ensure_in_range(
            significance, "significance", 0.0, 1.0,
            low_inclusive=False, high_inclusive=False,
        )
        self._floor = ensure_positive(distance_floor, "distance_floor")

    @property
    def weights(self) -> np.ndarray:
        """Chi-squared confidence weights, mean-1 over active users."""
        return self._normalise_active(
            self._weights, self._counts.sum(axis=1) > _PRESENCE_FLOOR
        )

    def _extra_params(self) -> dict:
        return {
            "significance": self._significance,
            "distance_floor": self._floor,
        }

    def _restore_extra(self, snapshot: dict) -> None:
        # Validate everything before assigning anything (see restore).
        significance = ensure_in_range(
            snapshot["significance"], "significance", 0.0, 1.0,
            low_inclusive=False, high_inclusive=False,
        )
        floor = ensure_positive(
            snapshot["distance_floor"], "distance_floor"
        )
        self._significance = significance
        self._floor = floor

    def _refine(self) -> None:
        from scipy import stats

        present = self._present()
        active = present.any(axis=1)
        if not active.any():
            return
        claims_per_user = self._counts.sum(axis=1)
        # The df never changes within a refinement, so the (relatively
        # expensive) chi-squared quantile is computed once per refine,
        # not once per sweep.
        quantiles = stats.chi2.ppf(
            self._significance / 2.0, df=np.maximum(claims_per_user, 1.0)
        )
        quantiles = np.maximum(quantiles, 1e-12)
        weights = self._weights
        truths = self._truths
        for _ in range(self._sweeps):
            # Eq. 1 with cell counts as repeated evidence.
            w = np.where(present, weights[:, None] * self._counts, 0.0)
            totals = w.sum(axis=0)
            sums = np.where(present, weights[:, None] * self._sums, 0.0).sum(
                axis=0
            )
            updated = totals > _PRESENCE_FLOOR
            truths = np.where(
                updated, sums / np.maximum(totals, _PRESENCE_FLOOR), truths
            )
            # Confidence-aware weights from the exact squared distances.
            distances = self._residual_sq(truths, present).sum(axis=1)
            distances = np.maximum(distances, self._floor)
            weights = np.where(active, quantiles / distances, 1.0)
        self._weights = weights
        self._truths = truths


#: Streaming estimator per batch-method registry name.  Methods absent
#: here (baselines, ablation variants) have no streaming counterpart
#: and fall back to the full-refit backend in the service layer.
STREAMING_ESTIMATORS: dict[str, type] = {
    "crh": StreamingCRH,
    "gtm": StreamingGTM,
    "catd": StreamingCATD,
}
