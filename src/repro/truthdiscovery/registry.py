"""Method registry: construct truth discovery methods by name.

The experiment harness and CLI refer to methods by short names ("crh",
"gtm", ...). The registry maps names to factories so configuration files
stay declarative.
"""

from __future__ import annotations

from typing import Callable

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.baselines import (
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
)
from repro.truthdiscovery.catd import CATD
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.gtm import GTM, GTMWeightedAggregateOnly

MethodFactory = Callable[..., TruthDiscoveryMethod]

_FACTORIES: dict[str, MethodFactory] = {}


def register_method(name: str, factory: MethodFactory) -> None:
    """Register ``factory`` under ``name`` (error on duplicates)."""
    if name in _FACTORIES:
        raise ValueError(f"method {name!r} already registered")
    _FACTORIES[name] = factory


def create_method(name: str, **kwargs) -> TruthDiscoveryMethod:
    """Instantiate a registered method, forwarding ``kwargs``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown truth discovery method {name!r}; "
            f"available: {available_methods()}"
        ) from None
    return factory(**kwargs)


def available_methods() -> list[str]:
    """Sorted names of all registered methods."""
    return sorted(_FACTORIES)


for _name, _factory in {
    "crh": CRH,
    "gtm": GTM,
    "gtm-noshrink": GTMWeightedAggregateOnly,
    "catd": CATD,
    "mean": MeanAggregator,
    "median": MedianAggregator,
    "trimmed_mean": TrimmedMeanAggregator,
}.items():
    register_method(_name, _factory)
