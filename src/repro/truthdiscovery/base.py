"""The general truth discovery framework (paper Algorithm 1).

Every concrete method — CRH, GTM, CATD, and the naive baselines — plugs
into the same two-step fixed-point loop:

1. **Aggregation** (Eq. 1): with weights fixed, each truth is the
   weight-normalised average of the claims on that object.
2. **Weight estimation** (Eq. 2): with truths fixed, each user's weight is
   a monotonically decreasing function of the total distance between their
   claims and the truths.

Subclasses override :meth:`estimate_weights` (and, for non-linear models
such as GTM, :meth:`aggregate`).  The loop, convergence handling, masking,
and bookkeeping live here exactly once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import (
    ConvergenceCriterion,
    default_criterion,
)
from repro.utils.logging import get_logger

_LOGGER = get_logger("truthdiscovery")


@dataclass(frozen=True)
class TruthDiscoveryResult:
    """Outcome of one truth discovery run.

    Attributes
    ----------
    truths:
        ``(N,)`` aggregated results ``x*`` (Eq. 1 output at convergence).
    weights:
        ``(S,)`` final user weights ``w`` (normalised to sum to S so that
        weight 1.0 means "average user"; scale does not affect Eq. 1).
    iterations:
        Number of aggregation/weight rounds executed.
    converged:
        True when the convergence criterion fired before its safety cap.
    method:
        Name of the producing method (for reports).
    truth_history:
        Truth vector after every iteration; useful for convergence plots.
    """

    truths: np.ndarray
    weights: np.ndarray
    iterations: int
    converged: bool
    method: str
    truth_history: tuple = field(default=(), repr=False)

    def weight_of(self, user_index: int) -> float:
        """Weight of a single user by row index."""
        return float(self.weights[user_index])


def weighted_aggregate(claims: ClaimMatrix, weights: np.ndarray) -> np.ndarray:
    """Eq. 1: per-object weighted average of observed claims.

    ``x*_n = sum_s w_s x^s_n / sum_s w_s`` over the users who observed
    object ``n``.  Weights must be non-negative with at least one positive
    weight among the observers of every object.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (claims.num_users,):
        raise ValueError(
            f"weights must have shape ({claims.num_users},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    w_masked = np.where(claims.mask, weights[:, None], 0.0)
    denom = w_masked.sum(axis=0)
    if np.any(denom <= 0):
        # Total weight on an object collapsed to zero (all its observers got
        # zero weight).  Fall back to a plain mean for those objects rather
        # than dividing by zero: with no quality signal, uniform is the
        # least-wrong prior.
        bad = denom <= 0
        uniform = claims.object_means()
        w_masked = np.where(claims.mask, weights[:, None], 0.0)
        num = (w_masked * claims.values).sum(axis=0)
        out = np.where(bad, uniform, num / np.where(bad, 1.0, denom))
        return out
    return (w_masked * claims.values).sum(axis=0) / denom


class TruthDiscoveryMethod(ABC):
    """Abstract base: the Algorithm 1 loop with pluggable steps."""

    #: Human-readable method name; subclasses override.
    name: str = "abstract"

    def __init__(
        self, convergence: Optional[ConvergenceCriterion] = None
    ) -> None:
        self._convergence = convergence if convergence is not None else default_criterion()

    # -- steps ----------------------------------------------------------
    def initial_weights(self, claims: ClaimMatrix) -> np.ndarray:
        """Line 1 of Algorithm 1: uniform weights unless overridden."""
        return np.ones(claims.num_users)

    def aggregate(
        self, claims: ClaimMatrix, weights: np.ndarray
    ) -> np.ndarray:
        """Aggregation step (Eq. 1).  GTM overrides with its posterior mean."""
        return weighted_aggregate(claims, weights)

    @abstractmethod
    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        """Weight estimation step (Eq. 2); must return non-negative (S,)."""

    # -- loop -----------------------------------------------------------
    def fit(
        self, claims: ClaimMatrix, *, record_history: bool = False
    ) -> TruthDiscoveryResult:
        """Run the full iterative procedure on ``claims``.

        Parameters
        ----------
        claims:
            Input claim matrix (original or perturbed).
        record_history:
            When True, keep the truth vector after every iteration in
            ``result.truth_history`` (memory scales with iterations x N).
        """
        if not isinstance(claims, ClaimMatrix):
            claims = ClaimMatrix(np.asarray(claims, dtype=float))
        self._convergence.reset()
        weights = np.asarray(self.initial_weights(claims), dtype=float)
        history: list[np.ndarray] = []
        truths = self.aggregate(claims, weights)
        iterations = 0
        converged = False
        while True:
            iterations += 1
            weights = np.asarray(
                self.estimate_weights(claims, truths), dtype=float
            )
            self._validate_weights(weights, claims)
            truths = self.aggregate(claims, weights)
            if record_history:
                history.append(truths.copy())
            if self._convergence.update(truths, weights):
                converged = not self._convergence.exhausted
                break
        weights = self._normalise(weights)
        _LOGGER.debug(
            "%s finished after %d iterations (converged=%s)",
            self.name,
            iterations,
            converged,
        )
        return TruthDiscoveryResult(
            truths=truths,
            weights=weights,
            iterations=iterations,
            converged=converged,
            method=self.name,
            truth_history=tuple(history),
        )

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _validate_weights(weights: np.ndarray, claims: ClaimMatrix) -> None:
        if weights.shape != (claims.num_users,):
            raise ValueError(
                f"estimate_weights returned shape {weights.shape}, expected "
                f"({claims.num_users},)"
            )
        if not np.all(np.isfinite(weights)):
            raise ValueError("estimate_weights returned non-finite weights")
        if np.any(weights < 0):
            raise ValueError("estimate_weights returned negative weights")

    @staticmethod
    def _normalise(weights: np.ndarray) -> np.ndarray:
        total = weights.sum()
        if total <= 0:
            return np.ones_like(weights)
        return weights * (len(weights) / total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
