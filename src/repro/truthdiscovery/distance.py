"""Distance functions ``d(x, x*)`` for weight estimation (paper Eq. 2).

Truth discovery methods score each user by the aggregate distance between
their claims and the current truth estimates.  The paper leaves ``d``
abstract ("different truth discovery methods may adopt various functions
d(.)"); CRH on continuous data conventionally uses a per-object-normalised
squared distance.  All implementations are vectorised over the full claim
matrix and respect the observation mask.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix

DistanceFn = Callable[[ClaimMatrix, np.ndarray], np.ndarray]
"""Signature: ``(claims, truths) -> (S,) per-user total distance``."""

_REGISTRY: dict[str, DistanceFn] = {}


def register_distance(name: str) -> Callable[[DistanceFn], DistanceFn]:
    """Decorator registering a distance function under ``name``."""

    def deco(fn: DistanceFn) -> DistanceFn:
        if name in _REGISTRY:
            raise ValueError(f"distance {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def get_distance(name_or_fn) -> DistanceFn:
    """Resolve a distance by name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise KeyError(
            f"unknown distance {name_or_fn!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_distances() -> list[str]:
    """Names of registered distance functions."""
    return sorted(_REGISTRY)


def _residuals(claims: ClaimMatrix, truths: np.ndarray) -> np.ndarray:
    truths = np.asarray(truths, dtype=float)
    if truths.shape != (claims.num_objects,):
        raise ValueError(
            f"truths must have shape ({claims.num_objects},), got {truths.shape}"
        )
    return np.where(claims.mask, claims.values - truths[None, :], 0.0)


@register_distance("squared")
def squared_distance(claims: ClaimMatrix, truths: np.ndarray) -> np.ndarray:
    """Sum over objects of ``(x - x*)^2``."""
    res = _residuals(claims, truths)
    return (res**2).sum(axis=1)


@register_distance("absolute")
def absolute_distance(claims: ClaimMatrix, truths: np.ndarray) -> np.ndarray:
    """Sum over objects of ``|x - x*|`` (L1; robust to outliers)."""
    res = _residuals(claims, truths)
    return np.abs(res).sum(axis=1)


@register_distance("normalized_squared")
def normalized_squared_distance(
    claims: ClaimMatrix, truths: np.ndarray
) -> np.ndarray:
    """CRH's continuous-data distance: squared error / per-object std.

    Normalising by the standard deviation of claims on each object keeps
    objects with large natural spread from dominating the weight estimate
    (Li et al., SIGMOD'14, Section 4.2).
    """
    res = _residuals(claims, truths)
    stds = claims.object_stds()
    return ((res**2) / stds[None, :]).sum(axis=1)


@register_distance("normalized_absolute")
def normalized_absolute_distance(
    claims: ClaimMatrix, truths: np.ndarray
) -> np.ndarray:
    """L1 analogue of :func:`normalized_squared_distance`."""
    res = _residuals(claims, truths)
    stds = claims.object_stds()
    return (np.abs(res) / stds[None, :]).sum(axis=1)


@register_distance("huber")
def huber_distance(
    claims: ClaimMatrix, truths: np.ndarray, *, threshold: float = 1.5
) -> np.ndarray:
    """Huber loss: quadratic near the truth, linear in the tails.

    Robust middle ground between ``squared`` (noise-efficient, outlier
    sensitive) and ``absolute`` (outlier robust, noise inefficient) —
    useful when a few claims are wildly wrong (sensor glitches) but the
    bulk is Gaussian, which is exactly the perturbed-data regime.  The
    transition point is ``threshold`` per-object standard deviations.
    """
    res = _residuals(claims, truths)
    stds = claims.object_stds()
    z = np.abs(res) / stds[None, :]
    quadratic = 0.5 * z**2
    linear = threshold * (z - 0.5 * threshold)
    loss = np.where(z <= threshold, quadratic, linear)
    return np.where(claims.mask, loss, 0.0).sum(axis=1)


def mean_distance_per_claim(
    claims: ClaimMatrix,
    truths: np.ndarray,
    distance: DistanceFn = absolute_distance,
) -> np.ndarray:
    """Per-user distance divided by observation count.

    Fairer than the raw total when the matrix is sparse: users who
    answered more micro-tasks should not look worse merely for
    participating more.
    """
    totals = distance(claims, truths)
    counts = np.maximum(claims.observation_counts, 1)
    return totals / counts
