"""Naive aggregation baselines: mean, median, trimmed mean.

Sections 1 and 3 of the paper contrast truth discovery with "the naive
approach that regards all the users equally in aggregation" and with
"traditional aggregation methods, such as mean or median, which do not
consider user weights".  These baselines make that comparison runnable
(see ``benchmarks/bench_ablation_methods.py``).

They are implemented as degenerate :class:`TruthDiscoveryMethod`
subclasses — uniform weights, one iteration — so that every experiment can
treat them interchangeably with CRH/GTM/CATD.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import FixedIterationsCriterion
from repro.utils.validation import ensure_in_range


class MeanAggregator(TruthDiscoveryMethod):
    """Unweighted per-object mean (the canonical naive baseline)."""

    name = "mean"

    def __init__(self) -> None:
        super().__init__(convergence=FixedIterationsCriterion(iterations=1))

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        return np.ones(claims.num_users)


class MedianAggregator(TruthDiscoveryMethod):
    """Per-object median of observed claims (robust naive baseline)."""

    name = "median"

    def __init__(self) -> None:
        super().__init__(convergence=FixedIterationsCriterion(iterations=1))

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        return np.ones(claims.num_users)

    def aggregate(self, claims: ClaimMatrix, weights: np.ndarray) -> np.ndarray:
        out = np.empty(claims.num_objects)
        for n in range(claims.num_objects):
            out[n] = float(np.median(claims.claims_for_object(n)))
        return out


class TrimmedMeanAggregator(TruthDiscoveryMethod):
    """Per-object mean after trimming a fraction from each tail.

    ``trim=0.0`` reduces to the mean; ``trim`` approaching 0.5 approaches
    the median.  A standard robust-statistics midpoint between the two
    naive baselines.
    """

    name = "trimmed_mean"

    def __init__(self, trim: float = 0.1) -> None:
        super().__init__(convergence=FixedIterationsCriterion(iterations=1))
        self._trim = ensure_in_range(
            trim, "trim", 0.0, 0.5, high_inclusive=False
        )

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        return np.ones(claims.num_users)

    def aggregate(self, claims: ClaimMatrix, weights: np.ndarray) -> np.ndarray:
        out = np.empty(claims.num_objects)
        for n in range(claims.num_objects):
            vals = np.sort(claims.claims_for_object(n))
            k = int(len(vals) * self._trim)
            trimmed = vals[k : len(vals) - k] if len(vals) > 2 * k else vals
            out[n] = float(trimmed.mean())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrimmedMeanAggregator(trim={self._trim})"
