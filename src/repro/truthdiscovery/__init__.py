"""Truth discovery substrate: data model, framework, and methods.

Implements the paper's Algorithm 1 (the generic aggregation /
weight-estimation loop) and the concrete methods used or referenced in the
evaluation: CRH (Eq. 3), GTM, CATD, and the naive mean/median baselines.
"""

from repro.truthdiscovery.base import (
    TruthDiscoveryMethod,
    TruthDiscoveryResult,
    weighted_aggregate,
)
from repro.truthdiscovery.categorical import (
    AccuracyEM,
    CategoricalClaimMatrix,
    CategoricalResult,
    MajorityVoting,
    WeightedVoting,
    generate_categorical_dataset,
)
from repro.truthdiscovery.baselines import (
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
)
from repro.truthdiscovery.catd import CATD
from repro.truthdiscovery.claims import ClaimMatrix, stack_claims
from repro.truthdiscovery.convergence import (
    CombinedCriterion,
    ConvergenceCriterion,
    FixedIterationsCriterion,
    TruthChangeCriterion,
    WeightChangeCriterion,
    default_criterion,
)
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.distance import (
    available_distances,
    get_distance,
    register_distance,
)
from repro.truthdiscovery.gtm import GTM, GTMWeightedAggregateOnly
from repro.truthdiscovery.registry import (
    available_methods,
    create_method,
    register_method,
)
from repro.truthdiscovery.streaming import (
    STREAMING_ESTIMATORS,
    ClaimBatch,
    StreamingCATD,
    StreamingCRH,
    StreamingEstimator,
    StreamingGTM,
)
from repro.truthdiscovery.uncertainty import TruthIntervals, bootstrap_truths

__all__ = [
    "AccuracyEM",
    "CATD",
    "CRH",
    "CategoricalClaimMatrix",
    "CategoricalResult",
    "ClaimBatch",
    "MajorityVoting",
    "STREAMING_ESTIMATORS",
    "StreamingCATD",
    "StreamingCRH",
    "StreamingEstimator",
    "StreamingGTM",
    "WeightedVoting",
    "generate_categorical_dataset",
    "ClaimMatrix",
    "CombinedCriterion",
    "ConvergenceCriterion",
    "FixedIterationsCriterion",
    "GTM",
    "GTMWeightedAggregateOnly",
    "MeanAggregator",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "TruthChangeCriterion",
    "TruthDiscoveryMethod",
    "TruthDiscoveryResult",
    "TruthIntervals",
    "bootstrap_truths",
    "WeightChangeCriterion",
    "available_distances",
    "available_methods",
    "create_method",
    "default_criterion",
    "get_distance",
    "register_distance",
    "register_method",
    "stack_claims",
    "weighted_aggregate",
]
