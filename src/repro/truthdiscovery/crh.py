"""CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD'14).

The paper's primary truth discovery method (Eq. 3): user weights are the
negative log of each user's share of the total claim-to-truth distance,

    w_s = -log( sum_n d(x^s_n, x*_n) / sum_{s'} sum_n d(x^{s'}_n, x*_n) ).

A user whose claims account for a small fraction of the total distance
gets a large weight; the log keeps weights positive because every
individual share is < 1 (with at least two contributing users).

Implementation notes
--------------------
* ``distance`` defaults to CRH's per-object-normalised squared distance.
* Distances are floored at ``distance_floor`` before taking shares: a user
  who agrees *exactly* with the truths would otherwise have share 0 and
  weight infinity, which destabilises Eq. 1. The floor corresponds to
  CRH's common "epsilon-smoothing" implementation trick.
* Sparse matrices are supported: distance functions respect the mask, and
  shares can optionally be computed on per-claim means to avoid penalising
  prolific users (``per_claim=True``).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import ConvergenceCriterion
from repro.truthdiscovery.distance import DistanceFn, get_distance
from repro.utils.validation import ensure_positive


class CRH(TruthDiscoveryMethod):
    """CRH truth discovery for continuous data.

    Parameters
    ----------
    distance:
        Distance function name or callable; default
        ``"normalized_squared"`` (the CRH paper's continuous loss).
    distance_floor:
        Lower clip applied to each user's total distance before computing
        shares; prevents infinite weights for perfectly-agreeing users.
    per_claim:
        When True, normalise each user's distance by their observation
        count before computing shares (recommended for sparse data).
    convergence:
        Stopping rule; defaults to truth-change < 1e-6.
    """

    name = "crh"

    def __init__(
        self,
        distance: Union[str, DistanceFn] = "normalized_squared",
        *,
        distance_floor: float = 1e-8,
        per_claim: bool = False,
        convergence: Optional[ConvergenceCriterion] = None,
    ) -> None:
        super().__init__(convergence=convergence)
        self._distance = get_distance(distance)
        self._floor = ensure_positive(distance_floor, "distance_floor")
        self._per_claim = bool(per_claim)

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        distances = self._distance(claims, truths)
        if self._per_claim:
            distances = distances / np.maximum(claims.observation_counts, 1)
        distances = np.maximum(distances, self._floor)
        shares = distances / distances.sum()
        # Each share is <= 1; equality only in the degenerate single-user
        # case, where -log(1) = 0 would zero out the lone user.  Guard by
        # clipping shares strictly below 1.
        shares = np.clip(shares, 1e-300, 1.0 - 1e-12)
        return -np.log(shares)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CRH(distance={getattr(self._distance, '__name__', 'custom')}, "
            f"per_claim={self._per_claim})"
        )
