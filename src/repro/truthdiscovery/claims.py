"""Claim-matrix data model for continuous truth discovery.

A crowd sensing campaign produces, for ``S`` users and ``N`` objects
(micro-tasks), a matrix of continuous claims ``x[s, n]`` — the value the
s-th user reports for the n-th object (paper, Section 2).  Real campaigns
are sparse: not every user observes every object, so the matrix carries an
observation mask.

:class:`ClaimMatrix` is the single input type accepted by every truth
discovery method and perturbation mechanism in this library.  It is
immutable by convention — operations such as perturbation return new
instances — which keeps the "original data vs perturbed data" comparison
(the paper's utility metric) trivially safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.validation import ensure_2d, ensure_same_shape


@dataclass(frozen=True)
class ClaimMatrix:
    """Dense S x N matrix of continuous claims plus observation mask.

    Parameters
    ----------
    values:
        ``(S, N)`` float array. Entries where ``mask`` is False are ignored
        (their numeric content is irrelevant; by convention it is 0.0).
    mask:
        ``(S, N)`` boolean array; ``mask[s, n]`` is True iff user ``s``
        observed object ``n``. ``None`` means fully observed.
    user_ids / object_ids:
        Optional stable identifiers, defaulting to ``range``.
    """

    values: np.ndarray
    mask: Optional[np.ndarray] = None
    user_ids: tuple = field(default=())
    object_ids: tuple = field(default=())

    def __post_init__(self) -> None:
        values = ensure_2d(self.values, "values")
        object.__setattr__(self, "values", values)
        if self.mask is None:
            mask = np.ones(values.shape, dtype=bool)
        else:
            mask = np.asarray(self.mask, dtype=bool)
            ensure_same_shape(values, mask, "values/mask")
        object.__setattr__(self, "mask", mask)
        if not np.all(np.isfinite(values[mask])):
            raise ValueError("observed claim values must be finite")
        if not mask.any(axis=0).all():
            missing = np.flatnonzero(~mask.any(axis=0))
            raise ValueError(
                f"every object needs at least one observation; objects "
                f"{missing.tolist()} have none"
            )
        user_ids = self.user_ids or tuple(range(values.shape[0]))
        object_ids = self.object_ids or tuple(range(values.shape[1]))
        if len(user_ids) != values.shape[0]:
            raise ValueError(
                f"user_ids has {len(user_ids)} entries for {values.shape[0]} users"
            )
        if len(object_ids) != values.shape[1]:
            raise ValueError(
                f"object_ids has {len(object_ids)} entries for "
                f"{values.shape[1]} objects"
            )
        object.__setattr__(self, "user_ids", tuple(user_ids))
        object.__setattr__(self, "object_ids", tuple(object_ids))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Number of users ``S``."""
        return self.values.shape[0]

    @property
    def num_objects(self) -> int:
        """Number of objects (micro-tasks) ``N``."""
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    @property
    def is_complete(self) -> bool:
        """True when every user observed every object."""
        return bool(self.mask.all())

    @property
    def observation_counts(self) -> np.ndarray:
        """Per-user number of observed objects, shape ``(S,)``."""
        return self.mask.sum(axis=1)

    @property
    def density(self) -> float:
        """Fraction of observed (user, object) pairs."""
        return float(self.mask.mean())

    def observed_values(self) -> np.ndarray:
        """Flat array of all observed claims (mask applied)."""
        return self.values[self.mask]

    def claims_for_object(self, n: int) -> np.ndarray:
        """Observed claims for object ``n`` (variable length)."""
        return self.values[self.mask[:, n], n]

    def claims_for_user(self, s: int) -> np.ndarray:
        """Observed claims made by user ``s`` (variable length)."""
        return self.values[s, self.mask[s]]

    # ------------------------------------------------------------------
    # Construction / transformation
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[tuple],
        *,
        user_ids: Optional[Sequence] = None,
        object_ids: Optional[Sequence] = None,
    ) -> "ClaimMatrix":
        """Build from ``(user, object, value)`` triples.

        Unknown users/objects are discovered in first-seen order unless
        explicit id sequences are supplied. Duplicate (user, object) pairs
        keep the last value, matching typical log-replay semantics.
        """
        records = list(records)
        if not records:
            raise ValueError("records must be non-empty")
        if user_ids is None:
            seen_users: dict = {}
            for u, _o, _v in records:
                seen_users.setdefault(u, len(seen_users))
        else:
            seen_users = {u: i for i, u in enumerate(user_ids)}
        if object_ids is None:
            seen_objects: dict = {}
            for _u, o, _v in records:
                seen_objects.setdefault(o, len(seen_objects))
        else:
            seen_objects = {o: i for i, o in enumerate(object_ids)}
        values = np.zeros((len(seen_users), len(seen_objects)))
        mask = np.zeros(values.shape, dtype=bool)
        for u, o, v in records:
            if u not in seen_users:
                raise KeyError(f"unknown user id {u!r}")
            if o not in seen_objects:
                raise KeyError(f"unknown object id {o!r}")
            values[seen_users[u], seen_objects[o]] = float(v)
            mask[seen_users[u], seen_objects[o]] = True
        return cls(
            values=values,
            mask=mask,
            user_ids=tuple(seen_users),
            object_ids=tuple(seen_objects),
        )

    @classmethod
    def from_columns(
        cls,
        user_index: np.ndarray,
        object_index: np.ndarray,
        values: np.ndarray,
        *,
        user_ids: Sequence,
        object_ids: Sequence,
    ) -> "ClaimMatrix":
        """Build from aligned claim columns of integer indices.

        ``user_index[i]``/``object_index[i]`` locate claim ``i`` inside
        ``user_ids``/``object_ids``.  Duplicate (user, object) pairs keep
        the last value, matching :meth:`from_records`.  This is the
        vectorised constructor the ingestion service's columnar buffers
        feed; it performs two fancy-indexed assignments instead of a
        Python loop over claims.
        """
        user_ids = tuple(user_ids)
        object_ids = tuple(object_ids)
        u = np.asarray(user_index, dtype=np.int64)
        o = np.asarray(object_index, dtype=np.int64)
        v = np.asarray(values, dtype=float)
        if not (u.shape == o.shape == v.shape) or u.ndim != 1:
            raise ValueError("claim columns must be aligned 1-D arrays")
        if u.size == 0:
            raise ValueError("claim columns must be non-empty")
        if u.min() < 0 or u.max() >= len(user_ids):
            raise ValueError("user_index out of range for user_ids")
        if o.min() < 0 or o.max() >= len(object_ids):
            raise ValueError("object_index out of range for object_ids")
        matrix = np.zeros((len(user_ids), len(object_ids)))
        mask = np.zeros(matrix.shape, dtype=bool)
        matrix[u, o] = v
        mask[u, o] = True
        return cls(
            values=matrix, mask=mask, user_ids=user_ids, object_ids=object_ids
        )

    @classmethod
    def from_submissions(
        cls,
        submissions: Iterable,
        *,
        user_ids: Optional[Sequence] = None,
        object_ids: Optional[Sequence] = None,
    ) -> "ClaimMatrix":
        """Build from submission-shaped objects without a per-claim loop.

        Each submission must expose ``user_id``, ``object_ids`` and
        ``values`` (e.g. :class:`repro.crowdsensing.messages.ClaimSubmission`).
        Ids are discovered in first-seen order unless supplied; a later
        submission's claim on the same (user, object) wins, so feeding
        deduplicated-by-user submissions reproduces the aggregation
        server's keep-the-latest semantics.
        """
        subs = list(submissions)
        if not subs:
            raise ValueError("submissions must be non-empty")
        if user_ids is None:
            u_index: dict = {}
            for sub in subs:
                u_index.setdefault(sub.user_id, len(u_index))
        else:
            u_index = {u: i for i, u in enumerate(user_ids)}
        if object_ids is None:
            o_index: dict = {}
            for sub in subs:
                for o in sub.object_ids:
                    o_index.setdefault(o, len(o_index))
        else:
            o_index = {o: i for i, o in enumerate(object_ids)}
        counts = np.empty(len(subs), dtype=np.int64)
        for i, sub in enumerate(subs):
            if len(sub.object_ids) != len(sub.values):
                raise ValueError(
                    f"submission {i} has {len(sub.object_ids)} object ids "
                    f"for {len(sub.values)} values"
                )
            counts[i] = len(sub.values)
        total = int(counts.sum())
        try:
            users = np.repeat(
                np.fromiter(
                    (u_index[sub.user_id] for sub in subs),
                    dtype=np.int64,
                    count=len(subs),
                ),
                counts,
            )
            objects = np.fromiter(
                (o_index[o] for sub in subs for o in sub.object_ids),
                dtype=np.int64,
                count=total,
            )
        except KeyError as exc:
            raise KeyError(f"unknown user or object id {exc.args[0]!r}") from None
        values = np.fromiter(
            (v for sub in subs for v in sub.values), dtype=float, count=total
        )
        return cls.from_columns(
            users,
            objects,
            values,
            user_ids=tuple(u_index),
            object_ids=tuple(o_index),
        )

    def to_records(self) -> list[tuple]:
        """Inverse of :meth:`from_records` (observed entries only)."""
        out = []
        for s in range(self.num_users):
            for n in range(self.num_objects):
                if self.mask[s, n]:
                    out.append(
                        (self.user_ids[s], self.object_ids[n], float(self.values[s, n]))
                    )
        return out

    def with_values(self, values: np.ndarray) -> "ClaimMatrix":
        """Return a copy with ``values`` replaced (mask and ids kept)."""
        return ClaimMatrix(
            values=np.asarray(values, dtype=float),
            mask=self.mask.copy(),
            user_ids=self.user_ids,
            object_ids=self.object_ids,
        )

    def add(self, offsets: np.ndarray) -> "ClaimMatrix":
        """Return a copy with ``offsets`` added to observed entries.

        This is the primitive used by perturbation mechanisms (Eq. 4):
        ``xhat = x + xi``. Unobserved entries stay zeroed.
        """
        offsets = np.asarray(offsets, dtype=float)
        ensure_same_shape(self.values, offsets, "values/offsets")
        new_values = np.where(self.mask, self.values + offsets, 0.0)
        return self.with_values(new_values)

    def subset_users(self, indices: Sequence[int]) -> "ClaimMatrix":
        """Row subset (e.g. the first S' users for a user-count sweep)."""
        idx = np.asarray(indices, dtype=int)
        return ClaimMatrix(
            values=self.values[idx],
            mask=self.mask[idx],
            user_ids=tuple(self.user_ids[i] for i in idx),
            object_ids=self.object_ids,
        )

    def subset_objects(self, indices: Sequence[int]) -> "ClaimMatrix":
        """Column subset."""
        idx = np.asarray(indices, dtype=int)
        return ClaimMatrix(
            values=self.values[:, idx],
            mask=self.mask[:, idx],
            user_ids=self.user_ids,
            object_ids=tuple(self.object_ids[i] for i in idx),
        )

    # ------------------------------------------------------------------
    # Statistics used by methods
    # ------------------------------------------------------------------
    def object_means(self) -> np.ndarray:
        """Per-object mean of observed claims (the naive aggregate)."""
        counts = self.mask.sum(axis=0)
        sums = np.where(self.mask, self.values, 0.0).sum(axis=0)
        return sums / counts

    def object_stds(self, *, floor: float = 1e-12) -> np.ndarray:
        """Per-object standard deviation of observed claims.

        Used by CRH-style normalised distances so objects on different
        scales contribute comparably.  Floored to avoid division by zero
        on degenerate (constant) objects.
        """
        means = self.object_means()
        counts = self.mask.sum(axis=0)
        sq = np.where(self.mask, (self.values - means[None, :]) ** 2, 0.0)
        var = sq.sum(axis=0) / counts
        return np.sqrt(np.maximum(var, floor**2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClaimMatrix(users={self.num_users}, objects={self.num_objects}, "
            f"density={self.density:.2f})"
        )


def stack_claims(matrices: Sequence[ClaimMatrix]) -> ClaimMatrix:
    """Stack several claim matrices over users (same object set required)."""
    if not matrices:
        raise ValueError("need at least one matrix")
    first = matrices[0]
    for m in matrices[1:]:
        if m.object_ids != first.object_ids:
            raise ValueError("matrices must share the same object ids")
    values = np.vstack([m.values for m in matrices])
    mask = np.vstack([m.mask for m in matrices])
    user_ids = tuple(uid for m in matrices for uid in m.user_ids)
    if len(set(user_ids)) != len(user_ids):
        user_ids = tuple(range(len(user_ids)))
    return ClaimMatrix(
        values=values, mask=mask, user_ids=user_ids, object_ids=first.object_ids
    )
