"""Categorical truth discovery (extension subsystem).

The paper handles *continuous* data and cites Li et al., KDD 2018 [23]
as the categorical-data counterpart.  This module supplies that
counterpart so the library covers both claim types:

* :class:`CategoricalClaimMatrix` — S x N integer labels with an
  observation mask and a fixed category count;
* :class:`MajorityVoting` — the naive baseline (the categorical analogue
  of the mean);
* :class:`WeightedVoting` — CRH-style iterative weighted voting with
  0-1 loss and the same -log-share weight rule as Eq. 3;
* :class:`AccuracyEM` — a Dawid-Skene-style single-accuracy EM model
  (per-user correctness probability, soft label posteriors).

These integrate with :mod:`repro.privacy.randomized_response`, the
categorical perturbation mechanism, mirroring how the continuous
mechanism pairs with CRH/GTM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_int, ensure_positive

_WEIGHT_FLOOR = 1e-8


@dataclass(frozen=True)
class CategoricalClaimMatrix:
    """Dense S x N matrix of categorical labels plus observation mask.

    Labels are integers in ``[0, num_categories)``.  Entries where the
    mask is False are ignored (conventionally stored as 0).
    """

    labels: np.ndarray
    num_categories: int
    mask: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels)
        if labels.ndim != 2:
            raise ValueError(f"labels must be 2-D, got shape {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise ValueError("labels must be integers")
        ensure_int(self.num_categories, "num_categories", minimum=2)
        if self.mask is None:
            mask = np.ones(labels.shape, dtype=bool)
        else:
            mask = np.asarray(self.mask, dtype=bool)
            if mask.shape != labels.shape:
                raise ValueError(
                    f"mask shape {mask.shape} != labels shape {labels.shape}"
                )
        observed = labels[mask]
        if observed.size and (
            observed.min() < 0 or observed.max() >= self.num_categories
        ):
            raise ValueError(
                f"labels must lie in [0, {self.num_categories}), got range "
                f"[{observed.min()}, {observed.max()}]"
            )
        if not mask.any(axis=0).all():
            raise ValueError("every object needs at least one observation")
        object.__setattr__(self, "labels", labels.astype(np.int64))
        object.__setattr__(self, "mask", mask)

    @property
    def num_users(self) -> int:
        return self.labels.shape[0]

    @property
    def num_objects(self) -> int:
        return self.labels.shape[1]

    def vote_counts(self, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """``(N, K)`` (weighted) vote counts per object and category."""
        if weights is None:
            weights = np.ones(self.num_users)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.num_users,):
            raise ValueError(
                f"weights must have shape ({self.num_users},), got {weights.shape}"
            )
        counts = np.zeros((self.num_objects, self.num_categories))
        for s in range(self.num_users):
            observed = np.flatnonzero(self.mask[s])
            np.add.at(counts, (observed, self.labels[s, observed]), weights[s])
        return counts

    def with_labels(self, labels: np.ndarray) -> "CategoricalClaimMatrix":
        """Copy with replaced labels (mask and category count kept)."""
        return CategoricalClaimMatrix(
            labels=np.asarray(labels),
            num_categories=self.num_categories,
            mask=self.mask.copy(),
        )


@dataclass(frozen=True)
class CategoricalResult:
    """Outcome of a categorical truth discovery run."""

    truths: np.ndarray  # (N,) MAP labels
    posteriors: np.ndarray = field(repr=False)  # (N, K)
    weights: np.ndarray = field(repr=False)  # (S,)
    iterations: int = 1
    converged: bool = True
    method: str = ""


class MajorityVoting:
    """Unweighted plurality vote (ties broken toward the lower label)."""

    name = "majority"

    def fit(self, claims: CategoricalClaimMatrix) -> CategoricalResult:
        counts = claims.vote_counts()
        totals = counts.sum(axis=1, keepdims=True)
        posteriors = counts / np.maximum(totals, 1.0)
        return CategoricalResult(
            truths=counts.argmax(axis=1),
            posteriors=posteriors,
            weights=np.ones(claims.num_users),
            method=self.name,
        )


class WeightedVoting:
    """CRH-style categorical truth discovery.

    Iterates between weighted plurality voting (aggregation) and Eq. 3's
    -log-share weights with 0-1 loss (weight estimation): a user's loss
    is the fraction of their claims disagreeing with the current truths.
    """

    name = "weighted-voting"

    def __init__(self, *, max_iterations: int = 50) -> None:
        self._max_iterations = ensure_int(
            max_iterations, "max_iterations", minimum=1
        )

    def fit(self, claims: CategoricalClaimMatrix) -> CategoricalResult:
        weights = np.ones(claims.num_users)
        truths = claims.vote_counts(weights).argmax(axis=1)
        iterations = 0
        converged = False
        for iterations in range(1, self._max_iterations + 1):
            weights = self._estimate_weights(claims, truths)
            counts = claims.vote_counts(weights)
            new_truths = counts.argmax(axis=1)
            if np.array_equal(new_truths, truths):
                truths = new_truths
                converged = True
                break
            truths = new_truths
        counts = claims.vote_counts(weights)
        totals = counts.sum(axis=1, keepdims=True)
        return CategoricalResult(
            truths=truths,
            posteriors=counts / np.maximum(totals, 1e-12),
            weights=weights * (claims.num_users / max(weights.sum(), 1e-12)),
            iterations=iterations,
            converged=converged,
            method=self.name,
        )

    @staticmethod
    def _estimate_weights(
        claims: CategoricalClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        disagree = np.where(
            claims.mask, claims.labels != truths[None, :], False
        ).sum(axis=1)
        counts = np.maximum(claims.mask.sum(axis=1), 1)
        losses = np.maximum(disagree / counts, _WEIGHT_FLOOR)
        shares = np.clip(losses / losses.sum(), 1e-300, 1.0 - 1e-12)
        return -np.log(shares)


class AccuracyEM:
    """Single-accuracy Dawid-Skene EM.

    Model: user ``s`` reports the true label with probability ``p_s`` and
    a uniformly random wrong label otherwise.  EM alternates soft label
    posteriors (E-step) and accuracy updates (M-step).  ``weights`` in
    the result are log-odds of the accuracies against chance, clipped to
    be non-negative (a user at or below chance contributes nothing).
    """

    name = "accuracy-em"

    def __init__(
        self, *, max_iterations: int = 100, tolerance: float = 1e-6
    ) -> None:
        self._max_iterations = ensure_int(
            max_iterations, "max_iterations", minimum=1
        )
        self._tolerance = ensure_positive(tolerance, "tolerance")

    def fit(self, claims: CategoricalClaimMatrix) -> CategoricalResult:
        k = claims.num_categories
        accuracies = np.full(claims.num_users, 0.7)
        posteriors = self._e_step(claims, accuracies)
        iterations = 0
        converged = False
        for iterations in range(1, self._max_iterations + 1):
            accuracies = self._m_step(claims, posteriors)
            new_posteriors = self._e_step(claims, accuracies)
            change = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if change < self._tolerance:
                converged = True
                break
        chance = 1.0 / k
        clipped = np.clip(accuracies, 1e-6, 1.0 - 1e-6)
        log_odds = np.log(clipped / (1 - clipped)) - np.log(
            chance / (1 - chance)
        )
        weights = np.maximum(log_odds, 0.0)
        if weights.sum() > 0:
            weights = weights * (claims.num_users / weights.sum())
        else:
            weights = np.ones(claims.num_users)
        return CategoricalResult(
            truths=posteriors.argmax(axis=1),
            posteriors=posteriors,
            weights=weights,
            iterations=iterations,
            converged=converged,
            method=self.name,
        )

    @staticmethod
    def _e_step(
        claims: CategoricalClaimMatrix, accuracies: np.ndarray
    ) -> np.ndarray:
        k = claims.num_categories
        log_post = np.zeros((claims.num_objects, k))
        acc = np.clip(accuracies, 1e-6, 1.0 - 1e-6)
        log_correct = np.log(acc)
        log_wrong = np.log((1.0 - acc) / (k - 1))
        for s in range(claims.num_users):
            observed = np.flatnonzero(claims.mask[s])
            labels = claims.labels[s, observed]
            log_post[observed] += log_wrong[s]
            log_post[observed, labels] += log_correct[s] - log_wrong[s]
        log_post -= log_post.max(axis=1, keepdims=True)
        post = np.exp(log_post)
        return post / post.sum(axis=1, keepdims=True)

    @staticmethod
    def _m_step(
        claims: CategoricalClaimMatrix, posteriors: np.ndarray
    ) -> np.ndarray:
        accuracies = np.empty(claims.num_users)
        for s in range(claims.num_users):
            observed = np.flatnonzero(claims.mask[s])
            if observed.size == 0:
                accuracies[s] = 0.5
                continue
            agreement = posteriors[observed, claims.labels[s, observed]].sum()
            # Laplace smoothing keeps accuracies off the 0/1 boundary.
            accuracies[s] = (agreement + 1.0) / (observed.size + 2.0)
        return accuracies


def generate_categorical_dataset(
    num_users: int,
    num_objects: int,
    num_categories: int,
    *,
    accuracy_low: float = 0.55,
    accuracy_high: float = 0.95,
    random_state=None,
) -> tuple[CategoricalClaimMatrix, np.ndarray, np.ndarray]:
    """Synthetic labelling campaign with heterogeneous user accuracies.

    Returns ``(claims, true_labels, accuracies)``; each user answers every
    object correctly with their own accuracy, uniformly wrong otherwise.
    """
    from repro.utils.rng import spawn_generators

    ensure_int(num_users, "num_users", minimum=1)
    ensure_int(num_objects, "num_objects", minimum=1)
    ensure_int(num_categories, "num_categories", minimum=2)
    rng_truth, rng_acc, rng_ans = spawn_generators(random_state, 3)
    truths = rng_truth.integers(0, num_categories, size=num_objects)
    accuracies = rng_acc.uniform(accuracy_low, accuracy_high, size=num_users)
    labels = np.empty((num_users, num_objects), dtype=np.int64)
    for s in range(num_users):
        correct = rng_ans.random(num_objects) < accuracies[s]
        wrong = (
            truths + rng_ans.integers(1, num_categories, size=num_objects)
        ) % num_categories
        labels[s] = np.where(correct, truths, wrong)
    return (
        CategoricalClaimMatrix(labels=labels, num_categories=num_categories),
        truths,
        accuracies,
    )
