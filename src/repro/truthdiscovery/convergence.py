"""Convergence criteria for the iterative truth discovery loop.

The paper (Algorithm 1) allows "a threshold for the change of the
aggregated results in two consecutive iterations or a predefined iteration
number"; Section 5.3's efficiency study fixes the change threshold and
measures how iteration count (hence running time) reacts to noise.  We
implement both, plus a weight-change criterion, behind one interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_int, ensure_positive


class ConvergenceCriterion(ABC):
    """Decides when the aggregate/weight fixed-point iteration stops."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all state; called at the start of each ``fit``."""

    @abstractmethod
    def update(self, truths: np.ndarray, weights: np.ndarray) -> bool:
        """Record one iteration; return True when iteration should stop."""

    @property
    def exhausted(self) -> bool:
        """True when the last stop was a safety cap, not real convergence."""
        return False


@dataclass
class TruthChangeCriterion(ConvergenceCriterion):
    """Stop when mean absolute change of truths falls below ``tolerance``.

    This is the criterion the paper's efficiency experiment uses ("if the
    change in aggregated results is smaller than a threshold, the
    algorithm is terminated").  ``max_iterations`` is a safety valve so a
    non-contracting configuration cannot loop forever.
    """

    tolerance: float = 1e-6
    max_iterations: int = 200

    def __post_init__(self) -> None:
        ensure_positive(self.tolerance, "tolerance")
        ensure_int(self.max_iterations, "max_iterations", minimum=1)
        self._previous: np.ndarray | None = None
        self._iterations = 0

    def reset(self) -> None:
        self._previous = None
        self._iterations = 0
        self._exhausted = False

    def update(self, truths: np.ndarray, weights: np.ndarray) -> bool:
        self._iterations += 1
        if self._previous is None:
            self._previous = truths.copy()
            if self._iterations >= self.max_iterations:
                self._exhausted = True
                return True
            return False
        change = float(np.mean(np.abs(truths - self._previous)))
        self._previous = truths.copy()
        if change < self.tolerance:
            return True
        if self._iterations >= self.max_iterations:
            self._exhausted = True
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return getattr(self, "_exhausted", False)

    @property
    def iterations(self) -> int:
        return self._iterations


@dataclass
class FixedIterationsCriterion(ConvergenceCriterion):
    """Stop after exactly ``iterations`` rounds (paper's alternative)."""

    iterations: int = 10

    def __post_init__(self) -> None:
        ensure_int(self.iterations, "iterations", minimum=1)
        self._done = 0

    def reset(self) -> None:
        self._done = 0

    def update(self, truths: np.ndarray, weights: np.ndarray) -> bool:
        self._done += 1
        return self._done >= self.iterations


@dataclass
class WeightChangeCriterion(ConvergenceCriterion):
    """Stop when the weight vector stabilises (L-inf change < tolerance).

    Useful when the caller cares about user-quality estimates more than
    truths (e.g. the Fig. 7 weight-comparison experiment).
    """

    tolerance: float = 1e-8
    max_iterations: int = 200

    def __post_init__(self) -> None:
        ensure_positive(self.tolerance, "tolerance")
        ensure_int(self.max_iterations, "max_iterations", minimum=1)
        self._previous: np.ndarray | None = None
        self._iterations = 0

    def reset(self) -> None:
        self._previous = None
        self._iterations = 0
        self._exhausted = False

    def update(self, truths: np.ndarray, weights: np.ndarray) -> bool:
        self._iterations += 1
        if self._previous is None:
            self._previous = weights.copy()
            if self._iterations >= self.max_iterations:
                self._exhausted = True
                return True
            return False
        change = float(np.max(np.abs(weights - self._previous)))
        self._previous = weights.copy()
        if change < self.tolerance:
            return True
        if self._iterations >= self.max_iterations:
            self._exhausted = True
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return getattr(self, "_exhausted", False)


@dataclass
class CombinedCriterion(ConvergenceCriterion):
    """Stop when *any* of the wrapped criteria fires."""

    criteria: tuple[ConvergenceCriterion, ...] = ()

    def __post_init__(self) -> None:
        if not self.criteria:
            raise ValueError("CombinedCriterion needs at least one criterion")

    def reset(self) -> None:
        self._fired_exhausted = False
        for c in self.criteria:
            c.reset()

    def update(self, truths: np.ndarray, weights: np.ndarray) -> bool:
        # Evaluate all (not short-circuit) so each keeps consistent state.
        fired = [c.update(truths, weights) for c in self.criteria]
        if any(fired):
            # Converged if any firing criterion stopped for a real reason.
            self._fired_exhausted = all(
                c.exhausted for c, f in zip(self.criteria, fired) if f
            )
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return getattr(self, "_fired_exhausted", False)


def default_criterion() -> ConvergenceCriterion:
    """The library default: truth change < 1e-6, capped at 200 iterations."""
    return TruthChangeCriterion()
