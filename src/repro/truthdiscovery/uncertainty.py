"""Uncertainty quantification for aggregated results.

Servers acting on aggregates (publishing a floorplan, dispatching an
inspection) need to know how much to trust each value — especially under
privacy perturbation, where part of the spread is injected noise.  This
module provides a user-level bootstrap:

* resample *users* with replacement (claims within a user stay together,
  respecting the per-user error/noise structure the paper assumes),
* refit the truth discovery method on each resample,
* report percentile confidence intervals per object.

Works with any :class:`~repro.truthdiscovery.base.TruthDiscoveryMethod`,
original or perturbed claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_in_range, ensure_int


@dataclass(frozen=True)
class TruthIntervals:
    """Bootstrap summary for each object's aggregated value.

    Attributes
    ----------
    point:
        Truths from the fit on the full (non-resampled) matrix.
    lower, upper:
        Per-object percentile bounds at the requested confidence.
    samples:
        ``(B, N)`` bootstrap truth matrix (kept for custom statistics).
    confidence:
        The nominal two-sided confidence level.
    """

    point: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    samples: np.ndarray = field(repr=False)
    confidence: float = 0.95

    @property
    def width(self) -> np.ndarray:
        """Per-object interval widths."""
        return self.upper - self.lower

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask: which reference values fall inside the interval."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.point.shape:
            raise ValueError(
                f"values shape {values.shape} != truths shape {self.point.shape}"
            )
        return (values >= self.lower) & (values <= self.upper)

    def standard_errors(self) -> np.ndarray:
        """Bootstrap standard error per object."""
        return self.samples.std(axis=0, ddof=1)


def bootstrap_truths(
    method_factory: Callable[[], TruthDiscoveryMethod],
    claims: ClaimMatrix,
    *,
    num_resamples: int = 200,
    confidence: float = 0.95,
    random_state: RandomState = None,
) -> TruthIntervals:
    """User-level bootstrap confidence intervals for the truths.

    Parameters
    ----------
    method_factory:
        Zero-argument callable returning a *fresh* method per fit (method
        instances hold convergence state, so they cannot be shared).
    claims:
        Input matrix; may be original or perturbed.
    num_resamples:
        Bootstrap replicates ``B``.
    confidence:
        Two-sided confidence level in (0, 1).

    Notes
    -----
    Resamples that drop every observer of some object are rejected and
    redrawn (the object would have no evidence); with realistic
    coverage this is rare.
    """
    ensure_int(num_resamples, "num_resamples", minimum=10)
    ensure_in_range(
        confidence, "confidence", 0.0, 1.0,
        low_inclusive=False, high_inclusive=False,
    )
    rng = as_generator(random_state)
    point = method_factory().fit(claims).truths

    samples = np.empty((num_resamples, claims.num_objects))
    max_redraws = 50
    for b in range(num_resamples):
        for _attempt in range(max_redraws):
            idx = rng.integers(0, claims.num_users, size=claims.num_users)
            if claims.mask[idx].any(axis=0).all():
                break
        else:
            raise RuntimeError(
                "could not draw a bootstrap resample covering every object; "
                "the claim matrix is too sparse for a user-level bootstrap"
            )
        resampled = ClaimMatrix(
            values=claims.values[idx],
            mask=claims.mask[idx],
        )
        samples[b] = method_factory().fit(resampled).truths

    alpha = (1.0 - confidence) / 2.0
    lower = np.quantile(samples, alpha, axis=0)
    upper = np.quantile(samples, 1.0 - alpha, axis=0)
    return TruthIntervals(
        point=point,
        lower=lower,
        upper=upper,
        samples=samples,
        confidence=confidence,
    )
