"""GTM — Gaussian Truth Model (Zhao & Han, QDB'12).

The second method in the paper's experiments (Fig. 5).  GTM is a Bayesian
probabilistic model for real-valued truth finding:

* latent truth per object:      mu_n ~ N(mu0, sigma0^2)
* latent quality per user:      sigma_s^2 ~ Inv-Gamma(alpha, beta)
* observed claim:               x^s_n ~ N(mu_n, sigma_s^2)

Inference is coordinate-ascent MAP (an EM-style loop), which maps exactly
onto the Algorithm 1 skeleton:

* **truth update** (aggregation step) — posterior mean of ``mu_n``:
  a precision-weighted average of claims, shrunk toward the prior mean;
  user "weight" is the precision ``1 / sigma_s^2``.
* **quality update** (weight step) — MAP of the inverse-gamma posterior:
  ``sigma_s^2 = (beta + 0.5 * sum_n (x^s_n - mu_n)^2) / (alpha + 1 + N_s/2)``.

As in the original paper, claims are standardised per object before
inference (z-scores against the per-object mean/std) and truths are mapped
back to the data scale afterwards; this makes one global prior plausible
across objects of different magnitudes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.truthdiscovery.base import TruthDiscoveryMethod, weighted_aggregate
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.convergence import ConvergenceCriterion
from repro.utils.validation import ensure_positive


class GTM(TruthDiscoveryMethod):
    """Gaussian Truth Model with conjugate priors.

    Parameters
    ----------
    prior_mean, prior_variance:
        Truth prior ``N(mu0, sigma0^2)`` in *standardised* claim space.
        The defaults (0, 1) are uninformative after standardisation.
    alpha, beta:
        Inverse-gamma hyper-parameters of user error variance.  The
        defaults encode a weak prior with mode ``beta / (alpha + 1)``.
    variance_floor:
        Lower clip on inferred user variances; prevents a user who agrees
        exactly with the truths from acquiring infinite precision.
    """

    name = "gtm"

    def __init__(
        self,
        *,
        prior_mean: float = 0.0,
        prior_variance: float = 1.0,
        alpha: float = 2.0,
        beta: float = 0.5,
        variance_floor: float = 1e-8,
        convergence: Optional[ConvergenceCriterion] = None,
    ) -> None:
        super().__init__(convergence=convergence)
        self._mu0 = float(prior_mean)
        self._sigma0_sq = ensure_positive(prior_variance, "prior_variance")
        self._alpha = ensure_positive(alpha, "alpha")
        self._beta = ensure_positive(beta, "beta")
        self._var_floor = ensure_positive(variance_floor, "variance_floor")
        self._norm_mean: np.ndarray | None = None
        self._norm_std: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Standardisation plumbing.  ``fit`` sees the raw matrix; we lazily
    # compute per-object z-score parameters on first use each run.
    # ------------------------------------------------------------------
    def _standardise(self, claims: ClaimMatrix) -> ClaimMatrix:
        self._norm_mean = claims.object_means()
        self._norm_std = claims.object_stds()
        z = np.where(
            claims.mask,
            (claims.values - self._norm_mean[None, :]) / self._norm_std[None, :],
            0.0,
        )
        return claims.with_values(z)

    def _destandardise(self, z_truths: np.ndarray) -> np.ndarray:
        assert self._norm_mean is not None and self._norm_std is not None
        return z_truths * self._norm_std + self._norm_mean

    def fit(self, claims, *, record_history: bool = False):
        if not isinstance(claims, ClaimMatrix):
            claims = ClaimMatrix(np.asarray(claims, dtype=float))
        z_claims = self._standardise(claims)
        result = super().fit(z_claims, record_history=record_history)
        truths = self._destandardise(result.truths)
        history = tuple(self._destandardise(t) for t in result.truth_history)
        return type(result)(
            truths=truths,
            weights=result.weights,
            iterations=result.iterations,
            converged=result.converged,
            method=result.method,
            truth_history=history,
        )

    # ------------------------------------------------------------------
    # Model steps (operate in standardised space)
    # ------------------------------------------------------------------
    def aggregate(self, claims: ClaimMatrix, weights: np.ndarray) -> np.ndarray:
        """Posterior mean of each truth given user precisions ``weights``.

        mu_n = (mu0/sigma0^2 + sum_s w_s x^s_n) / (1/sigma0^2 + sum_s w_s)
        with the sums over users who observed object n.
        """
        w_masked = np.where(claims.mask, weights[:, None], 0.0)
        num = self._mu0 / self._sigma0_sq + (w_masked * claims.values).sum(axis=0)
        den = 1.0 / self._sigma0_sq + w_masked.sum(axis=0)
        return num / den

    def estimate_weights(
        self, claims: ClaimMatrix, truths: np.ndarray
    ) -> np.ndarray:
        residual_sq = np.where(
            claims.mask, (claims.values - truths[None, :]) ** 2, 0.0
        ).sum(axis=1)
        counts = claims.observation_counts
        variances = (self._beta + 0.5 * residual_sq) / (
            self._alpha + 1.0 + 0.5 * counts
        )
        variances = np.maximum(variances, self._var_floor)
        return 1.0 / variances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GTM(alpha={self._alpha}, beta={self._beta})"


class GTMWeightedAggregateOnly(GTM):
    """GTM variant using the plain Eq. 1 weighted average (no prior shrink).

    Exposed for ablations: isolates the effect of GTM's Bayesian shrinkage
    from its precision-based weighting.
    """

    name = "gtm-noshrink"

    def aggregate(self, claims: ClaimMatrix, weights: np.ndarray) -> np.ndarray:
        return weighted_aggregate(claims, weights)
