"""Terminal views over scraped metrics: ``repro metrics`` / ``repro top``.

Both commands are pure consumers of the ``/metrics.json`` endpoint
(:mod:`repro.obs.exposition`):

* :func:`format_metrics` — one-shot pretty-print of every series, with
  p50/p90/p99 for histograms (``repro metrics URL``);
* :func:`run_top` — a live dashboard refreshed in place: throughput
  (from counter deltas between scrapes), per-shard queue depths,
  durable lag, stage-latency percentiles, and per-process health for
  worker/fabric runs (``repro top URL``).
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.obs.exposition import try_scrape
from repro.obs.registry import (
    SUMMARY_QUANTILES,
    RegistrySnapshot,
    percentile_from_counts,
    series_name,
)

#: ANSI: clear screen + home (what keeps ``repro top`` flicker-free
#: without a curses dependency).
_CLEAR = "\x1b[2J\x1b[H"


def format_metrics(snapshot: RegistrySnapshot) -> str:
    """Every series, grouped by kind; histograms get percentiles."""
    lines: list[str] = []
    if snapshot.counters:
        lines.append("counters:")
        for key, value in sorted(snapshot.counters.items()):
            lines.append(f"  {series_name(key):<58} {value:>14,.0f}")
    if snapshot.gauges:
        lines.append("gauges:")
        for key, value in sorted(snapshot.gauges.items()):
            lines.append(f"  {series_name(key):<58} {value:>14,.0f}")
    if snapshot.histograms:
        lines.append("histograms (seconds):")
        for key, hist in sorted(snapshot.histograms.items()):
            quantiles = "  ".join(
                f"p{q:.0f}={percentile_from_counts(hist['counts'], q):.6f}"
                for q in SUMMARY_QUANTILES
            )
            lines.append(
                f"  {series_name(key):<58} n={hist['count']:<8} "
                f"{quantiles}"
            )
    if not lines:
        lines.append("(no metrics)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------


def _sum_gauges(snapshot: RegistrySnapshot, name: str) -> float:
    return sum(
        value
        for (series, _), value in snapshot.gauges.items()
        if series == name
    )


def _per_label(
    snapshot: RegistrySnapshot, name: str, label: str
) -> dict[str, float]:
    """Series values of one family keyed by one label's value."""
    out: dict[str, float] = {}
    for group in (snapshot.counters, snapshot.gauges):
        for (series, labels), value in group.items():
            if series != name:
                continue
            labelmap = dict(labels)
            if label in labelmap:
                out[labelmap[label]] = out.get(labelmap[label], 0.0) + value
    return out


def _merged_percentiles(
    snapshot: RegistrySnapshot, name: str
) -> Optional[tuple]:
    """p50/p90/p99 of one histogram family, merged across its series."""
    merged: Optional[list[int]] = None
    total = 0
    for (series, _), hist in snapshot.histograms.items():
        if series != name:
            continue
        total += hist["count"]
        if merged is None:
            merged = list(hist["counts"])
        else:
            for i, c in enumerate(hist["counts"]):
                merged[i] += c
    if merged is None or total == 0:
        return None
    return tuple(
        percentile_from_counts(merged, q) for q in SUMMARY_QUANTILES
    )


def render_dashboard(
    snapshot: RegistrySnapshot,
    previous: Optional[RegistrySnapshot],
    interval: float,
) -> str:
    """One ``repro top`` frame (no ANSI; the loop adds the clear)."""
    accepted = snapshot.family_total("repro_claims_accepted_total")
    rate = None
    if previous is not None and interval > 0:
        # Clamp at zero: a counter can step backwards when the endpoint's
        # provider swaps to a fresh service between bench stages.
        rate = max(
            accepted - previous.family_total("repro_claims_accepted_total"),
            0.0,
        ) / interval
    lines = [
        "repro top — ingestion service",
        "-----------------------------",
        (
            f"claims accepted: {accepted:>14,.0f}"
            + (f"   ({rate:,.0f} claims/s)" if rate is not None else "")
        ),
        (
            f"submissions:     "
            f"{snapshot.family_total('repro_submissions_total'):>14,.0f}"
            f"   rejected: "
            f"{snapshot.family_total('repro_claims_rejected_total'):,.0f}"
        ),
    ]
    depths = _per_label(snapshot, "repro_queue_depth", "shard")
    if depths:
        rendered = "  ".join(
            f"s{shard}={depth:.0f}" for shard, depth in sorted(depths.items())
        )
        lines.append(f"queue depth:     {rendered}")
    lag = _sum_gauges(snapshot, "repro_wal_durable_lag")
    if any(series == "repro_wal_durable_lag"
           for series, _ in snapshot.gauges):
        lines.append(f"durable lag:     {lag:>14,.0f} record(s)")
    for title, name in (
        ("queue wait", "repro_queue_wait_seconds"),
        ("batch flush", "repro_batch_flush_seconds"),
        ("wal commit", "repro_wal_commit_seconds"),
        ("snapshot read", "repro_snapshot_read_seconds"),
        ("fabric rpc", "repro_fabric_rpc_seconds"),
    ):
        quantiles = _merged_percentiles(snapshot, name)
        if quantiles is None:
            continue
        p50, p90, p99 = quantiles
        lines.append(
            f"{title + ':':<16} p50 {p50 * 1e3:9.3f} ms   "
            f"p90 {p90 * 1e3:9.3f} ms   p99 {p99 * 1e3:9.3f} ms"
        )
    per_proc = _per_label(
        snapshot, "repro_worker_claims_total", "proc"
    )
    if per_proc:
        lines.append("per-process aggregation:")
        previous_procs = (
            _per_label(previous, "repro_worker_claims_total", "proc")
            if previous is not None
            else {}
        )
        for proc, claims in sorted(per_proc.items()):
            proc_rate = ""
            if proc in previous_procs and interval > 0:
                delta = max(claims - previous_procs[proc], 0.0)
                proc_rate = f"   ({delta / interval:,.0f} claims/s)"
            lines.append(f"  {proc:<12} {claims:>14,.0f} claims{proc_rate}")
    restarts = snapshot.value("repro_fabric_restarts_total")
    if restarts is not None:
        lines.append(f"host restarts:   {restarts:>14,.0f}")
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    stream=None,
) -> int:
    """Poll ``url`` and redraw the dashboard until interrupted.

    ``iterations`` bounds the loop (None = run until Ctrl-C or the
    endpoint disappears after having been seen); returns an exit code.
    """
    stream = stream if stream is not None else sys.stdout
    previous: Optional[RegistrySnapshot] = None
    ever_connected = False
    remaining = iterations
    try:
        while remaining is None or remaining > 0:
            if remaining is not None:
                remaining -= 1
            snapshot = try_scrape(url, timeout=max(interval, 2.0))
            if snapshot is None:
                if ever_connected:
                    stream.write(f"\n{url}: endpoint gone; exiting\n")
                    return 0
                stream.write(f"{_CLEAR}waiting for {url} ...\n")
                stream.flush()
                time.sleep(interval)
                continue
            ever_connected = True
            frame = render_dashboard(snapshot, previous, interval)
            stream.write(f"{_CLEAR}{frame}\n")
            stream.flush()
            previous = snapshot
            if remaining is None or remaining > 0:
                time.sleep(interval)
    except KeyboardInterrupt:
        stream.write("\n")
    if not ever_connected:
        stream.write(f"{url}: no metrics endpoint reachable\n")
        return 1
    return 0
