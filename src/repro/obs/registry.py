"""Typed metric registry: counters, gauges, log-scale histograms.

The telemetry substrate every layer of the service reports into
(ROADMAP "repro.obs").  Design constraints, in order:

* **near-zero hot-path cost** — an increment is one Python ``+=`` and a
  histogram observation is one :func:`math.frexp` plus two adds; no
  dict lookup (callers pre-bind children), no locking, no per-claim
  allocation;
* **mergeable** — :meth:`MetricRegistry.snapshot` produces a
  :class:`RegistrySnapshot` that merges associatively and
  commutatively with snapshots from other processes/hosts, so one
  scrape can see the whole fabric (workers ship theirs over the STATS
  RPC);
* **bounded cardinality** — labelled families cap their child count;
  past the cap new label tuples collapse into one overflow child, so a
  campaign-id-shaped label can never grow the registry without bound.

Counters and gauges are plain floats.  Histograms use one fixed,
global bucket layout — factor-2 buckets from 1 microsecond up
(:data:`BUCKET_EDGES`) — which is what makes cross-process merging a
plain elementwise add: every histogram everywhere shares the same
edges.  Percentiles (p50/p90/p99) come from the cumulative bucket rank
with linear interpolation inside the landing bucket.

Increments are not atomic across threads; the registry is a telemetry
layer, where a torn ``+=`` under free threading costs at most one lost
count, never corruption.  Within this repo every hot-path writer is
the single pumping thread; the HTTP exposition thread only reads
snapshots.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: Histogram bucket base: the first bucket's upper edge, in seconds.
BUCKET_BASE = 1e-6
#: Number of factor-2 buckets.  28 buckets span 1 µs .. ~134 s; the
#: last bucket additionally absorbs everything above its edge (+Inf).
NUM_BUCKETS = 28
#: Upper edge of every bucket (the last one also catches +Inf).
BUCKET_EDGES = tuple(BUCKET_BASE * 2.0**i for i in range(NUM_BUCKETS))

#: Percentiles every summary surface reports.
SUMMARY_QUANTILES = (50.0, 90.0, 99.0)


def bucket_index(value: float) -> int:
    """O(1) bucket for ``value`` seconds (frexp, not a bisect).

    Bucket ``i`` covers ``(BASE * 2^(i-1), BASE * 2^i]`` — except
    bucket 0, which starts at zero, and the last bucket, which absorbs
    every larger value.
    """
    if value <= BUCKET_BASE:
        return 0
    if not math.isfinite(value):
        # frexp(inf) is (inf, 0), which would land in bucket 0.
        return NUM_BUCKETS - 1
    # frexp(x) = (m, e) with x = m * 2^e and 0.5 <= m < 1, so e is
    # ceil(log2(x)) for non-powers of two and log2(x) for exact powers
    # (m == 0.5) — exactly the half-open (lo, hi] bucket rule.
    mantissa, exponent = math.frexp(value / BUCKET_BASE)
    if mantissa == 0.5:
        exponent -= 1
    if exponent >= NUM_BUCKETS:
        return NUM_BUCKETS - 1
    return exponent


def percentile_from_counts(
    counts: Iterable[int], q: float
) -> float:
    """The ``q``-th percentile (0..100) implied by bucket ``counts``.

    Walks the cumulative counts to the landing bucket, then
    interpolates linearly between the bucket's lower and upper edge by
    the fraction of the bucket's population below the rank.  Returns
    0.0 for an empty histogram.
    """
    counts = list(counts)
    total = sum(counts)
    if total <= 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = q / 100.0 * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            lo = 0.0 if i == 0 else BUCKET_EDGES[i - 1]
            hi = BUCKET_EDGES[i]
            fraction = (rank - cumulative) / count
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        cumulative += count
    return BUCKET_EDGES[-1]  # pragma: no cover - rank <= total always lands


def _series(name: str, labels: dict) -> tuple:
    """Canonical series identity: (name, sorted label pairs)."""
    return (
        name,
        tuple(sorted((k, str(v)) for k, v in labels.items())),
    )


def series_key(name: str, labels: Optional[dict] = None) -> tuple:
    """Public form of the series identity (synthesised snapshots)."""
    return _series(name, labels or {})


def series_name(key: tuple) -> str:
    """Prometheus-style series string for a ``(name, labels)`` key."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


# ---------------------------------------------------------------------------
# Live metric objects.


class Counter:
    """Monotonic count.  ``inc`` is the only hot-path operation."""

    __slots__ = ("key", "value")

    kind = "counter"

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, durable lag, ...)."""

    __slots__ = ("key", "value")

    kind = "gauge"

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket log-scale latency histogram (seconds)."""

    __slots__ = ("key", "counts", "count", "sum")

    kind = "histogram"

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.counts = [0] * NUM_BUCKETS
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        return percentile_from_counts(self.counts, q)


_METRIC_TYPES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """One named metric with a bounded set of labelled children.

    ``labels(...)`` returns the child for one label tuple, creating it
    on first use.  Callers on hot paths bind the child once and keep
    it; the lookup itself is a dict hit, so even unbound use stays
    cheap.  Past :attr:`max_children` distinct tuples, everything
    collapses into a single ``{<label>: "_overflow"}`` child — the
    cardinality bound that makes accidental unbounded labels (user
    ids, campaign ids) safe.
    """

    #: Default cardinality cap per family.
    MAX_CHILDREN = 64

    def __init__(
        self,
        name: str,
        kind: str,
        labelnames: tuple,
        *,
        help: str = "",
        max_children: int = MAX_CHILDREN,
    ) -> None:
        self.name = name
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.help = help
        self.max_children = max_children
        self._children: dict[tuple, object] = {}
        self._overflow = None

    def labels(self, **labelvalues):
        values = tuple(
            str(labelvalues[name]) for name in self.labelnames
        )
        child = self._children.get(values)
        if child is not None:
            return child
        if len(self._children) >= self.max_children:
            if self._overflow is None:
                self._overflow = _METRIC_TYPES[self.kind](
                    _series(
                        self.name,
                        {name: "_overflow" for name in self.labelnames},
                    )
                )
            return self._overflow
        child = _METRIC_TYPES[self.kind](
            _series(self.name, dict(zip(self.labelnames, values)))
        )
        self._children[values] = child
        return child

    def children(self) -> list:
        out = list(self._children.values())
        if self._overflow is not None:
            out.append(self._overflow)
        return out


class MetricRegistry:
    """All metrics of one process (or one service within a process).

    Registries are per-service, not process-global: tests (and
    benchmarks) build many services back to back, and a shared
    registry would bleed one service's counts into the next.
    ``counter``/``gauge``/``histogram`` are idempotent per name, so a
    layer can re-request its metrics without double registration.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._help: dict[str, str] = {}

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, labels: tuple, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            want_family = bool(labels)
            is_family = isinstance(existing, MetricFamily)
            existing_kind = (
                existing.kind if is_family else type(existing).kind
            )
            if existing_kind != kind or want_family != is_family:
                raise ValueError(
                    f"metric {name!r} already registered as a different "
                    f"type"
                )
            return existing
        if labels:
            metric: object = MetricFamily(name, kind, labels, help=help)
        else:
            metric = _METRIC_TYPES[kind](_series(name, {}))
        self._metrics[name] = metric
        self._help[name] = help
        return metric

    def counter(self, name: str, help: str = "", labels: tuple = ()):
        return self._get(name, "counter", tuple(labels), help)

    def gauge(self, name: str, help: str = "", labels: tuple = ()):
        return self._get(name, "gauge", tuple(labels), help)

    def histogram(self, name: str, help: str = "", labels: tuple = ()):
        return self._get(name, "histogram", tuple(labels), help)

    # ------------------------------------------------------------------
    def snapshot(self) -> "RegistrySnapshot":
        """Mergeable point-in-time copy of every series."""
        snap = RegistrySnapshot()
        for metric in self._metrics.values():
            children = (
                metric.children()
                if isinstance(metric, MetricFamily)
                else [metric]
            )
            for child in children:
                snap.add(child.kind, child.key, _capture(child))
        return snap


def _capture(child):
    if child.kind == "histogram":
        return {
            "count": child.count,
            "sum": child.sum,
            "counts": list(child.counts),
        }
    return child.value


# ---------------------------------------------------------------------------
# Disabled variants: same surface, no work, so instrumented code never
# branches on "is observability on" — it calls the same methods either
# way and the null objects make them free.


class _NullMetric:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def labels(self, **labelvalues) -> "_NullMetric":
        return self

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry that records nothing (the ``obs=False`` fast path)."""

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str, help: str = "", labels: tuple = ()):
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: tuple = ()):
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", labels: tuple = ()):
        return NULL_METRIC

    def snapshot(self) -> "RegistrySnapshot":
        return RegistrySnapshot()


NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# Snapshots: the unit of merging, shipping, and exposition.


class RegistrySnapshot:
    """Immutable-by-convention capture of a registry's series.

    Three flat maps keyed by ``(name, ((label, value), ...))``:
    counters and gauges map to floats, histograms to
    ``{"count", "sum", "counts"}`` dicts.  ``merge`` sums counters and
    gauges and adds histogram buckets elementwise — associative and
    commutative as long as the float sums themselves are exact (true
    for the integer-dominated values telemetry produces; the property
    tests pin this on dyadic rationals).  ``to_dict``/``from_dict``
    round-trip bitwise through JSON.
    """

    def __init__(self) -> None:
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.histograms: dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    def add(self, kind: str, key: tuple, value) -> None:
        if kind == "counter":
            self.counters[key] = self.counters.get(key, 0.0) + value
        elif kind == "gauge":
            self.gauges[key] = self.gauges.get(key, 0.0) + value
        elif kind == "histogram":
            existing = self.histograms.get(key)
            if existing is None:
                self.histograms[key] = {
                    "count": value["count"],
                    "sum": value["sum"],
                    "counts": list(value["counts"]),
                }
            else:
                existing["count"] += value["count"]
                existing["sum"] += value["sum"]
                counts = existing["counts"]
                for i, c in enumerate(value["counts"]):
                    counts[i] += c
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown metric kind {kind!r}")

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """New snapshot holding this one plus ``other``."""
        merged = RegistrySnapshot()
        for snap in (self, other):
            for key, value in snap.counters.items():
                merged.add("counter", key, value)
            for key, value in snap.gauges.items():
                merged.add("gauge", key, value)
            for key, value in snap.histograms.items():
                merged.add("histogram", key, value)
        return merged

    def relabel(self, **labels) -> "RegistrySnapshot":
        """New snapshot with ``labels`` added to every series.

        The parent uses this to tag each process's shipped snapshot
        (``proc="worker0"``) before merging, so per-process series
        survive the merge instead of summing into each other.
        """
        extra = tuple(sorted((k, str(v)) for k, v in labels.items()))

        def rekey(key: tuple) -> tuple:
            name, pairs = key
            return (name, tuple(sorted(pairs + extra)))

        out = RegistrySnapshot()
        out.counters = {rekey(k): v for k, v in self.counters.items()}
        out.gauges = {rekey(k): v for k, v in self.gauges.items()}
        out.histograms = {
            rekey(k): {
                "count": v["count"],
                "sum": v["sum"],
                "counts": list(v["counts"]),
            }
            for k, v in self.histograms.items()
        }
        return out

    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> Optional[float]:
        """Counter-or-gauge value for one series (None when absent)."""
        key = _series(name, labels)
        if key in self.counters:
            return self.counters[key]
        return self.gauges.get(key)

    def histogram_percentile(
        self, name: str, q: float, **labels
    ) -> Optional[float]:
        hist = self.histograms.get(_series(name, labels))
        if hist is None:
            return None
        return percentile_from_counts(hist["counts"], q)

    def family_total(self, name: str) -> float:
        """Sum of a counter family's series across all label tuples."""
        return sum(
            value
            for (series, _), value in self.counters.items()
            if series == name
        )

    def names(self) -> set:
        """Every distinct metric name present in the snapshot."""
        return {
            key[0]
            for group in (self.counters, self.gauges, self.histograms)
            for key in group
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "counters": [
                [name, dict(labels), value]
                for (name, labels), value in sorted(self.counters.items())
            ],
            "gauges": [
                [name, dict(labels), value]
                for (name, labels), value in sorted(self.gauges.items())
            ],
            "histograms": [
                [name, dict(labels), hist]
                for (name, labels), hist in sorted(self.histograms.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RegistrySnapshot":
        snap = cls()
        for name, labels, value in payload.get("counters", ()):
            snap.add("counter", _series(name, labels), value)
        for name, labels, value in payload.get("gauges", ()):
            snap.add("gauge", _series(name, labels), value)
        for name, labels, hist in payload.get("histograms", ()):
            snap.add("histogram", _series(name, labels), hist)
        return snap
