"""repro.obs — the unified telemetry layer.

A typed metric registry (counters, gauges, mergeable log-scale latency
histograms), sampled per-submission tracing, and exposition (Prometheus
text over HTTP, plus the ``repro metrics`` / ``repro top`` terminal
views).  Every pipeline layer — service, durable, workers, net —
reports into it; see ``docs/observability.md`` for the metric-name
reference.
"""

from repro.obs.exposition import (
    MetricsServer,
    render_prometheus,
    scrape,
    try_scrape,
)
from repro.obs.registry import (
    BUCKET_BASE,
    BUCKET_EDGES,
    NUM_BUCKETS,
    NULL_REGISTRY,
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    NullRegistry,
    RegistrySnapshot,
    bucket_index,
    percentile_from_counts,
    series_key,
    series_name,
)
from repro.obs.top import format_metrics, render_dashboard, run_top
from repro.obs.tracing import STAGES, SubmissionTrace, TraceCollector

__all__ = [
    "BUCKET_BASE",
    "BUCKET_EDGES",
    "NUM_BUCKETS",
    "NULL_REGISTRY",
    "STAGES",
    "SUMMARY_QUANTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "MetricsServer",
    "NullRegistry",
    "RegistrySnapshot",
    "SubmissionTrace",
    "TraceCollector",
    "bucket_index",
    "format_metrics",
    "percentile_from_counts",
    "render_dashboard",
    "render_prometheus",
    "run_top",
    "scrape",
    "series_key",
    "series_name",
    "try_scrape",
]
