"""Sampled per-submission tracing: where did a submission's time go?

A :class:`SubmissionTrace` is a lightweight span record following one
sampled submission through the pipeline's stages::

    submit -> enqueue -> flush -> durable -> aggregated

* ``submit``/``enqueue`` are stamped on the ingest path (admission and
  queueing happen in the same call, so the gap is validation +
  admission cost);
* ``flush`` is stamped when the submission's micro-batch leaves the
  batcher and is appended to the WAL (when one is attached);
* ``aggregated`` is stamped when the batch returns from the
  aggregator — in worker/fabric mode that is the moment the batch
  frame is handed to the transport, since remote aggregation
  completes asynchronously;
* ``durable`` is stamped lazily, the first time the WAL's durable-LSN
  watermark passes the trace's batch LSN (under ``async_commit`` that
  is a later group commit; without durability it collapses onto
  ``flush``).

Sampling is 1-in-N per submit call (``sample_every``), so tracing cost
is one integer modulo on the unsampled hot path and a tiny object
allocation per sampled submission — never per claim.  Completed traces
land in a bounded ring; :meth:`TraceCollector.records` renders them as
JSON-friendly dicts with both absolute stage offsets and per-stage
deltas, which is what the benchmark artifacts store.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Optional

#: Stage names, in pipeline order.
STAGES = ("submit", "enqueue", "flush", "durable", "aggregated")


class SubmissionTrace:
    """One sampled submission's span record (timestamps in perf-counter
    seconds; ``None`` until the stage happens)."""

    __slots__ = (
        "trace_id",
        "campaign_id",
        "claims",
        "submit_ts",
        "enqueue_ts",
        "flush_ts",
        "durable_ts",
        "aggregated_ts",
        "lsn",
    )

    def __init__(
        self, trace_id: int, campaign_id: str, claims: int
    ) -> None:
        self.trace_id = trace_id
        self.campaign_id = campaign_id
        self.claims = claims
        self.submit_ts = time.perf_counter()
        self.enqueue_ts: Optional[float] = None
        self.flush_ts: Optional[float] = None
        self.durable_ts: Optional[float] = None
        self.aggregated_ts: Optional[float] = None
        self.lsn: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.durable_ts is not None and self.aggregated_ts is not None

    def as_dict(self) -> dict:
        """JSON-friendly record: stage offsets + deltas, in seconds."""
        stamps = {
            "submit": self.submit_ts,
            "enqueue": self.enqueue_ts,
            "flush": self.flush_ts,
            "durable": self.durable_ts,
            "aggregated": self.aggregated_ts,
        }
        offsets = {
            stage: (None if ts is None else ts - self.submit_ts)
            for stage, ts in stamps.items()
        }
        deltas = {}
        previous = self.submit_ts
        for stage in STAGES[1:]:
            ts = stamps[stage]
            if ts is None or previous is None:
                deltas[stage] = None
            else:
                deltas[stage] = max(ts - previous, 0.0)
            # The durable stamp can land after "aggregated" was already
            # stamped (async commit); deltas stay stage-over-previous-
            # stamped-stage rather than going negative.
            if ts is not None:
                previous = ts
        return {
            "trace_id": self.trace_id,
            "campaign_id": self.campaign_id,
            "claims": self.claims,
            "lsn": self.lsn,
            "stage_offsets_s": offsets,
            "stage_deltas_s": deltas,
            "total_s": offsets["aggregated"],
        }


class TraceCollector:
    """Samples, tracks, and completes submission traces.

    ``sample_every=0`` disables sampling entirely (``maybe_start``
    short-circuits on one integer check).  The collector keeps at most
    ``max_records`` completed traces (a ring: old traces age out) and
    at most ``max_pending`` in-flight ones, so a burst can never grow
    memory without bound.
    """

    def __init__(
        self,
        sample_every: int = 0,
        *,
        max_records: int = 4096,
        max_pending: int = 1024,
    ) -> None:
        if sample_every < 0:
            raise ValueError(
                f"sample_every must be >= 0, got {sample_every}"
            )
        self.sample_every = sample_every
        self._seen = 0
        self._next_id = 0
        #: Traces whose batch is logged but not yet durable, in LSN
        #: order (group commits advance the watermark monotonically).
        self._awaiting_durable: deque[SubmissionTrace] = deque()
        self._completed: deque[SubmissionTrace] = deque(
            maxlen=max_records
        )
        self._max_pending = max_pending

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0

    # ------------------------------------------------------------------
    def maybe_start(
        self, campaign_id: str, claims: int
    ) -> Optional[SubmissionTrace]:
        """1-in-N sampling decision; returns a live trace or None."""
        every = self.sample_every
        if not every:
            return None
        self._seen += 1
        if self._seen % every:
            return None
        self._next_id += 1
        return SubmissionTrace(self._next_id, campaign_id, claims)

    def on_flushed(
        self, trace: SubmissionTrace, lsn: Optional[int]
    ) -> None:
        """The trace's batch left the batcher (and hit the WAL)."""
        now = time.perf_counter()
        trace.flush_ts = now
        trace.aggregated_ts = now
        trace.lsn = lsn
        if lsn is None:
            # Volatile service: there is no durability stage; the claim
            # is as durable as it will ever be the moment it flushed.
            trace.durable_ts = now
            self._completed.append(trace)
        elif len(self._awaiting_durable) < self._max_pending:
            self._awaiting_durable.append(trace)
        else:
            self._completed.append(trace)  # shed, durable never stamps

    def resolve_durable(self, durable_lsn: int) -> int:
        """Stamp every pending trace the watermark now covers."""
        resolved = 0
        pending = self._awaiting_durable
        while pending and pending[0].lsn <= durable_lsn:
            trace = pending.popleft()
            trace.durable_ts = time.perf_counter()
            self._completed.append(trace)
            resolved += 1
        return resolved

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Completed traces as JSON-friendly dicts (oldest first)."""
        return [trace.as_dict() for trace in self._completed]

    def __len__(self) -> int:
        return len(self._completed)

    def dump(self, path: str) -> int:
        """Write all completed traces as a JSON artifact; returns count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "sample_every": self.sample_every,
                    "traces": records,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        return len(records)
