"""Metric exposition: Prometheus text format over a tiny HTTP server.

:func:`render_prometheus` turns a
:class:`~repro.obs.registry.RegistrySnapshot` into the Prometheus text
exposition format (version 0.0.4: ``# TYPE`` headers, cumulative
``_bucket{le=...}`` histogram series, ``_sum``/``_count``).

:class:`MetricsServer` serves it: a threaded ``http.server`` endpoint
with two routes —

* ``GET /metrics`` — Prometheus text (what a scraper pulls);
* ``GET /metrics.json`` — the snapshot's ``to_dict()`` JSON (what
  ``repro top`` and the CI scrape check consume: structured, and
  mergeable client-side via ``RegistrySnapshot.from_dict``).

The server never talks to worker processes itself: its provider
callable must be safe to run from the HTTP thread (the ingest service
hands it a snapshot function that reads only local state and *cached*
remote snapshots — remote STATS RPCs happen on the pump thread, where
the frame protocol's ordering lives).

:func:`scrape` is the matching one-shot client (stdlib ``urllib``), so
``repro metrics`` / ``repro top`` need no HTTP dependency either.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.registry import (
    BUCKET_EDGES,
    RegistrySnapshot,
    series_name,
)


def render_prometheus(snapshot: RegistrySnapshot) -> str:
    """Prometheus text exposition (0.0.4) for one snapshot."""
    lines: list[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in sorted(snapshot.counters.items()):
        type_line(key[0], "counter")
        lines.append(f"{series_name(key)} {_num(value)}")
    for key, value in sorted(snapshot.gauges.items()):
        type_line(key[0], "gauge")
        lines.append(f"{series_name(key)} {_num(value)}")
    for key, hist in sorted(snapshot.histograms.items()):
        name, labels = key
        type_line(name, "histogram")
        cumulative = 0
        for edge, count in zip(BUCKET_EDGES, hist["counts"]):
            cumulative += count
            bucket_key = (
                f"{name}_bucket",
                labels + (("le", _num(edge)),),
            )
            lines.append(f"{series_name(bucket_key)} {cumulative}")
        inf_key = (f"{name}_bucket", labels + (("le", "+Inf"),))
        lines.append(f"{series_name(inf_key)} {hist['count']}")
        lines.append(
            f"{series_name((f'{name}_sum', labels))} {_num(hist['sum'])}"
        )
        lines.append(
            f"{series_name((f'{name}_count', labels))} {hist['count']}"
        )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Render a number the way Prometheus likes (ints without '.0')."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# ---------------------------------------------------------------------------


def _empty_snapshot() -> RegistrySnapshot:
    return RegistrySnapshot()


class MetricsServer:
    """Threaded HTTP endpoint serving one provider's snapshots.

    Parameters
    ----------
    provider:
        Zero-argument callable returning the current
        :class:`RegistrySnapshot`.  Swappable at runtime via
        :meth:`set_provider` (the benchmark points the endpoint at
        whichever service is currently running).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` afterwards).
    """

    def __init__(
        self,
        provider: Optional[Callable[[], RegistrySnapshot]] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._provider = provider or _empty_snapshot
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                try:
                    snapshot = server._provider()
                    if self.path.startswith("/metrics.json"):
                        body = json.dumps(snapshot.to_dict()).encode()
                        ctype = "application/json"
                    elif self.path.startswith("/metrics"):
                        body = render_prometheus(snapshot).encode()
                        ctype = "text/plain; version=0.0.4"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # never kill the serve thread
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes must not spam the service's stderr

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def set_provider(
        self, provider: Callable[[], RegistrySnapshot]
    ) -> None:
        self._provider = provider

    def freeze(self) -> None:
        """Pin the current snapshot (the provider's service is closing)."""
        try:
            snapshot = self._provider()
        except Exception:  # provider already torn down
            snapshot = RegistrySnapshot()
        self._provider = lambda: snapshot

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------


def scrape(url: str, *, timeout: float = 10.0) -> RegistrySnapshot:
    """One-shot scrape of a ``/metrics.json`` endpoint.

    Accepts the ``/metrics`` URL too and rewrites it to the JSON
    route — the structured form round-trips into a
    :class:`RegistrySnapshot` exactly.
    """
    if url.endswith("/metrics"):
        url = url + ".json"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return RegistrySnapshot.from_dict(payload)


def try_scrape(
    url: str, *, timeout: float = 10.0
) -> Optional[RegistrySnapshot]:
    """Like :func:`scrape`, but None on connection/HTTP errors."""
    try:
        return scrape(url, timeout=timeout)
    except (urllib.error.URLError, OSError, ValueError):
        return None
