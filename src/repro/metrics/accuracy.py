"""Aggregation accuracy metrics.

The paper's utility metric is "the commonly used L1-norm distance, i.e.,
the mean of absolute distance (MAE) on all objects" between the
aggregates computed on original and on perturbed data (Section 5.1).
RMSE and max error are included for richer reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_1d, ensure_same_shape


def mae(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute error between two aggregate vectors (the paper's MAE)."""
    a = ensure_1d(a, "a")
    b = ensure_1d(b, "b")
    ensure_same_shape(a, b, "a/b")
    return float(np.mean(np.abs(a - b)))


def rmse(a: np.ndarray, b: np.ndarray) -> float:
    """Root mean squared error between two aggregate vectors."""
    a = ensure_1d(a, "a")
    b = ensure_1d(b, "b")
    ensure_same_shape(a, b, "a/b")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Worst-case per-object absolute deviation."""
    a = ensure_1d(a, "a")
    b = ensure_1d(b, "b")
    ensure_same_shape(a, b, "a/b")
    return float(np.max(np.abs(a - b)))


def relative_mae(a: np.ndarray, b: np.ndarray, *, floor: float = 1e-12) -> float:
    """MAE normalised by the mean magnitude of ``a`` (scale-free)."""
    a = ensure_1d(a, "a")
    b = ensure_1d(b, "b")
    ensure_same_shape(a, b, "a/b")
    denom = max(float(np.mean(np.abs(a))), floor)
    return float(np.mean(np.abs(a - b))) / denom


@dataclass(frozen=True)
class AccuracyReport:
    """All accuracy metrics for one (reference, estimate) pair."""

    mae: float
    rmse: float
    max_abs_error: float
    relative_mae: float

    @classmethod
    def compare(cls, reference: np.ndarray, estimate: np.ndarray) -> "AccuracyReport":
        """Compute every metric for ``estimate`` against ``reference``."""
        return cls(
            mae=mae(reference, estimate),
            rmse=rmse(reference, estimate),
            max_abs_error=max_abs_error(reference, estimate),
            relative_mae=relative_mae(reference, estimate),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MAE={self.mae:.4g} RMSE={self.rmse:.4g} "
            f"max={self.max_abs_error:.4g} relMAE={self.relative_mae:.4g}"
        )
