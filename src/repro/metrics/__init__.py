"""Evaluation metrics: aggregation accuracy, weight quality, empirical privacy."""

from repro.metrics.accuracy import (
    AccuracyReport,
    mae,
    max_abs_error,
    relative_mae,
    rmse,
)
from repro.metrics.empirical_privacy import (
    EmpiricalEpsilonEstimate,
    distinguishing_advantage,
    empirical_epsilon,
)
from repro.metrics.weights import (
    WeightComparison,
    true_weights,
    weight_rank_agreement,
)

__all__ = [
    "AccuracyReport",
    "EmpiricalEpsilonEstimate",
    "WeightComparison",
    "distinguishing_advantage",
    "empirical_epsilon",
    "mae",
    "max_abs_error",
    "relative_mae",
    "rmse",
    "true_weights",
    "weight_rank_agreement",
]
