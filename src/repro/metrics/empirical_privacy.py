"""Empirical privacy measurement.

Definition 4.5 bounds the ratio of output probabilities for two different
inputs.  These tools *measure* that ratio on samples from an actual
mechanism — a sanity check that the analytic accounting is not violated
in code, and a way to visualise how private-variance sampling hides
individual records.

The estimator histograms the perturbed outputs of two fixed inputs
``x1 != x2`` over a common grid and reports the maximum log-ratio over
bins whose combined mass exceeds a floor (rare bins are excluded: the
delta term of (epsilon, delta)-LDP absorbs them, and their empirical
ratios are pure sampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy.mechanisms import PerturbationMechanism
from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_int, ensure_positive


@dataclass(frozen=True)
class EmpiricalEpsilonEstimate:
    """Result of an empirical density-ratio scan."""

    epsilon: float
    excluded_mass: float
    num_samples: int
    num_bins: int


def empirical_epsilon(
    mechanism: PerturbationMechanism,
    x1: float,
    x2: float,
    *,
    num_samples: int = 20000,
    num_bins: int = 60,
    mass_floor: float = 1e-3,
    random_state: RandomState = None,
) -> EmpiricalEpsilonEstimate:
    """Estimate the observable epsilon distinguishing ``x1`` from ``x2``.

    Runs the mechanism ``num_samples`` times on single-claim inputs
    ``x1`` and ``x2``, histograms both output samples on a shared grid,
    and returns the max absolute log-ratio over bins carrying at least
    ``mass_floor`` of probability in *both* histograms.  ``excluded_mass``
    reports how much probability fell in skipped bins — the empirical
    counterpart of delta.
    """
    ensure_int(num_samples, "num_samples", minimum=100)
    ensure_int(num_bins, "num_bins", minimum=5)
    ensure_positive(mass_floor, "mass_floor")
    rng = as_generator(random_state)

    out1 = _sample_outputs(mechanism, x1, num_samples, rng)
    out2 = _sample_outputs(mechanism, x2, num_samples, rng)

    lo = min(out1.min(), out2.min())
    hi = max(out1.max(), out2.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, num_bins + 1)
    p1, _ = np.histogram(out1, bins=edges, density=False)
    p2, _ = np.histogram(out2, bins=edges, density=False)
    p1 = p1 / num_samples
    p2 = p2 / num_samples

    keep = (p1 >= mass_floor) & (p2 >= mass_floor)
    excluded = float(p1[~keep].sum() + p2[~keep].sum()) / 2.0
    if not keep.any():
        return EmpiricalEpsilonEstimate(
            epsilon=float("inf"),
            excluded_mass=excluded,
            num_samples=num_samples,
            num_bins=num_bins,
        )
    ratios = np.abs(np.log(p1[keep]) - np.log(p2[keep]))
    return EmpiricalEpsilonEstimate(
        epsilon=float(ratios.max()),
        excluded_mass=excluded,
        num_samples=num_samples,
        num_bins=num_bins,
    )


def _sample_outputs(
    mechanism: PerturbationMechanism,
    value: float,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Perturbed outputs of a single scalar claim, ``num_samples`` times.

    Each draw builds a fresh 1x1 claim matrix so that mechanisms with a
    private per-user variance resample it every time — matching the
    marginal output distribution an adversary actually observes.
    """
    claims = ClaimMatrix(values=np.array([[float(value)]]))
    out = np.empty(num_samples)
    for i in range(num_samples):
        seed = int(rng.integers(0, 2**63 - 1))
        result = mechanism.perturb(claims, random_state=seed)
        out[i] = result.perturbed.values[0, 0]
    return out


def distinguishing_advantage(
    mechanism: PerturbationMechanism,
    x1: float,
    x2: float,
    *,
    num_samples: int = 20000,
    random_state: RandomState = None,
) -> float:
    """Best achievable accuracy of a threshold attacker telling x1 from x2.

    0.5 = perfect privacy (coin flip); 1.0 = fully distinguishable.
    Computed as ``0.5 + TV/2`` where TV is the empirical total-variation
    distance between output samples (threshold attackers achieve
    exactly the TV advantage for single-threshold tests).
    """
    ensure_int(num_samples, "num_samples", minimum=100)
    rng = as_generator(random_state)
    out1 = np.sort(_sample_outputs(mechanism, x1, num_samples, rng))
    out2 = np.sort(_sample_outputs(mechanism, x2, num_samples, rng))
    grid = np.concatenate([out1, out2])
    cdf1 = np.searchsorted(out1, grid, side="right") / num_samples
    cdf2 = np.searchsorted(out2, grid, side="right") / num_samples
    tv = float(np.max(np.abs(cdf1 - cdf2)))
    return 0.5 + tv / 2.0
