"""Weight-estimation quality metrics (Fig. 7 support).

The paper's Fig. 7 compares, for selected users, the weight a truth
discovery method *estimates* against the "true weight" — the weight the
same method would assign if it knew the ground truth ("we obtain the
groundtruth distance by measuring the hallway segments manually. This
enables us to derive the true weight of each user").

:func:`true_weights` formalises that: run the method's weight-estimation
step once with the ground truth in place of the learned truths.
Correlation metrics summarise how well estimated weights track true
weights across the whole population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix


def true_weights(
    method: TruthDiscoveryMethod,
    claims: ClaimMatrix,
    ground_truth: np.ndarray,
) -> np.ndarray:
    """Weights the method would assign given oracle truths.

    Applies the method's own ``estimate_weights`` with ``ground_truth``
    as the aggregated results, then normalises to mean 1 (the same
    normalisation :meth:`TruthDiscoveryMethod.fit` applies), so values
    are directly comparable to ``fit(...).weights``.
    """
    ground_truth = np.asarray(ground_truth, dtype=float)
    if ground_truth.shape != (claims.num_objects,):
        raise ValueError(
            f"ground_truth must have shape ({claims.num_objects},), got "
            f"{ground_truth.shape}"
        )
    weights = np.asarray(
        method.estimate_weights(claims, ground_truth), dtype=float
    )
    total = weights.sum()
    if total <= 0:
        return np.ones_like(weights)
    return weights * (len(weights) / total)


@dataclass(frozen=True)
class WeightComparison:
    """Estimated-vs-true weight agreement summary."""

    pearson: float
    spearman: float
    mean_absolute_gap: float

    @classmethod
    def compare(
        cls, estimated: np.ndarray, true: np.ndarray
    ) -> "WeightComparison":
        estimated = np.asarray(estimated, dtype=float)
        true = np.asarray(true, dtype=float)
        if estimated.shape != true.shape:
            raise ValueError(
                f"shape mismatch: {estimated.shape} vs {true.shape}"
            )
        if estimated.size < 2:
            raise ValueError("need at least two users to correlate")
        if np.std(estimated) == 0 or np.std(true) == 0:
            pearson = 0.0
            spearman = 0.0
        else:
            pearson = float(stats.pearsonr(estimated, true).statistic)
            spearman = float(stats.spearmanr(estimated, true).statistic)
        return cls(
            pearson=pearson,
            spearman=spearman,
            mean_absolute_gap=float(np.mean(np.abs(estimated - true))),
        )


def weight_rank_agreement(
    estimated: np.ndarray, true: np.ndarray, *, top_k: int = 10
) -> float:
    """Fraction of the true top-k users recovered in the estimated top-k.

    A deployment-relevant view: servers often shortlist reliable users
    for follow-up tasks; this measures whether perturbation preserves
    that shortlist.
    """
    estimated = np.asarray(estimated, dtype=float)
    true = np.asarray(true, dtype=float)
    if estimated.shape != true.shape:
        raise ValueError(f"shape mismatch: {estimated.shape} vs {true.shape}")
    k = min(top_k, estimated.size)
    if k == 0:
        return 1.0
    top_est = set(np.argsort(estimated)[-k:].tolist())
    top_true = set(np.argsort(true)[-k:].tolist())
    return len(top_est & top_true) / k
