"""Throughput/latency measurement harness for the ingestion service.

Shared by the ``repro service-bench`` CLI subcommand and
``benchmarks/bench_service_throughput.py``.  Three measured paths:

* **bulk** — pre-resolved columnar chunks through
  ``IngestService.submit_columns`` (the gateway hot path);
* **submissions** — protocol-shaped ``ClaimSubmission`` objects through
  ``IngestService.submit`` (the crowdsensing adapter path);
* **baseline** — the classic per-message ``AggregationServer``:
  JSON-serialised transport, per-object submission lists, one full
  truth-discovery fit at finalise.

The bulk and submission paths run the truth-discovery ``method`` under
test (``--method`` on the CLI; CRH, GTM, or CATD), so the whole
pipeline — including the multi-process worker comparison and its
bitwise check — exercises that method's streaming backend.

A fourth, per-method section (:func:`bench_method_reads`) compares the
*read path* of the streaming and full-refit backends on one large
campaign: identical traffic into both, periodic snapshot reads along
the stream, and a final read on the fully loaded campaign.  The
full-refit backend pays O(total claims) per dirty read; the streaming
backends answer from O(S x N) sufficient statistics — the section
reports the measured per-read latencies, the speedup, and the dense
streaming-vs-batch agreement RMSE for the method.

Traffic is materialised before the clock starts, so the numbers measure
ingestion and aggregation only.
"""

from __future__ import annotations

import itertools
import os
import shutil
import signal
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.server import AggregationServer
from repro.crowdsensing.transport import InProcessTransport
from repro.obs.registry import percentile_from_counts
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.ledger import BudgetLedger
from repro.service.loadgen import LoadGenerator
from repro.service.topology import Topology
from repro.privacy.ldp import LDPGuarantee
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.truthdiscovery.streaming import STREAMING_ESTIMATORS

#: Reference-fit kwargs per method for the agreement check.  The
#: streaming CRH estimator shares the *squared*-distance CRH fixed
#: point (not the default per-object-normalised distance); GTM and
#: CATD defaults already match their streaming counterparts.
_REFERENCE_KWARGS = {"crh": {"distance": "squared"}}


def _percentile_ms(latencies: np.ndarray, q: float) -> float:
    if latencies.size == 0:
        return 0.0
    return float(np.percentile(latencies, q) * 1e3)


def _family_percentile_ms(snapshot, name: str, q: float) -> float:
    """Histogram percentile merged across a family's label children.

    ``RegistrySnapshot.histogram_percentile`` addresses one series;
    the per-shard latency families (``repro_batch_flush_seconds{shard}``
    and friends) want the service-wide percentile, which is just the
    percentile of the element-wise summed bucket counts.
    """
    counts = None
    for (series, _labels), hist in snapshot.histograms.items():
        if series != name:
            continue
        if counts is None:
            counts = list(hist["counts"])
        else:
            counts = [a + b for a, b in zip(counts, hist["counts"])]
    if counts is None or sum(counts) == 0:
        return 0.0
    return float(percentile_from_counts(counts, q) * 1e3)


def _bench_bulk(
    *,
    total_claims: int,
    num_campaigns: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    num_shards: int,
    max_batch: int,
    chunk_size: int,
    seed: int,
    method: str = "crh",
    workers: int = 0,
    hosts: int = 0,
    supervise: bool = True,
    start_method: str = "spawn",
    midstream=None,
    obs: bool = True,
    trace_sample_every: int = 0,
    trace_output=None,
    metrics_server=None,
) -> tuple[dict, dict]:
    """One bulk-path run; returns (metrics, final truths per campaign).

    With ``workers > 0`` the clock covers ``sync_workers()`` too, so
    multi-process throughput counts *aggregated* claims — not frames
    parked in a pipe — and is directly comparable to the in-process
    run.  ``hosts > 0`` runs the same traffic over the socket shard
    fabric (``repro serve-shard`` subprocesses) instead of the pipe
    pool.  ``midstream`` is called once with the service at the
    halfway chunk — the failover benchmark uses it to kill a shard
    host inside the measured window.  The final truths are snapshotted
    outside the clock; the caller uses them for the bitwise checks.

    ``obs=False`` runs with the telemetry layer compiled out (the
    null registry) — the overhead measurement compares the two.  A
    ``metrics_server`` is pointed at this run's live registry for its
    duration and frozen on our last snapshot before the service
    closes, so a concurrent scraper always gets an answer.
    """
    config = ServiceConfig(
        num_shards=num_shards,
        max_batch=max_batch,
        obs=obs,
        trace_sample_every=trace_sample_every,
    )
    if hosts > 0:
        topology = Topology.fabric(hosts, supervise=supervise)
    elif workers > 0:
        topology = Topology.workers(workers, start_method=start_method)
    else:
        topology = Topology.in_process()
    service = IngestService(config, topology=topology)
    if metrics_server is not None:
        metrics_server.set_provider(service.metrics_snapshot)
    per_campaign_chunks = []
    generators = []
    per_campaign = max(total_claims // num_campaigns, 1)
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"bulk-c{c}",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed + c,
        )
        generators.append(gen)
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=users_per_campaign,
            user_ids=gen.user_ids,
            method=method,
        )
        per_campaign_chunks.append(
            list(gen.column_chunks(per_campaign, chunk_size=chunk_size))
        )
    # Interleave arrivals round-robin across campaigns, the way real
    # traffic mixes — campaign-sequential replay would keep exactly one
    # shard (and so one worker) busy at a time.
    chunks = [
        chunk
        for group in itertools.zip_longest(*per_campaign_chunks)
        for chunk in group
        if chunk is not None
    ]

    start = time.perf_counter()
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id, chunk.user_slots, chunk.object_slots,
            chunk.values,
        )
        if i % 16 == 15:
            service.pump()
        if midstream is not None and i == len(chunks) // 2:
            midstream(service)
            midstream = None
    service.flush()
    service.sync_workers()
    elapsed = time.perf_counter() - start

    truths = {
        gen.campaign_id: service.snapshot(gen.campaign_id).truths
        for gen in generators
    }
    accepted = service.stats.claims_accepted
    lats = service.batch_latencies()
    fabric = service.fabric_stats() if hosts > 0 else None
    obs_snapshot = service.metrics_snapshot() if obs else None
    if trace_output is not None and trace_sample_every > 0:
        service.telemetry.traces.dump(trace_output)
    if metrics_server is not None:
        metrics_server.freeze()
    service.close()
    metrics = {
        "claims": int(accepted),
        "seconds": elapsed,
        "claims_per_sec": accepted / max(elapsed, 1e-9),
        "batches": int(lats.size),
        "batch_latency_p50_ms": _percentile_ms(lats, 50),
        "batch_latency_p99_ms": _percentile_ms(lats, 99),
        "workers": workers,
        "stats": service.stats.as_dict(),
    }
    if obs_snapshot is not None:
        metrics["batch_flush_p50_ms"] = _family_percentile_ms(
            obs_snapshot, "repro_batch_flush_seconds", 50
        )
        metrics["batch_flush_p99_ms"] = _family_percentile_ms(
            obs_snapshot, "repro_batch_flush_seconds", 99
        )
        metrics["queue_wait_p99_ms"] = _family_percentile_ms(
            obs_snapshot, "repro_queue_wait_seconds", 99
        )
    if trace_sample_every > 0:
        metrics["traces_sampled"] = len(service.telemetry.traces)
    if fabric is not None:
        metrics["hosts"] = hosts
        metrics["supervision"] = fabric.get("supervision")
    return metrics, truths


def _bench_submissions(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    claims_per_submission: int,
    num_shards: int,
    max_batch: int,
    seed: int,
    method: str = "crh",
) -> dict:
    config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
    service = IngestService(config)
    gen = LoadGenerator(
        "subs-c0",
        num_users=users_per_campaign,
        num_objects=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        random_state=seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=users_per_campaign,
        user_ids=gen.user_ids,
        method=method,
    )
    num_submissions = max(total_claims // claims_per_submission, 1)
    submissions = gen.submissions(num_submissions)

    start = time.perf_counter()
    for i, sub in enumerate(submissions):
        service.submit(sub)
        if i % 1024 == 1023:
            service.pump()
    service.flush()
    elapsed = time.perf_counter() - start

    accepted = service.stats.claims_accepted
    lats = service.batch_latencies()
    return {
        "claims": int(accepted),
        "seconds": elapsed,
        "claims_per_sec": accepted / max(elapsed, 1e-9),
        "batches": int(lats.size),
        "batch_latency_p50_ms": _percentile_ms(lats, 50),
        "batch_latency_p99_ms": _percentile_ms(lats, 99),
    }


def _bench_baseline(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    claims_per_submission: int,
    seed: int,
) -> dict:
    gen = LoadGenerator(
        "base-c0",
        num_users=users_per_campaign,
        num_objects=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        random_state=seed,
    )
    num_submissions = max(total_claims // claims_per_submission, 1)
    submissions = gen.submissions(num_submissions)
    spec = CampaignSpec(
        campaign_id=gen.campaign_id,
        object_ids=gen.object_ids,
        lambda2=1.0,
        deadline=1e9,
        min_contributors=1,
    )
    transport = InProcessTransport(random_state=seed)
    server = AggregationServer(transport)

    start = time.perf_counter()
    sent = server.announce_campaign(spec, list(gen.user_ids))
    transport.drain_until_idle()
    for sub in submissions:
        transport.send(sub.user_id, server.node_id, sub)
    transport.drain_until_idle()
    server.collect()
    server.finalise(spec, assignments_sent=sent, announce=False)
    elapsed = time.perf_counter() - start

    claims = num_submissions * claims_per_submission
    return {
        "claims": int(claims),
        "seconds": elapsed,
        "claims_per_sec": claims / max(elapsed, 1e-9),
    }


def streaming_agreement_rmse(
    *,
    method: str = "crh",
    num_users: int = 60,
    num_objects: int = 40,
    refine_sweeps: int = 40,
    seed: int = 2020,
) -> float:
    """RMSE between service streaming truths and a full batch refit.

    Uses a dense, duplicate-free round (every user claims every object
    once) so both estimators see identical evidence; the batch
    reference is the registry ``method`` (with the squared-distance
    variant for CRH, whose fixed point StreamingCRH shares).
    """
    config = ServiceConfig(
        num_shards=1,
        max_batch=256,
        refine_sweeps=refine_sweeps,
        refine_every=10**9,  # refine once, at snapshot time
    )
    service = IngestService(config)
    gen = LoadGenerator(
        f"dense-{method}-c0",
        num_users=num_users,
        num_objects=num_objects,
        random_state=seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=num_users,
        user_ids=gen.user_ids,
        method=method,
        aggregator="streaming",
    )
    round_subs = gen.dense_round()
    for sub in round_subs:
        service.submit(sub)
    snapshot = service.snapshot(gen.campaign_id)

    claims = ClaimMatrix.from_submissions(
        round_subs, user_ids=gen.user_ids, object_ids=gen.object_ids
    )
    reference = create_method(
        method, **_REFERENCE_KWARGS.get(method, {})
    ).fit(claims)
    return float(
        np.sqrt(np.mean((snapshot.truths - reference.truths) ** 2))
    )


def bench_method_reads(
    *,
    method: str,
    total_claims: int = 1_000_000,
    num_users: int = 400,
    num_objects: int = 64,
    num_reads: int = 16,
    max_batch: int = 2048,
    chunk_size: int = 2048,
    seed: int = 2020,
) -> dict:
    """Streaming vs full-refit read-path comparison for one method.

    Streams identical traffic into two single-shard services — one
    forced onto the streaming backend, one onto full-refit — taking
    ``num_reads`` snapshot reads spread along the stream plus a final
    read on the fully loaded campaign.  Every read lands on a dirty
    aggregator (claims arrived since the previous read), so the full
    backend pays its real refit each time.  Returns per-backend read
    latencies, the streaming-over-full speedups, and the dense
    streaming-vs-batch agreement RMSE.
    """
    gen = LoadGenerator(
        f"reads-{method}",
        num_users=num_users,
        num_objects=num_objects,
        random_state=seed,
    )
    chunks = list(gen.column_chunks(total_claims, chunk_size=chunk_size))
    read_interval = max(len(chunks) // max(num_reads, 1), 1)
    sections = {}
    for backend in ("streaming", "full"):
        config = ServiceConfig(num_shards=1, max_batch=max_batch)
        service = IngestService(config)
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=num_users,
            user_ids=gen.user_ids,
            method=method,
            aggregator=backend,
        )
        read_seconds = []
        start = time.perf_counter()
        for i, chunk in enumerate(chunks):
            service.submit_columns(
                chunk.campaign_id, chunk.user_slots, chunk.object_slots,
                chunk.values,
            )
            if i % 8 == 7:
                service.pump()
            # Interim reads along the stream; never on the last chunk,
            # so the final read below always measures a dirty read of
            # the whole campaign.
            if (i + 1) % read_interval == 0 and i + 1 < len(chunks):
                t0 = time.perf_counter()
                service.snapshot(gen.campaign_id)
                read_seconds.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        service.snapshot(gen.campaign_id)
        final_read = time.perf_counter() - t0
        elapsed = time.perf_counter() - start
        state = service.campaign_state(gen.campaign_id)
        reads = np.asarray(read_seconds + [final_read])
        sections[backend] = {
            "claims": int(service.stats.claims_accepted),
            "reads": int(reads.size),
            "read_ms_mean": float(reads.mean() * 1e3),
            "read_ms_max": float(reads.max() * 1e3),
            "final_read_ms": final_read * 1e3,
            "wall_seconds": elapsed,
            "aggregator_refreshes": int(state.aggregator.refreshes),
            "aggregator_refresh_seconds": float(
                state.aggregator.refresh_seconds
            ),
            "snapshot_read_seconds": service.stats.snapshot_read_seconds,
        }
    streaming, full = sections["streaming"], sections["full"]
    return {
        "method": method,
        "claims": total_claims,
        "num_users": num_users,
        "num_objects": num_objects,
        "streaming": streaming,
        "full": full,
        "read_speedup_mean": (
            full["read_ms_mean"] / max(streaming["read_ms_mean"], 1e-9)
        ),
        "read_speedup_final": (
            full["final_read_ms"] / max(streaming["final_read_ms"], 1e-9)
        ),
        "streaming_vs_batch_rmse": streaming_agreement_rmse(
            method=method, seed=seed
        ),
    }


def _kill_one_host(service) -> None:
    """SIGKILL the first shard-host subprocess and reap it."""
    victim = service.worker_pool.handles[0]
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(10.0)


def _bench_durable_ack(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    num_shards: int,
    max_batch: int,
    chunk_size: int,
    seed: int,
    method: str,
    trace_output=None,
    metrics_server=None,
) -> dict:
    """Small WAL-attached run: append-to-durable-ack latency percentiles.

    Runs the bulk path with a ``fsync=batch`` write-ahead log into a
    throwaway directory and reads the per-group commit latency
    percentiles from the ``repro_wal_commit_seconds{fsync=batch}``
    histogram the telemetry layer drains from the WAL — the same
    series a live scrape sees, exercised end to end.  With
    ``trace_output`` set the run samples submission traces, which here
    carry all five stage timestamps including the real durable-ack
    stamp, and dumps them as a JSON artifact.
    """
    from repro.durable.manager import DurabilityConfig, DurabilityManager

    tmp = Path(tempfile.mkdtemp(prefix="repro-service-bench-wal-"))
    try:
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp / "wal", fsync="batch")
        )
        # Bulk traffic is chunk-granular — one "submission" per column
        # chunk, so only a handful per run; sample 1-in-2 so the
        # artifact actually carries traces.
        config = ServiceConfig(
            num_shards=num_shards,
            max_batch=max_batch,
            trace_sample_every=2 if trace_output is not None else 0,
        )
        service = IngestService(
            config, topology=Topology.in_process(durability=manager)
        )
        if metrics_server is not None:
            metrics_server.set_provider(service.metrics_snapshot)
        gen = LoadGenerator(
            "durable-ack-c0",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed,
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=users_per_campaign,
            user_ids=gen.user_ids,
            method=method,
        )
        chunks = list(gen.column_chunks(total_claims, chunk_size=chunk_size))
        start = time.perf_counter()
        for i, chunk in enumerate(chunks):
            service.submit_columns(
                chunk.campaign_id, chunk.user_slots, chunk.object_slots,
                chunk.values,
            )
            if i % 8 == 7:
                service.pump()
        service.flush()
        manager.sync()
        elapsed = time.perf_counter() - start
        # One more pump after the final sync so the last committed
        # group is drained into the histogram and the durable-ack
        # watermark resolves any still-pending traces.
        service.pump()
        snapshot = service.metrics_snapshot()
        if trace_output is not None:
            service.telemetry.traces.dump(trace_output)
        if metrics_server is not None:
            metrics_server.freeze()
        p50 = snapshot.histogram_percentile(
            "repro_wal_commit_seconds", 50, fsync="batch"
        )
        p99 = snapshot.histogram_percentile(
            "repro_wal_commit_seconds", 99, fsync="batch"
        )
        accepted = service.stats.claims_accepted
        metrics = {
            "claims": int(accepted),
            "seconds": elapsed,
            "claims_per_sec": accepted / max(elapsed, 1e-9),
            "fsync": "batch",
            "commit_groups": int(service.stats.wal_commit_groups),
            "durable_ack_p50_ms": (p50 or 0.0) * 1e3,
            "durable_ack_p99_ms": (p99 or 0.0) * 1e3,
        }
        if trace_output is not None:
            metrics["traces_sampled"] = len(service.telemetry.traces)
            metrics["trace_output"] = str(trace_output)
        service.close()
        manager.close()
        return metrics
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _bench_replication(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    num_shards: int,
    max_batch: int,
    chunk_size: int,
    seed: int,
    method: str,
    replicas: int,
    sync: str = "async",
    num_reads: int = 32,
    metrics_server=None,
) -> dict:
    """WAL-shipping replication: read fan-out, lag, promotion check.

    Runs the bulk path on a primary whose WAL ships to ``replicas``
    warm standbys (``repro standby`` subprocesses via
    ``Topology.replicated``), then measures the read paths against
    each other: primary snapshot reads pay a ``durability.sync()``
    fsync each, replica reads are served from the standby's
    continuously replayed aggregators over one RPC.  After the read
    section the first standby is promoted and its truths and spent
    privacy budget are checked bitwise against the primary's at the
    replicated watermark — the same invariant the CI kill-test asserts
    across a real SIGKILL.
    """
    import time as _time

    from repro.durable.manager import DurabilityConfig, DurabilityManager

    tmp = Path(tempfile.mkdtemp(prefix="repro-service-bench-repl-"))
    service = None
    try:
        manager = DurabilityManager(
            DurabilityConfig(directory=tmp / "wal", fsync="batch")
        )
        config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
        service = IngestService(
            config,
            ledger=BudgetLedger(epsilon_cap=1e9),
            topology=Topology.replicated(
                standbys=replicas, durability=manager, sync=sync
            ),
        )
        if metrics_server is not None:
            metrics_server.set_provider(service.metrics_snapshot)
        gen = LoadGenerator(
            "repl-c0",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed,
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=users_per_campaign,
            user_ids=gen.user_ids,
            method=method,
            cost=LDPGuarantee(epsilon=1e-6, delta=0.0),
        )
        chunks = list(gen.column_chunks(total_claims, chunk_size=chunk_size))
        start = time.perf_counter()
        for i, chunk in enumerate(chunks):
            service.submit_columns(
                chunk.campaign_id, chunk.user_slots, chunk.object_slots,
                chunk.values,
            )
            if i % 8 == 7:
                service.pump()
        service.flush()
        manager.sync()
        ingest_elapsed = time.perf_counter() - start

        sender = service.replication

        def _await_acks() -> int:
            lsn = manager.wal.durable_lsn
            deadline = _time.monotonic() + 120.0
            while sender.min_ack_lsn() < lsn:
                if _time.monotonic() > deadline:
                    raise RuntimeError(
                        f"standbys did not reach LSN {lsn} within 120 s "
                        f"(acked {sender.min_ack_lsn()})"
                    )
                _time.sleep(0.02)
            return lsn

        t0 = _time.monotonic()
        _await_acks()
        catchup_seconds = _time.monotonic() - t0

        clients = [h.client() for h in service.standbys.handles]
        try:
            # Dirty-read throughput: every read races a fresh write —
            # the scenario read replicas exist for.  A primary snapshot
            # must force the tail batch into the log and block on the
            # durable-ack watermark (write + fsync per read); a replica
            # read is one RPC against the standby's continuously
            # replayed aggregators and never touches the primary's log.
            # The write between reads is identical in both phases, and
            # only the read call itself is on the clock.
            read_chunks = list(
                gen.column_chunks(2 * num_reads * 64, chunk_size=64)
            )
            primary_read_seconds = 0.0
            for chunk in read_chunks[:num_reads]:
                service.submit_columns(
                    chunk.campaign_id, chunk.user_slots,
                    chunk.object_slots, chunk.values,
                )
                t0 = time.perf_counter()
                service.snapshot(gen.campaign_id)
                primary_read_seconds += time.perf_counter() - t0
            replica_read_seconds = 0.0
            for i, chunk in enumerate(read_chunks[num_reads:]):
                service.submit_columns(
                    chunk.campaign_id, chunk.user_slots,
                    chunk.object_slots, chunk.values,
                )
                t0 = time.perf_counter()
                clients[i % len(clients)].snapshot(gen.campaign_id)
                replica_read_seconds += time.perf_counter() - t0

            # Quiesce, then check every replica serves the primary's
            # truths bit for bit once the stream is fully applied.
            service.flush()
            manager.sync()
            watermark = _await_acks()
            primary_snap = service.snapshot(gen.campaign_id)
            replica_snaps = []
            for client in clients:
                deadline = _time.monotonic() + 30.0
                while True:
                    snap = client.snapshot(gen.campaign_id)
                    # Acks precede apply; give the standby a beat to
                    # fold the last shipped group into its aggregators.
                    if (
                        snap.claims_ingested >= primary_snap.claims_ingested
                        or _time.monotonic() > deadline
                    ):
                        break
                    _time.sleep(0.02)
                replica_snaps.append(snap)
            replica_match = all(
                np.array_equal(
                    np.asarray(snap.truths, dtype=np.float64),
                    np.asarray(primary_snap.truths, dtype=np.float64),
                )
                for snap in replica_snaps
            )
            stats = sender.stats()
            ship_lats = np.asarray(
                [v for link in sender.links for v in list(link.ship_latencies)]
            )
            if metrics_server is not None:
                metrics_server.freeze()

            # Promotion: stop shipping, promote standby 0, and compare
            # its state against the primary's at the watermark.
            ledger_records = (
                service.ledger.to_records()
                if service.ledger is not None
                else None
            )
            sender.close()
            promoter = clients[0]
            promote_report = promoter.promote()
            promoted_snap = promoter.snapshot(gen.campaign_id)
            promoted_status = promoter.status()
            promotion_match = bool(
                np.array_equal(
                    np.asarray(promoted_snap.truths, dtype=np.float64),
                    np.asarray(primary_snap.truths, dtype=np.float64),
                )
            )
            def _ledger_key(records):
                # Spent totals must match exactly; record order is an
                # insertion-order artifact (admission order on the
                # primary, WAL charge order on the standby).
                return sorted(
                    (r["user_id"], r["epsilon"], r["delta"])
                    for r in records
                )

            budget_match = bool(
                ledger_records is None
                or _ledger_key(promoted_status["ledger"]["records"])
                == _ledger_key(ledger_records)
            )
        finally:
            for client in clients:
                client.close()

        primary_rate = num_reads / max(primary_read_seconds, 1e-9)
        replica_rate = num_reads / max(replica_read_seconds, 1e-9)
        return {
            "replicas": replicas,
            "sync": sync,
            "claims": int(service.stats.claims_accepted),
            "ingest_seconds": ingest_elapsed,
            "claims_per_sec": (
                service.stats.claims_accepted / max(ingest_elapsed, 1e-9)
            ),
            "watermark_lsn": int(watermark),
            "catchup_seconds": catchup_seconds,
            "reads": num_reads,
            "primary_reads_per_sec": primary_rate,
            "replica_reads_per_sec": replica_rate,
            "read_fanout_vs_primary": replica_rate / max(primary_rate, 1e-9),
            "replica_truths_match_bitwise": bool(replica_match),
            "promotion_truths_match_bitwise": promotion_match,
            "budget_spent_matches": budget_match,
            "promotion_seconds": promote_report["seconds"],
            "promoted_records_applied": promote_report["records_applied"],
            "records_shipped": sum(
                s["records_shipped"] for s in stats["standbys"]
            ),
            "bytes_shipped": sum(
                s["bytes_shipped"] for s in stats["standbys"]
            ),
            "reconnects": sum(s["reconnects"] for s in stats["standbys"]),
            "semi_sync_timeouts": stats["semi_sync_timeouts"],
            "ship_p50_ms": _percentile_ms(ship_lats, 50),
            "ship_p99_ms": _percentile_ms(ship_lats, 99),
        }
    finally:
        if service is not None:
            service.close()
        # Standby dirs default to <primary>.standby<i>, siblings of
        # tmp/wal — still inside tmp, so one rmtree gets everything.
        shutil.rmtree(tmp, ignore_errors=True)


def run_service_bench(
    *,
    total_claims: int = 400_000,
    submission_claims: int = 80_000,
    baseline_claims: int = 20_000,
    num_shards: int = 4,
    num_campaigns: int = 8,
    users_per_campaign: int = 200,
    objects_per_campaign: int = 48,
    claims_per_submission: int = 8,
    max_batch: int = 2048,
    chunk_size: int = 2048,
    seed: int = 2020,
    method: str = "crh",
    read_methods: tuple = ("crh", "gtm", "catd"),
    read_claims: int = 1_000_000,
    num_reads: int = 16,
    workers: int = 0,
    hosts: int = 0,
    replicas: int = 0,
    replication_sync: str = "async",
    start_method: str = "spawn",
    smoke: bool = False,
    metrics_port=None,
    trace_output=None,
) -> dict:
    """Run all measured paths and return a JSON-serialisable summary.

    ``method`` is the truth-discovery method the bulk and submission
    campaigns run (any streaming-capable method: CRH, GTM, or CATD).
    ``workers > 0`` adds a multi-process bulk run over the *same*
    chunk sequence next to the in-process one, plus a bitwise
    truth-agreement check between the two.  ``hosts > 0`` adds two
    more runs over the socket shard fabric: a clean one (bitwise
    check against the in-process truths) and a failover one in which
    a shard host is SIGKILLed at the halfway chunk — reporting the
    supervisor's measured recovery time and whether the recovered
    truths still match bit for bit.  ``replicas > 0`` adds the
    WAL-shipping replication section (:func:`_bench_replication`):
    replica-read fan-out vs primary reads, replication lag, and a
    promotion bitwise check.  ``read_methods`` selects
    the per-method streaming-vs-full-refit read benchmarks
    (:func:`bench_method_reads`, ``read_claims`` claims each).
    ``smoke`` shrinks every workload to a few thousand claims so CI
    can exercise the full code path (including the worker spawn path)
    in seconds.

    ``metrics_port`` starts a live :class:`~repro.obs.MetricsServer`
    on ``127.0.0.1`` for the whole benchmark — each measured service
    becomes its provider while it runs, and a frozen snapshot of the
    last one serves the gaps in between, so an external scraper (CI's
    mid-run check, ``repro top``) always gets an answer.
    ``trace_output`` dumps sampled submission traces (with real
    durable-ack timestamps, from the WAL-attached run) as JSON.

    Two observability sections ride along: ``obs_overhead`` re-runs
    the bulk path with telemetry disabled and reports the throughput
    delta, and ``durable`` measures append-to-durable-ack commit
    percentiles off the scraped histogram itself.
    """
    if method not in STREAMING_ESTIMATORS:
        raise ValueError(
            f"method must be streaming-capable "
            f"({sorted(STREAMING_ESTIMATORS)}), got {method!r}"
        )
    if smoke:
        total_claims = min(total_claims, 24_000)
        submission_claims = min(submission_claims, 8_000)
        baseline_claims = min(baseline_claims, 4_000)
        read_claims = min(read_claims, 30_000)
        num_reads = min(num_reads, 4)
    durable_claims = min(total_claims // 2, 60_000)
    metrics_server = None
    if metrics_port is not None:
        from repro.obs.exposition import MetricsServer

        metrics_server = MetricsServer(port=metrics_port)
    try:
        return _run_service_bench(
            total_claims=total_claims,
            submission_claims=submission_claims,
            baseline_claims=baseline_claims,
            num_shards=num_shards,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            claims_per_submission=claims_per_submission,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
            read_methods=read_methods,
            read_claims=read_claims,
            num_reads=num_reads,
            workers=workers,
            hosts=hosts,
            replicas=replicas,
            replication_sync=replication_sync,
            start_method=start_method,
            smoke=smoke,
            durable_claims=durable_claims,
            trace_output=trace_output,
            metrics_server=metrics_server,
        )
    finally:
        if metrics_server is not None:
            metrics_server.close()


def _run_service_bench(
    *,
    total_claims,
    submission_claims,
    baseline_claims,
    num_shards,
    num_campaigns,
    users_per_campaign,
    objects_per_campaign,
    claims_per_submission,
    max_batch,
    chunk_size,
    seed,
    method,
    read_methods,
    read_claims,
    num_reads,
    workers,
    hosts,
    replicas,
    replication_sync,
    start_method,
    smoke,
    durable_claims,
    trace_output,
    metrics_server,
) -> dict:
    bulk, bulk_truths = _bench_bulk(
        total_claims=total_claims,
        num_campaigns=num_campaigns,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        num_shards=num_shards,
        max_batch=max_batch,
        chunk_size=chunk_size,
        seed=seed,
        method=method,
        metrics_server=metrics_server,
    )
    # Instrumentation overhead: interleaved obs-on/obs-off pairs, best
    # rate of each.  Single runs are tens of milliseconds, so run-to-
    # run scheduler noise dwarfs the real cost; best-of-N on both
    # sides measures the achievable rate each way.
    overhead_reps = 2
    enabled_rates = [bulk["claims_per_sec"]]
    disabled_rates = []
    for _ in range(overhead_reps):
        overhead_kwargs = dict(
            total_claims=total_claims,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
        )
        disabled, _ = _bench_bulk(obs=False, **overhead_kwargs)
        disabled_rates.append(disabled["claims_per_sec"])
        enabled, _ = _bench_bulk(**overhead_kwargs)
        enabled_rates.append(enabled["claims_per_sec"])
    obs_overhead = {
        "claims_per_sec_enabled": max(enabled_rates),
        "claims_per_sec_disabled": max(disabled_rates),
        "overhead_fraction": 1.0
        - max(enabled_rates) / max(max(disabled_rates), 1e-9),
        "reps": overhead_reps,
    }
    bulk_workers = None
    workers_match = None
    if workers > 0:
        bulk_workers, worker_truths = _bench_bulk(
            total_claims=total_claims,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
            workers=workers,
            start_method=start_method,
            metrics_server=metrics_server,
        )
        workers_match = all(
            np.array_equal(bulk_truths[cid], worker_truths[cid])
            for cid in bulk_truths
        )
    bulk_hosts = None
    hosts_match = None
    failover = None
    if hosts > 0:
        bulk_hosts, hosts_truths = _bench_bulk(
            total_claims=total_claims,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
            hosts=hosts,
            metrics_server=metrics_server,
        )
        hosts_match = all(
            np.array_equal(bulk_truths[cid], hosts_truths[cid])
            for cid in bulk_truths
        )
        failover_metrics, failover_truths = _bench_bulk(
            total_claims=total_claims,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
            hosts=hosts,
            midstream=_kill_one_host,
        )
        supervision = failover_metrics["supervision"]
        failover = {
            "restarts": supervision["restarts"],
            "recovery_seconds": supervision["last_failover_seconds"],
            "truths_match_bitwise": bool(
                all(
                    np.array_equal(bulk_truths[cid], failover_truths[cid])
                    for cid in bulk_truths
                )
            ),
            "claims_per_sec": failover_metrics["claims_per_sec"],
        }
    replication = None
    if replicas > 0:
        replication = _bench_replication(
            total_claims=durable_claims,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            method=method,
            replicas=replicas,
            sync=replication_sync,
            metrics_server=metrics_server,
        )
    submissions = _bench_submissions(
        total_claims=submission_claims,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        num_shards=num_shards,
        max_batch=max_batch,
        seed=seed,
        method=method,
    )
    baseline = _bench_baseline(
        total_claims=baseline_claims,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        seed=seed,
    )
    durable = _bench_durable_ack(
        total_claims=durable_claims,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        num_shards=num_shards,
        max_batch=max_batch,
        chunk_size=chunk_size,
        seed=seed,
        method=method,
        trace_output=trace_output,
        metrics_server=metrics_server,
    )
    methods = {
        m: bench_method_reads(
            method=m,
            total_claims=read_claims,
            num_reads=num_reads,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
        )
        for m in read_methods
    }
    # The per-method section already ran the dense agreement check for
    # every read method; only recompute when the bench method was
    # excluded from read_methods.
    if method in methods:
        rmse = methods[method]["streaming_vs_batch_rmse"]
    else:
        rmse = streaming_agreement_rmse(method=method, seed=seed)
    report = {
        "config": {
            "total_claims": total_claims,
            "submission_claims": submission_claims,
            "baseline_claims": baseline_claims,
            "num_shards": num_shards,
            "num_campaigns": num_campaigns,
            "users_per_campaign": users_per_campaign,
            "objects_per_campaign": objects_per_campaign,
            "claims_per_submission": claims_per_submission,
            "max_batch": max_batch,
            "chunk_size": chunk_size,
            "seed": seed,
            "method": method,
            "read_methods": list(read_methods),
            "read_claims": read_claims,
            "num_reads": num_reads,
            "workers": workers,
            "hosts": hosts,
            "replicas": replicas,
            "smoke": smoke,
        },
        "bulk": bulk,
        "submissions": submissions,
        "baseline": baseline,
        "speedup_bulk_vs_baseline": (
            bulk["claims_per_sec"] / max(baseline["claims_per_sec"], 1e-9)
        ),
        "speedup_submissions_vs_baseline": (
            submissions["claims_per_sec"]
            / max(baseline["claims_per_sec"], 1e-9)
        ),
        "streaming_vs_batch_rmse": rmse,
        "methods": methods,
        "obs_overhead": obs_overhead,
        "durable": durable,
    }
    if metrics_server is not None:
        report["metrics_url"] = metrics_server.url
    if bulk_workers is not None:
        report["bulk_workers"] = bulk_workers
        report["speedup_workers_vs_single"] = bulk_workers[
            "claims_per_sec"
        ] / max(bulk["claims_per_sec"], 1e-9)
        report["workers_truths_match_bitwise"] = bool(workers_match)
    if bulk_hosts is not None:
        report["bulk_hosts"] = bulk_hosts
        report["speedup_hosts_vs_single"] = bulk_hosts[
            "claims_per_sec"
        ] / max(bulk["claims_per_sec"], 1e-9)
        report["hosts_truths_match_bitwise"] = bool(hosts_match)
        report["failover"] = failover
    if replication is not None:
        report["replication"] = replication
    if bulk_workers is not None or bulk_hosts is not None:
        # Extra processes can only beat the single process when the
        # hardware can actually run them in parallel; record what was
        # available so readers can judge the speedup numbers.
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-POSIX
            cpus = os.cpu_count() or 1
        report["available_cpus"] = cpus
    return report


def format_summary(report: dict) -> str:
    """Human-readable rendering of :func:`run_service_bench` output."""
    lines = [
        "service ingestion benchmark",
        "---------------------------",
        (
            f"bulk path:        {report['bulk']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['bulk']['claims']:,} claims, "
            f"{report['bulk']['batches']} batches)"
        ),
        (
            f"submission path:  "
            f"{report['submissions']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['submissions']['claims']:,} claims)"
        ),
    ]
    if "bulk_workers" in report:
        bw = report["bulk_workers"]
        lines.append(
            f"bulk, {bw['workers']} workers: "
            f"{bw['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['speedup_workers_vs_single']:.2f}x "
            f"single-process, truths bitwise "
            f"{'equal' if report['workers_truths_match_bitwise'] else 'DIFFER'})"
        )
    if "bulk_hosts" in report:
        bh = report["bulk_hosts"]
        fo = report["failover"]
        lines += [
            (
                f"bulk, {bh['hosts']} hosts:   "
                f"{bh['claims_per_sec']:>12,.0f}"
                f" claims/s  ({report['speedup_hosts_vs_single']:.2f}x "
                f"single-process, truths bitwise "
                f"{'equal' if report['hosts_truths_match_bitwise'] else 'DIFFER'})"
            ),
            (
                f"failover:         recovered in "
                f"{fo['recovery_seconds']:.2f} s "
                f"({fo['restarts']} restart(s), truths bitwise "
                f"{'equal' if fo['truths_match_bitwise'] else 'DIFFER'})"
            ),
        ]
    lines += [
        (
            f"baseline server:  {report['baseline']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['baseline']['claims']:,} claims)"
        ),
        (
            f"speedup:          "
            f"{report['speedup_bulk_vs_baseline']:.1f}x bulk, "
            f"{report['speedup_submissions_vs_baseline']:.1f}x submissions"
        ),
        (
            f"batch latency:    "
            f"p50 {report['bulk']['batch_latency_p50_ms']:.3f} ms, "
            f"p99 {report['bulk']['batch_latency_p99_ms']:.3f} ms"
        ),
        (
            f"streaming vs batch {report['config'].get('method', 'crh')} "
            f"RMSE: {report['streaming_vs_batch_rmse']:.2e}"
        ),
    ]
    if "batch_flush_p99_ms" in report["bulk"]:
        lines.append(
            f"flush histogram:  "
            f"p50 {report['bulk']['batch_flush_p50_ms']:.3f} ms, "
            f"p99 {report['bulk']['batch_flush_p99_ms']:.3f} ms "
            f"(from repro_batch_flush_seconds)"
        )
    if "obs_overhead" in report:
        oo = report["obs_overhead"]
        lines.append(
            f"obs overhead:     "
            f"{oo['overhead_fraction']:+.1%} claims/s "
            f"({oo['claims_per_sec_enabled']:,.0f} on vs "
            f"{oo['claims_per_sec_disabled']:,.0f} off)"
        )
    if "durable" in report:
        d = report["durable"]
        lines.append(
            f"durable ack:      "
            f"p50 {d['durable_ack_p50_ms']:.2f} ms, "
            f"p99 {d['durable_ack_p99_ms']:.2f} ms "
            f"(fsync={d['fsync']}, {d['commit_groups']} groups)"
        )
    if "replication" in report:
        rp = report["replication"]
        lines += [
            (
                f"replication ({rp['replicas']} standby(s), "
                f"{rp['sync']}): "
                f"{rp['claims_per_sec']:>12,.0f} claims/s ingest, "
                f"ship p99 {rp['ship_p99_ms']:.2f} ms"
            ),
            (
                f"replica reads:    "
                f"{rp['replica_reads_per_sec']:>12,.0f} reads/s vs "
                f"{rp['primary_reads_per_sec']:,.0f} on the primary "
                f"({rp['read_fanout_vs_primary']:.2f}x, truths bitwise "
                f"{'equal' if rp['replica_truths_match_bitwise'] else 'DIFFER'})"
            ),
            (
                f"promotion:        {rp['promotion_seconds']:.3f} s to "
                f"LSN {rp['watermark_lsn']} (truths bitwise "
                f"{'equal' if rp['promotion_truths_match_bitwise'] else 'DIFFER'}, "
                f"budget "
                f"{'preserved' if rp['budget_spent_matches'] else 'LOST'})"
            ),
        ]
    if "metrics_url" in report:
        lines.append(f"metrics endpoint: {report['metrics_url']}")
    for name, section in report.get("methods", {}).items():
        lines += [
            "",
            (
                f"read path [{name}], {section['claims']:,} claims, "
                f"{section['streaming']['reads']} reads:"
            ),
            (
                f"  streaming: mean {section['streaming']['read_ms_mean']:.3f} ms, "
                f"final {section['streaming']['final_read_ms']:.3f} ms"
            ),
            (
                f"  full refit: mean {section['full']['read_ms_mean']:.3f} ms, "
                f"final {section['full']['final_read_ms']:.3f} ms"
            ),
            (
                f"  speedup: {section['read_speedup_mean']:.1f}x mean, "
                f"{section['read_speedup_final']:.1f}x final; "
                f"streaming vs batch RMSE "
                f"{section['streaming_vs_batch_rmse']:.2e}"
            ),
        ]
    return "\n".join(lines)
