"""Throughput/latency measurement harness for the ingestion service.

Shared by the ``repro service-bench`` CLI subcommand and
``benchmarks/bench_service_throughput.py``.  Three measured paths:

* **bulk** — pre-resolved columnar chunks through
  ``IngestService.submit_columns`` (the gateway hot path);
* **submissions** — protocol-shaped ``ClaimSubmission`` objects through
  ``IngestService.submit`` (the crowdsensing adapter path);
* **baseline** — the classic per-message ``AggregationServer``:
  JSON-serialised transport, per-object submission lists, one full
  truth-discovery fit at finalise.

Traffic is materialised before the clock starts, so the numbers measure
ingestion and aggregation only.  The harness also runs a dense
streaming-vs-batch agreement check (RMSE between the service's
incremental truths and a from-scratch CRH refit on identical claims).
"""

from __future__ import annotations

import itertools
import os
import time

import numpy as np

from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.server import AggregationServer
from repro.crowdsensing.transport import InProcessTransport
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.loadgen import LoadGenerator
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.crh import CRH


def _percentile_ms(latencies: np.ndarray, q: float) -> float:
    if latencies.size == 0:
        return 0.0
    return float(np.percentile(latencies, q) * 1e3)


def _bench_bulk(
    *,
    total_claims: int,
    num_campaigns: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    num_shards: int,
    max_batch: int,
    chunk_size: int,
    seed: int,
    workers: int = 0,
    start_method: str = "spawn",
) -> tuple[dict, dict]:
    """One bulk-path run; returns (metrics, final truths per campaign).

    With ``workers > 0`` the clock covers ``sync_workers()`` too, so
    multi-process throughput counts *aggregated* claims — not frames
    parked in a pipe — and is directly comparable to the in-process
    run.  The final truths are snapshotted outside the clock; the
    caller uses them for the single- vs multi-process bitwise check.
    """
    config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
    service = IngestService(config, workers=workers,
                            start_method=start_method)
    per_campaign_chunks = []
    generators = []
    per_campaign = max(total_claims // num_campaigns, 1)
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"bulk-c{c}",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed + c,
        )
        generators.append(gen)
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=users_per_campaign,
            user_ids=gen.user_ids,
        )
        per_campaign_chunks.append(
            list(gen.column_chunks(per_campaign, chunk_size=chunk_size))
        )
    # Interleave arrivals round-robin across campaigns, the way real
    # traffic mixes — campaign-sequential replay would keep exactly one
    # shard (and so one worker) busy at a time.
    chunks = [
        chunk
        for group in itertools.zip_longest(*per_campaign_chunks)
        for chunk in group
        if chunk is not None
    ]

    start = time.perf_counter()
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id, chunk.user_slots, chunk.object_slots,
            chunk.values,
        )
        if i % 16 == 15:
            service.pump()
    service.flush()
    service.sync_workers()
    elapsed = time.perf_counter() - start

    truths = {
        gen.campaign_id: service.snapshot(gen.campaign_id).truths
        for gen in generators
    }
    accepted = service.stats.claims_accepted
    lats = service.batch_latencies()
    service.close()
    return {
        "claims": int(accepted),
        "seconds": elapsed,
        "claims_per_sec": accepted / max(elapsed, 1e-9),
        "batches": int(lats.size),
        "batch_latency_p50_ms": _percentile_ms(lats, 50),
        "batch_latency_p99_ms": _percentile_ms(lats, 99),
        "workers": workers,
        "stats": service.stats.as_dict(),
    }, truths


def _bench_submissions(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    claims_per_submission: int,
    num_shards: int,
    max_batch: int,
    seed: int,
) -> dict:
    config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
    service = IngestService(config)
    gen = LoadGenerator(
        "subs-c0",
        num_users=users_per_campaign,
        num_objects=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        random_state=seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=users_per_campaign,
        user_ids=gen.user_ids,
    )
    num_submissions = max(total_claims // claims_per_submission, 1)
    submissions = gen.submissions(num_submissions)

    start = time.perf_counter()
    for i, sub in enumerate(submissions):
        service.submit(sub)
        if i % 1024 == 1023:
            service.pump()
    service.flush()
    elapsed = time.perf_counter() - start

    accepted = service.stats.claims_accepted
    lats = service.batch_latencies()
    return {
        "claims": int(accepted),
        "seconds": elapsed,
        "claims_per_sec": accepted / max(elapsed, 1e-9),
        "batches": int(lats.size),
        "batch_latency_p50_ms": _percentile_ms(lats, 50),
        "batch_latency_p99_ms": _percentile_ms(lats, 99),
    }


def _bench_baseline(
    *,
    total_claims: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    claims_per_submission: int,
    seed: int,
) -> dict:
    gen = LoadGenerator(
        "base-c0",
        num_users=users_per_campaign,
        num_objects=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        random_state=seed,
    )
    num_submissions = max(total_claims // claims_per_submission, 1)
    submissions = gen.submissions(num_submissions)
    spec = CampaignSpec(
        campaign_id=gen.campaign_id,
        object_ids=gen.object_ids,
        lambda2=1.0,
        deadline=1e9,
        min_contributors=1,
    )
    transport = InProcessTransport(random_state=seed)
    server = AggregationServer(transport)

    start = time.perf_counter()
    sent = server.announce_campaign(spec, list(gen.user_ids))
    transport.drain_until_idle()
    for sub in submissions:
        transport.send(sub.user_id, server.node_id, sub)
    transport.drain_until_idle()
    server.collect()
    server.finalise(spec, assignments_sent=sent, announce=False)
    elapsed = time.perf_counter() - start

    claims = num_submissions * claims_per_submission
    return {
        "claims": int(claims),
        "seconds": elapsed,
        "claims_per_sec": claims / max(elapsed, 1e-9),
    }


def streaming_agreement_rmse(
    *,
    num_users: int = 60,
    num_objects: int = 40,
    refine_sweeps: int = 40,
    seed: int = 2020,
) -> float:
    """RMSE between service streaming truths and a full CRH refit.

    Uses a dense, duplicate-free round (every user claims every object
    once) so both estimators see identical evidence, and the raw
    squared-distance CRH whose fixed point StreamingCRH shares.
    """
    config = ServiceConfig(
        num_shards=1,
        max_batch=256,
        refine_sweeps=refine_sweeps,
        refine_every=10**9,  # refine once, at snapshot time
    )
    service = IngestService(config)
    gen = LoadGenerator(
        "dense-c0",
        num_users=num_users,
        num_objects=num_objects,
        random_state=seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=num_users,
        user_ids=gen.user_ids,
        aggregator="streaming",
    )
    round_subs = gen.dense_round()
    for sub in round_subs:
        service.submit(sub)
    snapshot = service.snapshot(gen.campaign_id)

    claims = ClaimMatrix.from_submissions(
        round_subs, user_ids=gen.user_ids, object_ids=gen.object_ids
    )
    reference = CRH(distance="squared").fit(claims)
    return float(
        np.sqrt(np.mean((snapshot.truths - reference.truths) ** 2))
    )


def run_service_bench(
    *,
    total_claims: int = 400_000,
    submission_claims: int = 80_000,
    baseline_claims: int = 20_000,
    num_shards: int = 4,
    num_campaigns: int = 8,
    users_per_campaign: int = 200,
    objects_per_campaign: int = 48,
    claims_per_submission: int = 8,
    max_batch: int = 2048,
    chunk_size: int = 2048,
    seed: int = 2020,
    workers: int = 0,
    start_method: str = "spawn",
    smoke: bool = False,
) -> dict:
    """Run all measured paths and return a JSON-serialisable summary.

    ``workers > 0`` adds a multi-process bulk run over the *same*
    chunk sequence next to the in-process one, plus a bitwise
    truth-agreement check between the two.  ``smoke`` shrinks every
    workload to a few thousand claims so CI can exercise the full code
    path (including the worker spawn path) in seconds.
    """
    if smoke:
        total_claims = min(total_claims, 24_000)
        submission_claims = min(submission_claims, 8_000)
        baseline_claims = min(baseline_claims, 4_000)
    bulk, bulk_truths = _bench_bulk(
        total_claims=total_claims,
        num_campaigns=num_campaigns,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        num_shards=num_shards,
        max_batch=max_batch,
        chunk_size=chunk_size,
        seed=seed,
    )
    bulk_workers = None
    workers_match = None
    if workers > 0:
        bulk_workers, worker_truths = _bench_bulk(
            total_claims=total_claims,
            num_campaigns=num_campaigns,
            users_per_campaign=users_per_campaign,
            objects_per_campaign=objects_per_campaign,
            num_shards=num_shards,
            max_batch=max_batch,
            chunk_size=chunk_size,
            seed=seed,
            workers=workers,
            start_method=start_method,
        )
        workers_match = all(
            np.array_equal(bulk_truths[cid], worker_truths[cid])
            for cid in bulk_truths
        )
    submissions = _bench_submissions(
        total_claims=submission_claims,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        num_shards=num_shards,
        max_batch=max_batch,
        seed=seed,
    )
    baseline = _bench_baseline(
        total_claims=baseline_claims,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        claims_per_submission=claims_per_submission,
        seed=seed,
    )
    rmse = streaming_agreement_rmse(seed=seed)
    report = {
        "config": {
            "total_claims": total_claims,
            "submission_claims": submission_claims,
            "baseline_claims": baseline_claims,
            "num_shards": num_shards,
            "num_campaigns": num_campaigns,
            "users_per_campaign": users_per_campaign,
            "objects_per_campaign": objects_per_campaign,
            "claims_per_submission": claims_per_submission,
            "max_batch": max_batch,
            "chunk_size": chunk_size,
            "seed": seed,
            "workers": workers,
            "smoke": smoke,
        },
        "bulk": bulk,
        "submissions": submissions,
        "baseline": baseline,
        "speedup_bulk_vs_baseline": (
            bulk["claims_per_sec"] / max(baseline["claims_per_sec"], 1e-9)
        ),
        "speedup_submissions_vs_baseline": (
            submissions["claims_per_sec"]
            / max(baseline["claims_per_sec"], 1e-9)
        ),
        "streaming_vs_batch_rmse": rmse,
    }
    if bulk_workers is not None:
        report["bulk_workers"] = bulk_workers
        report["speedup_workers_vs_single"] = bulk_workers[
            "claims_per_sec"
        ] / max(bulk["claims_per_sec"], 1e-9)
        report["workers_truths_match_bitwise"] = bool(workers_match)
        # Worker processes can only beat the single process when the
        # hardware can actually run them in parallel; record what was
        # available so readers can judge the speedup number.
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-POSIX
            cpus = os.cpu_count() or 1
        report["available_cpus"] = cpus
    return report


def format_summary(report: dict) -> str:
    """Human-readable rendering of :func:`run_service_bench` output."""
    lines = [
        "service ingestion benchmark",
        "---------------------------",
        (
            f"bulk path:        {report['bulk']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['bulk']['claims']:,} claims, "
            f"{report['bulk']['batches']} batches)"
        ),
        (
            f"submission path:  "
            f"{report['submissions']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['submissions']['claims']:,} claims)"
        ),
    ]
    if "bulk_workers" in report:
        bw = report["bulk_workers"]
        lines.append(
            f"bulk, {bw['workers']} workers: "
            f"{bw['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['speedup_workers_vs_single']:.2f}x "
            f"single-process, truths bitwise "
            f"{'equal' if report['workers_truths_match_bitwise'] else 'DIFFER'})"
        )
    lines += [
        (
            f"baseline server:  {report['baseline']['claims_per_sec']:>12,.0f}"
            f" claims/s  ({report['baseline']['claims']:,} claims)"
        ),
        (
            f"speedup:          "
            f"{report['speedup_bulk_vs_baseline']:.1f}x bulk, "
            f"{report['speedup_submissions_vs_baseline']:.1f}x submissions"
        ),
        (
            f"batch latency:    "
            f"p50 {report['bulk']['batch_latency_p50_ms']:.3f} ms, "
            f"p99 {report['bulk']['batch_latency_p99_ms']:.3f} ms"
        ),
        (
            f"streaming vs batch CRH RMSE: "
            f"{report['streaming_vs_batch_rmse']:.2e}"
        ),
    ]
    return "\n".join(lines)
