"""Bridge between the crowdsensing protocol layer and the service.

:class:`ServiceCampaignAdapter` lets the existing
:class:`~repro.crowdsensing.server.AggregationServer` delegate its
storage and aggregation to an :class:`~repro.service.ingest.IngestService`
without changing the protocol: ``announce_campaign`` registers the
campaign on its shard, every collected submission is offered to the
service instead of being filed in a Python list, and ``finalise`` reads
a :class:`~repro.service.snapshot.TruthSnapshot` instead of refitting
from scratch.

Semantics differ from the classic in-memory path in one documented way:
the service aggregates *streams*, so a user's retried submission counts
as additional evidence rather than replacing the original (the classic
path keeps only the last submission per user).  Campaigns that need
exactly-once semantics should keep the classic path or deduplicate
upstream.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.crowdsensing.campaign import CampaignSpec
from repro.crowdsensing.messages import ClaimSubmission
from repro.service.ingest import IngestResult, IngestService
from repro.service.snapshot import TruthSnapshot
from repro.utils.logging import get_logger

_LOGGER = get_logger("service.adapter")


class ServiceCampaignAdapter:
    """Runs crowdsensing campaigns on top of an ingestion service."""

    def __init__(self, service: IngestService) -> None:
        self._service = service

    @property
    def service(self) -> IngestService:
        return self._service

    # ------------------------------------------------------------------
    def register(
        self, spec: CampaignSpec, user_ids: Sequence[str]
    ) -> None:
        """Create service-side state for an announced campaign.

        Re-announcing a known campaign starts a fresh round: the old
        aggregator state is discarded, matching the classic server,
        whose ``announce_campaign`` resets the submission bucket.
        """
        if self._service.has_campaign(spec.campaign_id):
            self._service.unregister_campaign(spec.campaign_id)
        self._service.register_campaign(
            spec.campaign_id,
            spec.object_ids,
            max_users=max(len(user_ids), 1),
            user_ids=tuple(user_ids),
            method=spec.method,
        )

    def offer(self, submission: ClaimSubmission) -> IngestResult:
        """Feed one collected submission into the service."""
        result = self._service.submit(submission)
        if not result.ok:
            _LOGGER.warning(
                "service rejected submission from %s for %s: %s",
                submission.user_id,
                submission.campaign_id,
                result.reason,
            )
        return result

    # ------------------------------------------------------------------
    def finalise(
        self, spec: CampaignSpec
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], tuple]:
        """Flush the campaign and return (truths, weights, contributors).

        Truths/weights are ``None`` when fewer than
        ``spec.min_contributors`` distinct users contributed claims —
        the same quorum rule the classic path applies.  A campaign that
        was never announced finalises as failed (empty contributor
        set), matching the classic path's empty-bucket behaviour.
        """
        if not self._service.has_campaign(spec.campaign_id):
            return None, None, ()
        snapshot = self._service.snapshot(spec.campaign_id)
        contributors = tuple(sorted(snapshot.weights_by_user))
        if len(contributors) < spec.min_contributors:
            return None, None, contributors
        if not snapshot.seen_objects.all():
            # The classic path fails loudly when an object has no
            # claims; the service path must not publish the aggregator's
            # 0.0 placeholders as truths either.  Fail the campaign.
            _LOGGER.warning(
                "campaign %s failed: %d of %d objects received no claims",
                spec.campaign_id,
                int((~snapshot.seen_objects).sum()),
                len(spec.object_ids),
            )
            return None, None, contributors
        weights = np.array(
            [snapshot.weights_by_user[u] for u in contributors], dtype=float
        )
        return snapshot.truths.copy(), weights, contributors

    def snapshot(self, campaign_id: str) -> TruthSnapshot:
        """Live mid-campaign view (what the classic path cannot offer)."""
        return self._service.snapshot(campaign_id)
