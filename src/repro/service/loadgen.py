"""Synthetic traffic generation for the ingestion service.

The generator models the paper's claim process — per-object ground
truths, per-user error variances, optional Algorithm-2 perturbation via
the exponential-variance noise model — and materialises traffic in the
two shapes the service ingests:

* :meth:`LoadGenerator.submissions` — protocol-shaped
  :class:`~repro.crowdsensing.messages.ClaimSubmission` objects, each
  carrying one user's claims on a random object subset;
* :meth:`LoadGenerator.column_chunks` — pre-resolved columnar chunks
  for the bulk path.

Generation is vectorised and happens up front, so benchmarks measure
ingestion, not traffic synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.crowdsensing.messages import ClaimSubmission
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_int, ensure_positive


@dataclass(frozen=True)
class ColumnChunk:
    """One bulk work item: aligned user-slot / object-slot / value columns."""

    campaign_id: str
    user_slots: np.ndarray
    object_slots: np.ndarray
    values: np.ndarray

    @property
    def size(self) -> int:
        return self.values.size


class LoadGenerator:
    """Deterministic synthetic claim traffic for one campaign.

    Parameters
    ----------
    campaign_id:
        Campaign the traffic targets.
    num_users, num_objects:
        Population sizes; user slots are ``0..num_users-1`` with ids
        ``"user{slot}"``, objects are ``"obj{i}"``.
    claims_per_submission:
        Objects each protocol submission reports on (``<= num_objects``).
    noise_std:
        Per-claim observation noise; ``lambda2`` adds exponential-
        variance Gaussian perturbation on top (None disables it).
    """

    def __init__(
        self,
        campaign_id: str,
        *,
        num_users: int,
        num_objects: int,
        claims_per_submission: int = 8,
        noise_std: float = 0.25,
        lambda2: float | None = None,
        truth_scale: float = 10.0,
        random_state: RandomState = None,
    ) -> None:
        self.campaign_id = campaign_id
        self.num_users = ensure_int(num_users, "num_users", minimum=1)
        self.num_objects = ensure_int(num_objects, "num_objects", minimum=1)
        k = ensure_int(
            claims_per_submission, "claims_per_submission", minimum=1
        )
        if k > num_objects:
            raise ValueError(
                f"claims_per_submission {k} exceeds {num_objects} objects"
            )
        self.claims_per_submission = k
        self._noise_std = ensure_positive(noise_std, "noise_std", strict=False)
        self._lambda2 = (
            None if lambda2 is None else ensure_positive(lambda2, "lambda2")
        )
        self._rng = as_generator(random_state)
        self.truths = self._rng.uniform(0.0, truth_scale, size=num_objects)
        self.object_ids = tuple(f"obj{i}" for i in range(num_objects))
        self.user_ids = tuple(f"user{i}" for i in range(num_users))

    # ------------------------------------------------------------------
    def _claim_values(
        self, user_slots: np.ndarray, object_slots: np.ndarray
    ) -> np.ndarray:
        values = self.truths[object_slots] + self._rng.normal(
            0.0, self._noise_std, size=object_slots.size
        )
        if self._lambda2 is not None:
            # Algorithm 2's noise model: one variance draw per user-claim
            # batch would need per-submission grouping; per-claim draws
            # keep generation fully vectorised and the marginal identical.
            variances = self._rng.exponential(
                1.0 / self._lambda2, size=object_slots.size
            )
            values = values + self._rng.normal(0.0, 1.0, size=object_slots.size
                                               ) * np.sqrt(variances)
        return values

    def _random_columns(
        self, num_submissions: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = self.claims_per_submission
        user_slots = np.repeat(
            self._rng.integers(0, self.num_users, size=num_submissions), k
        )
        # Random object subset per submission, without replacement:
        # argsort of uniform noise gives k distinct columns per row.
        keys = self._rng.random((num_submissions, self.num_objects))
        object_slots = np.argpartition(keys, k - 1, axis=1)[:, :k].reshape(-1)
        object_slots = object_slots.astype(np.int64)
        values = self._claim_values(user_slots, object_slots)
        return user_slots, object_slots, values

    # ------------------------------------------------------------------
    def submissions(self, num_submissions: int) -> list[ClaimSubmission]:
        """Materialise protocol-shaped traffic (one message per user turn)."""
        ensure_int(num_submissions, "num_submissions", minimum=1)
        user_slots, object_slots, values = self._random_columns(
            num_submissions
        )
        k = self.claims_per_submission
        out = []
        for i in range(num_submissions):
            lo = i * k
            hi = lo + k
            out.append(
                ClaimSubmission(
                    campaign_id=self.campaign_id,
                    user_id=self.user_ids[user_slots[lo]],
                    object_ids=tuple(
                        self.object_ids[j] for j in object_slots[lo:hi]
                    ),
                    values=tuple(float(v) for v in values[lo:hi]),
                )
            )
        return out

    def column_chunks(
        self, total_claims: int, *, chunk_size: int = 2048
    ) -> Iterator[ColumnChunk]:
        """Yield bulk columnar chunks totalling ``total_claims`` claims."""
        ensure_int(total_claims, "total_claims", minimum=1)
        ensure_int(chunk_size, "chunk_size", minimum=1)
        remaining = total_claims
        while remaining > 0:
            n = min(chunk_size, remaining)
            user_slots = self._rng.integers(
                0, self.num_users, size=n
            ).astype(np.int64)
            object_slots = self._rng.integers(
                0, self.num_objects, size=n
            ).astype(np.int64)
            values = self._claim_values(user_slots, object_slots)
            yield ColumnChunk(
                campaign_id=self.campaign_id,
                user_slots=user_slots,
                object_slots=object_slots,
                values=values,
            )
            remaining -= n

    def dense_round(self) -> list[ClaimSubmission]:
        """One submission per user covering *every* object exactly once.

        This is the duplicate-free dense workload used for the
        streaming-vs-batch agreement check.
        """
        user_slots = np.repeat(
            np.arange(self.num_users), self.num_objects
        )
        object_slots = np.tile(
            np.arange(self.num_objects), self.num_users
        ).astype(np.int64)
        values = self._claim_values(user_slots, object_slots)
        n = self.num_objects
        return [
            ClaimSubmission(
                campaign_id=self.campaign_id,
                user_id=self.user_ids[s],
                object_ids=self.object_ids,
                values=tuple(float(v) for v in values[s * n:(s + 1) * n]),
            )
            for s in range(self.num_users)
        ]
