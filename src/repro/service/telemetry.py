"""Service-side telemetry: the obs registry wired into the pipeline.

:class:`ServiceTelemetry` is what one
:class:`~repro.service.ingest.IngestService` reports into.  It owns

* the service's :class:`~repro.obs.registry.MetricRegistry` (or the
  null registry when the service runs with ``obs=False``), with every
  hot-path histogram child pre-bound per shard — an observation is an
  index into a list, never a dict lookup;
* the :class:`~repro.obs.tracing.TraceCollector` for sampled
  per-submission traces;
* the cache of remote registry snapshots shipped by workers / shard
  hosts over the STATS RPC — refreshed only from the pump thread
  (where the frame protocol's strict ordering lives), read by the
  exposition thread;
* :meth:`snapshot`, which assembles the full service view: live
  histogram state, admission counters synthesised from
  :class:`~repro.service.ingest.ServiceStats` (the hot path pays one
  plain ``+=`` and nothing else), per-shard queue/processing gauges,
  live WAL counters, fabric supervision/RPC timings, and the merged
  remote snapshots tagged ``proc="workerN"``.

Metric names are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricRegistry,
    RegistrySnapshot,
    series_key,
)
from repro.obs.tracing import TraceCollector

#: Rejection reasons, in the order ServiceStats tracks them.
REJECT_REASONS = (
    "unknown-campaign",
    "unknown-object",
    "invalid-value",
    "capacity",
    "budget",
    "overflow",
)


class ServiceTelemetry:
    """All observability state of one ingestion service."""

    def __init__(
        self,
        num_shards: int,
        *,
        enabled: bool = True,
        trace_sample_every: int = 0,
    ) -> None:
        self.enabled = enabled
        self.num_shards = num_shards
        self.registry = MetricRegistry() if enabled else NULL_REGISTRY
        self.traces = TraceCollector(trace_sample_every)
        registry = self.registry
        queue_wait = registry.histogram(
            "repro_queue_wait_seconds",
            "time a work item spent queued on its shard",
            labels=("shard",),
        )
        batch_flush = registry.histogram(
            "repro_batch_flush_seconds",
            "micro-batch flush latency: WAL append + aggregator ingest",
            labels=("shard",),
        )
        # Pre-bound children, indexed by shard: the pump loop's only
        # telemetry cost is a list index plus a frexp.
        self.queue_wait = [
            queue_wait.labels(shard=i) for i in range(num_shards)
        ]
        self.batch_flush = [
            batch_flush.labels(shard=i) for i in range(num_shards)
        ]
        self.snapshot_read = registry.histogram(
            "repro_snapshot_read_seconds",
            "end-to-end snapshot() latency (pump + refresh + view)",
        )
        self.wal_commit = registry.histogram(
            "repro_wal_commit_seconds",
            "WAL group-commit latency (write+flush+fsync per group)",
            labels=("fsync",),
        )
        self.fabric_rpc = registry.histogram(
            "repro_fabric_rpc_seconds",
            "blocking worker/host RPC round-trip latency",
            labels=("proc",),
        )
        self.failover = registry.histogram(
            "repro_fabric_failover_seconds",
            "supervised shard-host restart+replay duration",
        )
        self.rehome = registry.histogram(
            "repro_fabric_rehome_seconds",
            "journal-sourced shard re-home duration after a permanent "
            "host loss",
        )
        #: Per-shard admission tallies (satellite: per-shard
        #: accepted/rejected): plain ints, bumped on the submit path.
        self.shard_claims_accepted = [0] * num_shards
        self.shard_claims_rejected = [0] * num_shards
        # WAL drain cursor: groups already folded into the histogram.
        self._wal_groups_seen = 0
        self._wal_commit_child = None
        #: worker_id -> RegistrySnapshot, refreshed from the pump
        #: thread, read (reference-swap only) by the scrape thread.
        self.remote_snapshots: dict[int, RegistrySnapshot] = {}
        self._failovers_seen = 0
        self._rehomes_seen = 0

    # ------------------------------------------------------------------
    # Pump-thread hooks (hot path).
    def on_dequeue(self, shard_index: int, waited: float, trace, state) -> None:
        """One work item left its shard queue (pre-batcher)."""
        self.queue_wait[shard_index].observe(waited)
        if trace is not None:
            pending = state.pending_traces
            if pending is None:
                pending = state.pending_traces = []
            pending.append(trace)

    def on_batch(
        self,
        shard_index: int,
        state,
        elapsed: float,
        lsn: Optional[int],
    ) -> None:
        """One micro-batch was logged and ingested/shipped."""
        self.batch_flush[shard_index].observe(elapsed)
        pending = state.pending_traces
        if pending:
            for trace in pending:
                self.traces.on_flushed(trace, lsn)
            pending.clear()

    # ------------------------------------------------------------------
    # WAL / fabric sampling (pump thread, off the per-claim path).
    def drain_wal(self, wal, fsync: str) -> None:
        """Fold new group-commit latencies into the fsync-mode histogram.

        A cursor over ``wal.groups_committed`` keeps this incremental:
        no WAL hot-path change, no double counting.  The latency deque
        is bounded, so a huge burst between drains can lose samples —
        the count/sum totals still come from the WAL's own counters at
        snapshot time.
        """
        total = wal.groups_committed
        seen = self._wal_groups_seen
        if total <= seen:
            return
        if self._wal_commit_child is None:
            self._wal_commit_child = self.wal_commit.labels(fsync=fsync)
        child = self._wal_commit_child
        new = total - seen
        latencies = list(wal.commit_latencies)
        for value in latencies[-new:] if new < len(latencies) else latencies:
            child.observe(value)
        self._wal_groups_seen = total

    def on_failover(self, supervisor) -> None:
        """Fold any newly measured failovers/re-homes into histograms."""
        seconds = supervisor.failover_seconds
        for value in seconds[self._failovers_seen:]:
            self.failover.observe(value)
        self._failovers_seen = len(seconds)
        rehomes = getattr(supervisor, "rehome_seconds", ())
        for value in rehomes[self._rehomes_seen:]:
            self.rehome.observe(value)
        self._rehomes_seen = len(rehomes)

    def refresh_remote(self, pool) -> None:
        """Pull worker/host registry snapshots (pump thread only).

        The scrape thread must never issue frames — it would interleave
        with the data plane — so remote stats are polled here and
        cached; a scrape between refreshes sees the previous capture.
        """
        if not self.enabled:
            return
        for handle in pool.handles:
            try:
                self.remote_snapshots[handle.worker_id] = handle.metrics()
            except Exception:
                # Telemetry must never poison the data plane: a handle
                # mid-crash will be surfaced by the next check()/pump.
                continue

    # ------------------------------------------------------------------
    def snapshot(self, service) -> RegistrySnapshot:
        """The full service view (exposition-thread safe: no RPCs)."""
        snap = self.registry.snapshot()
        stats = service.stats
        add = snap.add
        add("counter", series_key("repro_submissions_total"),
            float(stats.submissions))
        add("counter", series_key("repro_snapshot_reads_total"),
            float(stats.snapshot_reads))
        add("counter", series_key("repro_traces_sampled_total"),
            float(len(self.traces)))
        for reason, count in (
            ("unknown-campaign", stats.rejected_unknown_campaign),
            ("unknown-object", stats.rejected_unknown_object),
            ("invalid-value", stats.rejected_invalid_value),
            ("capacity", stats.rejected_capacity),
            ("budget", stats.rejected_budget),
            ("overflow", stats.rejected_overflow),
        ):
            add(
                "counter",
                series_key(
                    "repro_claims_rejected_total", {"reason": reason}
                ),
                float(count),
            )
        for i, shard in enumerate(service._shards):
            labels = {"shard": str(i)}
            add("counter",
                series_key("repro_claims_accepted_total", labels),
                float(self.shard_claims_accepted[i]))
            add("counter",
                series_key("repro_shard_claims_rejected_total", labels),
                float(self.shard_claims_rejected[i]))
            add("counter",
                series_key("repro_claims_processed_total", labels),
                float(shard.claims_processed))
            add("counter",
                series_key("repro_claims_dropped_total", labels),
                float(shard.claims_dropped))
            add("gauge",
                series_key("repro_queue_depth", labels),
                float(shard.queue_depth))
        durability = service.durability
        if durability is not None:
            wal = durability.wal
            add("counter", series_key("repro_wal_appends_total"),
                float(wal.records_written))
            add("counter", series_key("repro_wal_commit_groups_total"),
                float(wal.groups_committed))
            add("counter", series_key("repro_wal_syncs_total"),
                float(wal.syncs))
            add("gauge", series_key("repro_wal_durable_lag"),
                float(wal.last_lsn - wal.durable_lsn))
            add("counter", series_key("repro_wal_commit_seconds_total"),
                float(wal.commit_seconds))
            daemon = durability.compaction_daemon
            if daemon is not None:
                stats = daemon.stats()
                add("counter",
                    series_key("repro_compaction_policy_triggers_total"),
                    float(stats["policy_triggers"]))
                add("counter",
                    series_key("repro_compaction_runs_total"),
                    float(stats["compactions_run"]))
                add("counter",
                    series_key("repro_compaction_bytes_reclaimed_total"),
                    float(stats["bytes_reclaimed"]))
                add("counter",
                    series_key("repro_compaction_evaluations_total"),
                    float(stats["evaluations"]))
        replication = getattr(service, "replication", None)
        if replication is None and service.durability is not None:
            # A sender wired straight onto the manager (no
            # Topology.replicated) still deserves lag gauges.
            replication = service.durability.replication
        if replication is not None:
            repl = replication.stats()
            add("counter",
                series_key("repro_replication_semi_sync_timeouts_total"),
                float(repl["semi_sync_timeouts"]))
            for standby in repl["standbys"]:
                labels = {"standby": str(standby["index"])}
                add("gauge",
                    series_key("repro_replication_lag_lsn", labels),
                    float(standby["lag_lsn"]))
                add("gauge",
                    series_key("repro_replication_lag_seconds", labels),
                    float(standby["lag_seconds"]))
                add("gauge",
                    series_key("repro_replication_connected", labels),
                    1.0 if standby["connected"] else 0.0)
                add("counter",
                    series_key(
                        "repro_replication_records_shipped_total", labels
                    ),
                    float(standby["records_shipped"]))
                add("counter",
                    series_key(
                        "repro_replication_bytes_shipped_total", labels
                    ),
                    float(standby["bytes_shipped"]))
                add("counter",
                    series_key(
                        "repro_replication_reconnects_total", labels
                    ),
                    float(standby["reconnects"]))
            for link in replication.links:
                latencies = list(link.ship_latencies)
                if latencies:
                    hist = Histogram(series_key(
                        "repro_replication_ship_seconds",
                        {"standby": str(link.index)},
                    ))
                    for value in latencies:
                        hist.observe(value)
                    add("histogram", hist.key, {
                        "count": hist.count,
                        "sum": hist.sum,
                        "counts": hist.counts,
                    })
        # Chaos injection counters (zero-cardinality when no plan is
        # installed; one counter per fault point while one is).
        from repro.chaos import points as _chaos_points

        for point, count in sorted(_chaos_points.injected_counts().items()):
            add("counter",
                series_key(
                    "repro_chaos_faults_injected_total", {"point": point}
                ),
                float(count))
        # Failover watchdog: the detached auto_failover process shows
        # up as an armed gauge; an in-process watchdog (service.watchdog)
        # folds its full counter set.
        watchdog_proc = getattr(service, "watchdog_process", None)
        watchdog = getattr(service, "watchdog", None)
        if watchdog_proc is not None and watchdog is None:
            add("gauge", series_key("repro_watchdog_armed"),
                1.0 if watchdog_proc.poll() is None else 0.0)
        if watchdog is not None:
            stats = watchdog.stats()
            add("gauge", series_key("repro_watchdog_armed"),
                1.0 if stats["armed"] else 0.0)
            add("counter",
                series_key("repro_watchdog_heartbeats_total"),
                float(stats["heartbeats_sent"]))
            add("counter",
                series_key("repro_watchdog_heartbeat_misses_total"),
                float(stats["heartbeat_misses"]))
            add("counter",
                series_key("repro_watchdog_elections_total"),
                float(stats["elections"]))
            add("counter",
                series_key("repro_watchdog_failed_elections_total"),
                float(stats.get("failed_elections", 0)))
            add("counter",
                series_key("repro_watchdog_quorum_denied_total"),
                float(stats.get("quorum_denied", 0)))
            add("counter",
                series_key("repro_watchdog_votes_granted_total"),
                float(stats.get("votes_granted", 0)))
            add("counter",
                series_key("repro_watchdog_auto_promotions_total"),
                float(stats["auto_promotions"]))
            if stats["detection_seconds"] is not None:
                add("gauge",
                    series_key("repro_watchdog_detection_seconds"),
                    float(stats["detection_seconds"]))
            if stats["promotion_seconds"] is not None:
                add("gauge",
                    series_key("repro_watchdog_promotion_seconds"),
                    float(stats["promotion_seconds"]))
        refreshes = 0
        refresh_seconds = 0.0
        for shard in service._shards:
            for state in shard.campaigns.values():
                aggregator = state.aggregator
                count = getattr(aggregator, "refreshes", None)
                if count is None:
                    continue  # remote proxy: the worker reports its own
                refreshes += int(count)
                refresh_seconds += float(
                    getattr(aggregator, "refresh_seconds", 0.0)
                )
        add("counter", series_key("repro_refreshes_total"),
            float(refreshes))
        add("counter", series_key("repro_refresh_seconds_total"),
            refresh_seconds)
        pool = service.worker_pool
        if pool is not None:
            for handle in pool.handles:
                latencies = getattr(handle, "rpc_latencies", None)
                if latencies:
                    hist = Histogram(series_key(
                        "repro_fabric_rpc_seconds",
                        {"proc": f"worker{handle.worker_id}"},
                    ))
                    for value in list(latencies):
                        hist.observe(value)
                    add("histogram", hist.key, {
                        "count": hist.count,
                        "sum": hist.sum,
                        "counts": hist.counts,
                    })
            supervisor = getattr(pool, "supervisor", None)
            if supervisor is not None:
                add("counter",
                    series_key("repro_fabric_restarts_total"),
                    float(supervisor.restarts))
                lost = getattr(supervisor, "lost_hosts", ())
                add("gauge", series_key("repro_degraded_hosts"),
                    float(len(lost)))
                add("counter",
                    series_key("repro_fabric_hosts_lost_total"),
                    float(len(lost)))
                add("counter",
                    series_key("repro_fabric_rehomes_total"),
                    float(getattr(supervisor, "rehomes", 0)))
            placement = getattr(pool, "placement", None)
            if placement is not None:
                add("gauge", series_key("repro_placement_epoch"),
                    float(getattr(placement, "epoch", 0)))
            for worker_id, remote in list(self.remote_snapshots.items()):
                snap = snap.merge(
                    remote.relabel(proc=f"worker{worker_id}")
                )
        return snap


def timed(histogram):
    """Tiny context helper: ``with timed(h):`` observes the block."""
    return _Timed(histogram)


class _Timed:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)
