"""Per-user privacy-budget ledger for admission control.

The :class:`~repro.privacy.accountant.PrivacyAccountant` answers "what
has this user spent?" by scanning its event log — fine for audits,
too slow to consult on every submission of a high-rate stream.  The
:class:`BudgetLedger` keeps a running (epsilon, delta) total per user
so admission is an O(1) dict lookup, while still (optionally) recording
every admitted release into a wrapped accountant so the audit trail and
the fast path can never disagree about what was spent.

Admission uses basic composition, matching the accountant: a release is
admitted iff the user's composed epsilon and delta would both stay
within the ledger's caps.  Denied releases spend nothing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one ledger check.

    ``admitted`` is the verdict; ``reason`` is empty when admitted and a
    short machine-readable tag (``"epsilon-exhausted"`` /
    ``"delta-exhausted"``) otherwise.  ``remaining_epsilon`` reflects the
    state *after* the charge when admitted, before it when denied.
    """

    admitted: bool
    reason: str
    remaining_epsilon: float


class BudgetLedger:
    """Admission control against per-user (epsilon, delta) caps.

    Parameters
    ----------
    epsilon_cap:
        Maximum composed epsilon any single user may spend.
    delta_cap:
        Maximum composed delta (basic composition sums deltas too).
    accountant:
        Optional audit-trail accountant; every *admitted* charge is also
        recorded there.  Pass ``None`` on hot paths that only need the
        running totals.
    """

    def __init__(
        self,
        epsilon_cap: float,
        *,
        delta_cap: float = 1.0,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> None:
        self._epsilon_cap = ensure_positive(epsilon_cap, "epsilon_cap")
        self._delta_cap = ensure_in_range(delta_cap, "delta_cap", 0.0, 1.0)
        self._accountant = accountant
        self._spent_epsilon: dict[Hashable, float] = {}
        self._spent_delta: dict[Hashable, float] = {}
        #: Serialises every read-modify-write of the spent totals.  The
        #: ledger is the budget authority for the (multi-producer)
        #: ingest path: an unlocked check-then-charge could admit two
        #: concurrent releases against the same remaining headroom.
        #: Re-entrant so callers can compose several calls into one
        #: atomic section (``with ledger.lock: ...``) — e.g. the bulk
        #: path's check-all-then-charge-all, or admission plus its
        #: write-ahead charge record.
        self.lock = threading.RLock()
        self.admitted = 0
        self.denied = 0

    # ------------------------------------------------------------------
    @property
    def epsilon_cap(self) -> float:
        return self._epsilon_cap

    @property
    def delta_cap(self) -> float:
        return self._delta_cap

    @property
    def accountant(self) -> Optional[PrivacyAccountant]:
        """The wrapped audit accountant (None when running ledger-only)."""
        return self._accountant

    def spent(self, user_id: Hashable) -> LDPGuarantee:
        """Composed guarantee charged so far for ``user_id``."""
        return LDPGuarantee(
            epsilon=self._spent_epsilon.get(user_id, 0.0),
            delta=min(self._spent_delta.get(user_id, 0.0), 1.0),
        )

    def remaining_epsilon(self, user_id: Hashable) -> float:
        return self._epsilon_cap - self._spent_epsilon.get(user_id, 0.0)

    # ------------------------------------------------------------------
    def can_admit(self, user_id: Hashable, guarantee: LDPGuarantee) -> bool:
        """Would :meth:`admit` succeed?  Checks both caps, spends nothing.

        Lets callers admission-check a whole group before charging
        anyone (atomic multi-user admission on the bulk path — hold
        ``ledger.lock`` across the whole check-then-charge sequence).
        """
        with self.lock:
            eps = self._spent_epsilon.get(user_id, 0.0)
            if eps + guarantee.epsilon > self._epsilon_cap + 1e-12:
                return False
            delta = self._spent_delta.get(user_id, 0.0)
            return delta + guarantee.delta <= self._delta_cap + 1e-15

    def admit(
        self,
        user_id: Hashable,
        guarantee: LDPGuarantee,
        *,
        mechanism: str = "",
        label: str = "",
    ) -> AdmissionDecision:
        """Charge ``guarantee`` to ``user_id`` if it fits under the caps."""
        with self.lock:
            eps = self._spent_epsilon.get(user_id, 0.0)
            new_eps = eps + guarantee.epsilon
            if new_eps > self._epsilon_cap + 1e-12:
                self.denied += 1
                return AdmissionDecision(
                    admitted=False,
                    reason="epsilon-exhausted",
                    remaining_epsilon=self._epsilon_cap - eps,
                )
            delta = self._spent_delta.get(user_id, 0.0)
            new_delta = delta + guarantee.delta
            if new_delta > self._delta_cap + 1e-15:
                self.denied += 1
                return AdmissionDecision(
                    admitted=False,
                    reason="delta-exhausted",
                    remaining_epsilon=self._epsilon_cap - eps,
                )
            self._spent_epsilon[user_id] = new_eps
            self._spent_delta[user_id] = new_delta
            self.admitted += 1
            if self._accountant is not None:
                self._accountant.record(
                    user_id, guarantee, mechanism=mechanism, label=label
                )
            return AdmissionDecision(
                admitted=True,
                reason="",
                remaining_epsilon=self._epsilon_cap - new_eps,
            )

    def record_spent(
        self, user_id: Hashable, guarantee: LDPGuarantee
    ) -> None:
        """Re-apply an already-admitted charge without re-checking caps.

        Crash recovery replays the write-ahead log's charge records
        through this method: the charges were admitted before the crash
        and the data they covered was released, so they must be restored
        verbatim even if the composed total now sits above the cap
        (future :meth:`admit` calls will then deny, which is the safe
        direction).  Not for use on the live admission path.
        """
        with self.lock:
            self._spent_epsilon[user_id] = (
                self._spent_epsilon.get(user_id, 0.0) + guarantee.epsilon
            )
            self._spent_delta[user_id] = (
                self._spent_delta.get(user_id, 0.0) + guarantee.delta
            )
            self.admitted += 1
            if self._accountant is not None:
                self._accountant.record(
                    user_id, guarantee, mechanism="", label="recovered"
                )

    # ------------------------------------------------------------------
    def to_records(self) -> list[dict]:
        """Spent-budget state as JSON-friendly per-user records.

        Each record carries one user's composed totals; together with
        the caps this is the ledger's full durable state (the
        admitted/denied counters are observability, not state, and are
        not exported).  User ids must be JSON-serialisable for the
        records to survive a round-trip through a checkpoint file.
        """
        with self.lock:
            return [
                {
                    "user_id": user_id,
                    "epsilon": eps,
                    "delta": self._spent_delta.get(user_id, 0.0),
                }
                for user_id, eps in sorted(
                    self._spent_epsilon.items(), key=lambda kv: str(kv[0])
                )
            ]

    @classmethod
    def from_records(
        cls,
        records: list[dict],
        *,
        epsilon_cap: float,
        delta_cap: float = 1.0,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> "BudgetLedger":
        """Rebuild a ledger from :meth:`to_records` output.

        Spent totals are restored verbatim — even above the caps (a
        restart must never hand exhausted users fresh budget), in which
        case the user's next :meth:`admit` is denied.
        """
        ledger = cls(
            epsilon_cap, delta_cap=delta_cap, accountant=accountant
        )
        for record in records:
            user_id = record["user_id"]
            eps = float(record["epsilon"])
            delta = float(record["delta"])
            if eps < 0 or delta < 0:
                raise ValueError(
                    f"negative spent budget in record for {user_id!r}"
                )
            if user_id in ledger._spent_epsilon:
                raise ValueError(f"duplicate record for user {user_id!r}")
            ledger._spent_epsilon[user_id] = eps
            ledger._spent_delta[user_id] = delta
        return ledger

    # ------------------------------------------------------------------
    def worst_case(self) -> LDPGuarantee:
        """Elementwise-worst composed guarantee across all charged users.

        Takes the maximum epsilon and the maximum delta independently
        (possibly from different users), so the result bounds *every*
        user's composed guarantee — a single-user maximum under a
        lexicographic order would understate delta whenever the
        biggest epsilon-spender is not the biggest delta-spender.
        """
        with self.lock:
            if not self._spent_epsilon:
                return LDPGuarantee(epsilon=0.0, delta=0.0)
            return LDPGuarantee(
                epsilon=max(self._spent_epsilon.values()),
                delta=min(
                    max(self._spent_delta.values(), default=0.0), 1.0
                ),
            )

    @property
    def num_users(self) -> int:
        """Users with at least one admitted charge."""
        return len(self._spent_epsilon)

    def reset(self) -> None:
        with self.lock:
            self._spent_epsilon.clear()
            self._spent_delta.clear()
            self.admitted = 0
            self.denied = 0
