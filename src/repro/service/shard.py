"""Campaign sharding: state partitioning for the ingestion service.

Campaign state (id tables, micro-batcher, aggregator) is partitioned
across N shards by a stable hash of the campaign id, so every claim for
a campaign lands on the same shard and shards share nothing.  Within
one process this bounds each pump step's working set; the same routing
function lets a deployment split shards across worker processes without
re-partitioning (see ROADMAP "Architecture").
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.service.aggregator import IncrementalAggregator
from repro.service.batcher import MicroBatcher
from repro.service.snapshot import TruthSnapshot
from repro.privacy.ldp import LDPGuarantee


def shard_for(campaign_id: str, num_shards: int) -> int:
    """Deterministic, platform-stable shard index for a campaign.

    Uses CRC32 rather than :func:`hash` so routing survives process
    restarts and ``PYTHONHASHSEED`` (claims must never migrate between
    shards mid-campaign).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return zlib.crc32(campaign_id.encode("utf-8")) % num_shards


class CampaignState:
    """Everything one shard holds for one campaign."""

    __slots__ = (
        "campaign_id",
        "object_ids",
        "object_index",
        "user_table",
        "user_index",
        "capacity",
        "cost",
        "batcher",
        "aggregator",
        "claims_accepted",
        "claims_by_slot",
        "user_lock",
        "_object_cache",
        "pending_traces",
    )

    def __init__(
        self,
        campaign_id: str,
        object_ids: Sequence,
        *,
        capacity: int,
        aggregator: IncrementalAggregator,
        max_batch: int,
        user_ids: Optional[Sequence[str]] = None,
        cost: Optional[LDPGuarantee] = None,
    ) -> None:
        self.campaign_id = campaign_id
        self.object_ids = tuple(object_ids)
        self.object_index = {o: i for i, o in enumerate(self.object_ids)}
        if len(self.object_index) != len(self.object_ids):
            raise ValueError("object_ids must be unique")
        self.capacity = capacity
        self.user_table: list[str] = list(user_ids or [])
        if len(self.user_table) > capacity:
            raise ValueError(
                f"{len(self.user_table)} pre-registered users exceed "
                f"capacity {capacity}"
            )
        self.user_index = {u: i for i, u in enumerate(self.user_table)}
        if len(self.user_index) != len(self.user_table):
            # Two slots sharing one identity would let bulk admission
            # charge a user once for two slots' worth of claims.
            raise ValueError("user_ids must be unique")
        self.cost = cost
        self.batcher = MicroBatcher(max_batch)
        self.aggregator = aggregator
        self.claims_accepted = 0
        self.claims_by_slot = np.zeros(capacity, dtype=np.int64)
        # Guards user_table/user_index growth: slots are assigned on the
        # (possibly multi-threaded) submit path, and a torn check-then-
        # append would give two slots one identity — which would let
        # bulk admission under-charge privacy budget.
        self.user_lock = threading.Lock()
        # Submissions typically reuse the same object_ids tuple; cache the
        # tuple -> index-array translation so the hot path never re-maps.
        self._object_cache: dict[tuple, np.ndarray] = {}
        # Sampled traces whose claims are in the batcher but whose batch
        # has not flushed yet (None until the first trace arrives).
        self.pending_traces: Optional[list] = None

    # ------------------------------------------------------------------
    def user_slot(self, user_id: str) -> int:
        """Slot for ``user_id``, assigning the next free one; -1 if full.

        Thread-safe: concurrent submitters for the same new user get
        the same slot.
        """
        slot = self.user_index.get(user_id)
        if slot is not None:
            return slot
        with self.user_lock:
            slot = self.user_index.get(user_id)
            if slot is not None:
                return slot
            if len(self.user_table) >= self.capacity:
                return -1
            slot = len(self.user_table)
            self.user_table.append(user_id)
            self.user_index[user_id] = slot
            return slot

    def ensure_placeholder_slots(self, top_slot: int) -> None:
        """Name every slot up to ``top_slot`` (``"slot:N"`` placeholders).

        The bulk path addresses users by slot index; this keeps the id
        table covering them so snapshots can name contributors.  Safe
        under concurrent callers — the extension happens in one locked
        sweep.
        """
        with self.user_lock:
            while len(self.user_table) <= top_slot:
                slot = len(self.user_table)
                user_id = f"slot:{slot}"
                self.user_table.append(user_id)
                self.user_index[user_id] = slot

    #: Cap on distinct object-id tuples cached per campaign; workloads
    #: where every submission picks a fresh random subset would
    #: otherwise grow the cache linearly with stream length.
    _OBJECT_CACHE_LIMIT = 1024

    def object_slots(self, object_ids: tuple) -> Optional[np.ndarray]:
        """Index array for an object-id tuple; None when any id is unknown."""
        cached = self._object_cache.get(object_ids)
        if cached is not None:
            return cached
        try:
            slots = np.fromiter(
                (self.object_index[o] for o in object_ids),
                dtype=np.int64,
                count=len(object_ids),
            )
        except KeyError:
            return None
        if len(self._object_cache) < self._OBJECT_CACHE_LIMIT:
            self._object_cache[object_ids] = slots
        return slots

    def contributors(self) -> dict[str, float]:
        """Current weight for every user with at least one accepted claim.

        Pre-registered users that never submitted are excluded, so the
        mapping doubles as the campaign's contributor set.
        """
        weights = self.aggregator.weights()
        return {
            u: float(weights[i])
            for i, u in enumerate(self.user_table)
            if self.claims_by_slot[i] > 0
        }

    def snapshot(self) -> TruthSnapshot:
        """Immutable read-side view of the campaign's current state."""
        return TruthSnapshot(
            campaign_id=self.campaign_id,
            object_ids=self.object_ids,
            truths=self.aggregator.truths(),
            seen_objects=self.aggregator.seen_objects(),
            weights_by_user=self.contributors(),
            claims_ingested=self.aggregator.claims_ingested,
            batches_ingested=self.aggregator.batches_ingested,
            pending_claims=self.batcher.pending,
        )


class Shard:
    """One shard: a bounded work queue plus the campaigns routed to it.

    Work items are pre-validated at ingress (admission, id resolution),
    so the pump loop is pure array movement: drain items into the
    campaign's micro-batcher, feed completed batches to the aggregator,
    and record per-batch service latency for the benchmark's p50/p99.

    A shard is single-consumer (one thread pumps) but safely
    multi-producer: enqueue and the pump's queue takeover run under a
    per-shard lock, so concurrent submitters cannot corrupt the queue
    or the drop accounting.  Campaign state itself is only ever touched
    by the pumping thread.

    When a durability hook is set (``shard.durability``), every
    micro-batch is appended to the write-ahead log immediately before
    it reaches the aggregator, and read-forced refreshes are logged so
    crash recovery can reproduce their timing.
    """

    #: Retained per-batch latency samples (a bounded window: the list
    #: would otherwise grow forever in a long-running service).
    LATENCY_WINDOW = 4096

    def __init__(
        self, index: int, *, queue_capacity: int, durability=None
    ) -> None:
        self.index = index
        self._queue_capacity = queue_capacity
        self._queue: list[tuple] = []
        self._head = 0
        self._lock = threading.Lock()
        self._reserved = 0
        self.campaigns: dict[str, CampaignState] = {}
        self.batch_latencies: deque[float] = deque(maxlen=self.LATENCY_WINDOW)
        self.durability = durability
        #: :class:`~repro.service.telemetry.ServiceTelemetry` hook, set
        #: by the owning service (None for bare shards in tests).
        self.telemetry = None
        self.items_dropped = 0
        self.claims_dropped = 0
        self.claims_processed = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue) - self._head

    @property
    def has_room(self) -> bool:
        return self.queue_depth + self._reserved < self._queue_capacity

    def register(self, state: CampaignState) -> None:
        self.campaigns[state.campaign_id] = state

    def try_reserve(self) -> bool:
        """Atomically claim one queue slot for a later ``enqueue``.

        The reject-overflow path must decide *before* charging privacy
        budget whether the queue will take the item; a bare has_room
        check can be invalidated by a concurrent producer between the
        check and the enqueue, which would spend epsilon on a refused
        submission.  A reservation cannot be stolen.
        """
        with self._lock:
            if (
                len(self._queue) - self._head + self._reserved
                >= self._queue_capacity
            ):
                return False
            self._reserved += 1
            return True

    def cancel_reservation(self) -> None:
        """Release a reservation whose submission was refused later."""
        with self._lock:
            self._reserved -= 1

    def enqueue(
        self, item: tuple, *, overflow: str, reserved: bool = False
    ) -> bool:
        """Queue one work item; apply ``overflow`` policy when full.

        Returns True when the item was queued.  Under ``"drop_oldest"``
        the oldest queued item is evicted to make room (the new item is
        always queued); under ``"reject"`` the new item is refused
        unless the caller holds a reservation (``reserved=True``),
        which guarantees room.  Safe to call from multiple producer
        threads.
        """
        with self._lock:
            if reserved:
                self._reserved -= 1
            elif (
                self.queue_depth + self._reserved >= self._queue_capacity
            ):
                if overflow == "reject":
                    return False
                # drop_oldest: evict the head of the queue.
                evicted = self._queue[self._head]
                self._head += 1
                self.items_dropped += 1
                self.claims_dropped += len(evicted[3])
                self._compact()
            self._queue.append(item)
            return True

    def pump(self) -> int:
        """Drain the queue into batchers/aggregators; return claims moved.

        Takes over the queued items under the lock, then processes them
        outside it, so producers are blocked only for the swap (items
        they enqueue mid-pump wait for the next pump).
        """
        with self._lock:
            queue, head = self._queue, self._head
            self._queue = []
            self._head = 0
        moved = 0
        telemetry = self.telemetry
        now = time.perf_counter() if telemetry is not None else 0.0
        for item in queue[head:] if head else queue:
            # Items are (state, user_slots, object_slots, values) plus,
            # from the service's enqueue path, an enqueue timestamp and
            # an optional sampled trace; bare 4-tuples (tests, tools)
            # still work.
            state, user_slots, object_slots, values = item[:4]
            if self.campaigns.get(state.campaign_id) is not state:
                # The campaign was unregistered (or re-registered fresh)
                # after this item was queued; drop it unprocessed.
                continue
            if telemetry is not None and len(item) > 4:
                telemetry.on_dequeue(
                    self.index, now - item[4], item[5], state
                )
            for batch in state.batcher.add_columns(
                user_slots, object_slots, values
            ):
                self._ingest(state, batch)
            n = len(values)
            # Contributor accounting happens here — when claims actually
            # reach the batcher — so items shed by drop_oldest eviction
            # never inflate a campaign's contributor set or quorum.
            state.claims_accepted += n
            if n and (user_slots == user_slots[0]).all():
                # Per-submission items carry a single user.
                state.claims_by_slot[user_slots[0]] += n
            else:
                state.claims_by_slot += np.bincount(
                    user_slots, minlength=state.capacity
                )
            moved += n
        self.claims_processed += moved
        return moved

    def flush(self) -> None:
        """Pump, then push every partial batch into its aggregator."""
        self.pump()
        for state in self.campaigns.values():
            self._flush_state(state)

    def flush_campaign(self, campaign_id: str) -> None:
        """Pump, then flush/refine only one campaign.

        Snapshot reads use this so polling one campaign does not force
        refinements (or full refits) of every co-sharded campaign.
        """
        self.pump()
        self._flush_state(self.campaigns[campaign_id])

    # ------------------------------------------------------------------
    def _flush_state(self, state: CampaignState) -> None:
        tail = state.batcher.flush()
        if tail is not None:
            self._ingest(state, tail)
        if (
            self.durability is not None
            and state.aggregator.refresh_changes_state
        ):
            # Read-forced refreshes change when the streaming backend
            # folds its staged claims; logging them lets recovery replay
            # the exact same refinement timing.  Refreshes with nothing
            # staged (and the timing-independent full-refit backend)
            # need no record.
            self.durability.log_refresh(state.campaign_id)
        state.aggregator.refresh()

    def _ingest(self, state: CampaignState, batch) -> None:
        start = time.perf_counter()
        lsn = None
        if self.durability is not None:
            # The write-ahead property: the batch is in the log before
            # the aggregator ever sees it.
            lsn = self.durability.log_batch(state, batch)
        state.aggregator.ingest(batch)
        elapsed = time.perf_counter() - start
        self.batch_latencies.append(elapsed)
        if self.telemetry is not None:
            self.telemetry.on_batch(self.index, state, elapsed, lsn)

    def _compact(self) -> None:
        # Reclaim the consumed prefix once it dominates the list.
        if self._head > 4096 and self._head * 2 > len(self._queue):
            del self._queue[: self._head]
            self._head = 0
