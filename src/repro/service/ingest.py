"""The claim-ingestion service: validation, admission, routing, pumping.

:class:`IngestService` is the front door of the high-throughput path.
One call-flow per claim source:

* ``submit(claim_submission)`` — the protocol path: one
  :class:`~repro.crowdsensing.messages.ClaimSubmission` at a time, as
  the crowdsensing server receives them off the wire;
* ``submit_columns(campaign_id, user_slots, object_slots, values)`` —
  the bulk path: aligned index/value columns, zero per-claim Python
  objects (gateways that already decode to arrays use this).

Every submission is validated (known campaign, known objects, finite
values), admission-controlled against the optional
:class:`~repro.service.ledger.BudgetLedger`, resolved to integer
user/object slots, and queued on the owning shard.  ``pump()`` moves
queued work into micro-batchers and incremental aggregators;
``snapshot(campaign_id)`` returns fresh truths at any time.

The service is single-threaded by design — shards are a state
partition, not threads — so callers control when aggregation work
happens (after each drain, on a timer, ...).  With ``workers=N`` the
aggregation half of each pump moves into shard-worker processes
(:mod:`repro.workers`): ``pump()`` then ships completed micro-batches
over a pipe and returns, while the workers aggregate concurrently —
validation, admission, and durability logging stay in this process.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.crowdsensing.messages import ClaimSubmission
from repro.privacy.ldp import LDPGuarantee
from repro.service.aggregator import make_aggregator, resolve_backend
from repro.service.ledger import BudgetLedger
from repro.service.shard import CampaignState, Shard, shard_for
from repro.service.snapshot import TruthSnapshot
from repro.service.topology import Topology
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_in_range, ensure_int

_LOGGER = get_logger("service.ingest")

#: Distinguishes "keyword not passed" from an explicit None in the
#: deprecated IngestService construction keywords.
_UNSET = object()


def _resolve_durability(durability):
    """A DurabilityManager from a manager / config / directory value."""
    if hasattr(durability, "wal"):
        return durability
    from repro.durable.manager import DurabilityManager

    return DurabilityManager(durability)

#: Accepted overflow policies for full shard queues.
OVERFLOW_POLICIES = ("reject", "drop_oldest")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the ingestion service (validated on construction)."""

    num_shards: int = 4
    max_batch: int = 1024
    queue_capacity: int = 65536
    overflow: str = "reject"
    decay: float = 1.0
    refine_sweeps: int = 2
    refine_every: int = 8192
    full_refit_max_cells: int = 4096
    #: Metric collection (:mod:`repro.obs`).  ``False`` swaps the
    #: registry for the null one — every observation becomes a no-op.
    obs: bool = True
    #: Per-submission tracing: sample 1 in N submit calls (0 = off).
    trace_sample_every: int = 0

    def __post_init__(self) -> None:
        ensure_int(self.num_shards, "num_shards", minimum=1)
        ensure_int(self.max_batch, "max_batch", minimum=1)
        ensure_int(self.queue_capacity, "queue_capacity", minimum=1)
        ensure_int(self.refine_sweeps, "refine_sweeps", minimum=1)
        ensure_int(self.refine_every, "refine_every", minimum=1)
        ensure_int(self.trace_sample_every, "trace_sample_every", minimum=0)
        ensure_in_range(self.decay, "decay", 0.0, 1.0, low_inclusive=False)
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one submit call: claims accepted, or why not."""

    accepted: int
    rejected: int = 0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.rejected == 0


class ServiceStats:
    """Running counters across the whole service (all shards).

    Historically a plain bag of counters; now a *view*: the hot-path
    counters (submissions, acceptances, rejections by reason) are still
    plain attributes the ingest path bumps with one ``+=``, but the WAL
    counters read live from the attached durability manager — a stats
    read can never see stale commit/lag numbers, no matter when the
    last pump sampled them.  The full metric surface (histograms,
    per-shard series, worker processes) lives on
    ``IngestService.metrics_snapshot()``; this class remains the
    stable, cheap summary the benchmarks and tests consume.
    """

    def __init__(self, service: Optional["IngestService"] = None) -> None:
        self._service = service
        self.submissions = 0
        self.claims_accepted = 0
        self.rejected_unknown_campaign = 0
        self.rejected_unknown_object = 0
        self.rejected_invalid_value = 0
        self.rejected_capacity = 0
        self.rejected_budget = 0
        self.rejected_overflow = 0
        #: Read-path observability: completed ``snapshot()`` calls and
        #: the wall seconds they cost end-to-end (pump + deferred
        #: aggregation + view construction).
        self.snapshot_reads = 0
        self.snapshot_read_seconds = 0.0
        # Cached WAL counters: refreshed on every live read and by
        # ``_sample_wal_stats`` (pump/flush/snapshot/close), so a stats
        # object that outlives its service still reports the last
        # sampled values instead of zeros.
        self._wal_appends = 0
        self._wal_commit_groups = 0
        self._wal_commit_seconds = 0.0
        self._wal_durable_lag = 0

    # ------------------------------------------------------------------
    # WAL observability (zero while running volatile): records
    # appended, group commits completed, accumulated commit seconds
    # (write+flush+fsync wall time — on the ingest thread for
    # synchronous commit, on the background writer under
    # ``async_commit``), and the durable-LSN lag (records appended but
    # not yet committed — the staged suffix a crash under async commit
    # could lose).  Read live from the WAL itself.
    def _live_wal(self):
        service = self._service
        if service is None or service.durability is None:
            return None
        return service.durability.wal

    @property
    def wal_appends(self) -> int:
        wal = self._live_wal()
        if wal is not None:
            self._wal_appends = wal.records_written
        return self._wal_appends

    @property
    def wal_commit_groups(self) -> int:
        wal = self._live_wal()
        if wal is not None:
            self._wal_commit_groups = wal.groups_committed
        return self._wal_commit_groups

    @property
    def wal_commit_seconds(self) -> float:
        wal = self._live_wal()
        if wal is not None:
            self._wal_commit_seconds = wal.commit_seconds
        return self._wal_commit_seconds

    @property
    def wal_durable_lag(self) -> int:
        wal = self._live_wal()
        if wal is not None:
            self._wal_durable_lag = wal.last_lsn - wal.durable_lsn
        return self._wal_durable_lag

    @property
    def claims_rejected(self) -> int:
        """All refused claims — accepted + rejected == submitted claims.

        Backpressure refusals (``rejected_overflow``) are included: the
        caller was told to back off and should retry.  Claims shed by
        ``drop_oldest`` eviction after acceptance are *not* rejections;
        see ``Shard.items_dropped`` / ``Shard.claims_dropped``.
        """
        return (
            self.rejected_unknown_campaign
            + self.rejected_unknown_object
            + self.rejected_invalid_value
            + self.rejected_capacity
            + self.rejected_budget
            + self.rejected_overflow
        )

    def as_dict(self) -> dict:
        """Counters as a flat JSON-friendly mapping (benchmark output)."""
        out = {
            "submissions": self.submissions,
            "claims_accepted": self.claims_accepted,
            "claims_rejected": self.claims_rejected,
            "rejected_unknown_campaign": self.rejected_unknown_campaign,
            "rejected_unknown_object": self.rejected_unknown_object,
            "rejected_invalid_value": self.rejected_invalid_value,
            "rejected_capacity": self.rejected_capacity,
            "rejected_budget": self.rejected_budget,
            "rejected_overflow": self.rejected_overflow,
            "snapshot_reads": self.snapshot_reads,
            "snapshot_read_seconds": self.snapshot_read_seconds,
            "wal_appends": self.wal_appends,
            "wal_commit_groups": self.wal_commit_groups,
            "wal_commit_seconds": self.wal_commit_seconds,
            "wal_durable_lag": self.wal_durable_lag,
        }
        service = self._service
        if service is not None:
            telemetry = service.telemetry
            out["queue_depths"] = service.queue_depths()
            out["shards"] = [
                {
                    "accepted": telemetry.shard_claims_accepted[i],
                    "rejected": telemetry.shard_claims_rejected[i],
                    "processed": shard.claims_processed,
                    "items_dropped": shard.items_dropped,
                    "claims_dropped": shard.claims_dropped,
                    "queue_depth": shard.queue_depth,
                }
                for i, shard in enumerate(service._shards)
            ]
        return out


class IngestService:
    """Sharded, micro-batched claim-ingestion pipeline.

    Parameters
    ----------
    config:
        Service tuning; defaults to :class:`ServiceConfig`'s defaults
        (4 shards, 1024-claim micro-batches, rejecting overflow).
    ledger:
        Optional privacy-budget admission control.  Campaigns registered
        with a per-submission ``cost`` charge it on every accepted
        submission; exhausted users are rejected with reason
        ``"budget"``.
    durability:
        Optional :class:`~repro.durable.manager.DurabilityManager`.
        When set, every registration, admitted budget charge, and
        flushed micro-batch is written ahead to an append-only log and
        the service's state can be rebuilt after a crash with
        :class:`~repro.durable.recovery.RecoveryManager`.  Attach it at
        construction (before registering campaigns).
    workers:
        ``0`` (default) keeps every shard in-process.  ``N >= 1``
        starts a :class:`~repro.workers.pool.WorkerPool` of N processes,
        each owning a contiguous range of shards: campaign aggregators
        live in the workers (as
        :class:`~repro.workers.handles.RemoteAggregator` proxies
        parent-side), while validation, admission, queues,
        micro-batching, and durability logging stay here.  Call
        :meth:`close` (or use the service as a context manager) to shut
        the pool down.
    hosts:
        ``N >= 1`` starts a :class:`~repro.net.fabric.FabricPool` of N
        shard-host *processes on TCP ports* instead of pipe workers —
        the multi-node deployment shape, exercised on localhost.  The
        service code path is identical to ``workers``: the fabric
        exposes the same pool surface, so every proxy works unchanged
        over sockets.  Mutually exclusive with ``workers``.
    supervise:
        With ``hosts``, journal every shard host and transparently
        restart-and-replay one that dies
        (:class:`~repro.net.supervisor.Supervisor`); recovered truths
        are bitwise-identical to an uncrashed run.  ``False``
        reproduces the pipe pool's fail-fast behaviour.
    start_method:
        ``multiprocessing`` start method for the pool (``"spawn"`` by
        default — safe on every supported platform and Python
        3.10–3.13; ``"fork"`` starts faster on POSIX).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        topology: Optional[Topology] = None,
        ledger: Optional[BudgetLedger] = None,
        durability=_UNSET,
        workers=_UNSET,
        hosts=_UNSET,
        supervise=_UNSET,
        start_method=_UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("durability", durability),
                ("workers", workers),
                ("hosts", hosts),
                ("supervise", supervise),
                ("start_method", start_method),
            )
            if value is not _UNSET
        }
        if legacy:
            if topology is not None:
                raise ValueError(
                    f"pass either topology= or the deprecated keywords "
                    f"({sorted(legacy)}), not both"
                )
            warnings.warn(
                "IngestService(durability=/workers=/hosts=/supervise=/"
                "start_method=) is deprecated; pass a single "
                "topology=Topology.in_process()/.workers(n)/.fabric(n)/"
                ".replicated(...) instead (see docs/api.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            topology = Topology._from_legacy_kwargs(**legacy)
        if topology is None:
            topology = Topology.in_process()
        self._topology = topology
        self._config = config if config is not None else ServiceConfig()
        self._ledger = ledger
        self._durability = None
        self._closed = False
        self._shards = [
            Shard(i, queue_capacity=self._config.queue_capacity)
            for i in range(self._config.num_shards)
        ]
        from repro.service.telemetry import ServiceTelemetry

        self.telemetry = ServiceTelemetry(
            self._config.num_shards,
            enabled=self._config.obs,
            trace_sample_every=self._config.trace_sample_every,
        )
        for shard in self._shards:
            shard.telemetry = self.telemetry
        self._campaign_shard: dict[str, Shard] = {}
        #: Worker-side REGISTER spec per campaign — what rebalancing
        #: replays on the target worker before shipping the state.
        self._worker_specs: dict[str, dict] = {}
        self.stats = ServiceStats(self)
        self._pool = None
        self._standby_pool = None
        self._replication = None
        self._status_server = None
        self._watchdog_proc = None
        self._watchdog_procs = []
        #: An in-process :class:`~repro.replication.watchdog.
        #: FailoverWatchdog` whose stats should fold into telemetry
        #: (set by tests or custom deployments; the auto_failover
        #: watchdog is a detached process and reports via its own exit).
        self.watchdog = None
        self._pumps = 0
        if topology.kind == "workers":
            from dataclasses import asdict

            from repro.workers.pool import WorkerPool

            self._pool = WorkerPool(
                self._config.num_shards,
                topology.processes,
                asdict(self._config),
                start_method=topology.start_method,
            )
        elif topology.kind == "fabric":
            from dataclasses import asdict

            from repro.net.fabric import FabricPool

            self._pool = FabricPool(
                self._config.num_shards,
                topology.processes,
                asdict(self._config),
                supervise=topology.supervise,
            )
            if self._pool.supervisor is not None:
                # Permanent host loss: the supervisor re-homes the
                # journaled state onto survivors, then this hook
                # re-points the campaign's aggregator proxy.
                self._pool.supervisor.on_rehome = self._repoint_campaign
        # A manager the service built itself (from a config or path)
        # has no other owner, so close() must close it; a manager the
        # caller passed in may outlive the service for recovery.
        self._owns_durability = topology.durability is not None and not hasattr(
            topology.durability, "wal"
        )
        if topology.kind == "replicated":
            self._start_replicated(topology)
        elif topology.durability is not None:
            self.attach_durability(
                _resolve_durability(topology.durability)
            )

    def _start_replicated(self, topology: Topology) -> None:
        """Bring up the replicated shape: logger, standbys, sender —
        and, under ``auto_failover``, the status listener plus the
        detached watchdog process that will promote a standby if this
        process dies."""
        from repro.replication.pool import StandbyPool
        from repro.replication.sender import ReplicationSender

        manager = _resolve_durability(topology.durability)
        pool = None
        status_server = None
        try:
            pool = StandbyPool(
                topology.standbys,
                manager.directory,
                directories=topology.standby_dirs,
                fsync=topology.standby_fsync,
            )
            self.attach_durability(manager)
            sender = ReplicationSender(
                pool.addresses,
                sync=topology.sync,
                ack_timeout=topology.ack_timeout,
            )
            manager.attach_replication(sender)
            if topology.auto_failover:
                from repro.replication.watchdog import (
                    PrimaryStatusServer,
                    allocate_peer_ports,
                    launch_watchdog,
                )

                status_server = PrimaryStatusServer(manager)
                status_server.start()
                count = topology.watchdogs
                peer_ports = (
                    allocate_peer_ports(count) if count > 1 else [None]
                )
                self._watchdog_procs = []
                for i in range(count):
                    peers = [
                        ("127.0.0.1", port)
                        for j, port in enumerate(peer_ports)
                        if j != i and port is not None
                    ]
                    self._watchdog_procs.append(
                        launch_watchdog(
                            status_server.address,
                            pool.addresses,
                            interval=topology.heartbeat_interval,
                            misses=topology.heartbeat_misses,
                            index=i,
                            peer_port=peer_ports[i],
                            peers=peers,
                        )
                    )
                self._watchdog_proc = self._watchdog_procs[0]
        except BaseException:
            if status_server is not None:
                status_server.stop()
            if pool is not None:
                pool.close()
            raise
        self._standby_pool = pool
        self._replication = sender
        self._status_server = status_server

    # ------------------------------------------------------------------
    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def topology(self) -> Topology:
        """The deployment shape this service was constructed with."""
        return self._topology

    @property
    def replication(self):
        """The WAL-shipping sender (None unless ``replicated``)."""
        return self._replication

    @property
    def standbys(self):
        """The owned standby pool (None unless ``replicated``)."""
        return self._standby_pool

    @property
    def status_server(self):
        """The primary's liveness listener (None unless
        ``auto_failover``)."""
        return self._status_server

    @property
    def watchdog_process(self):
        """The first detached ``repro watchdog`` process (None unless
        ``auto_failover``)."""
        return self._watchdog_proc

    @property
    def watchdog_processes(self):
        """Every detached watchdog process (the quorum fleet)."""
        return list(self._watchdog_procs)

    @property
    def ledger(self) -> Optional[BudgetLedger]:
        return self._ledger

    @property
    def durability(self):
        """The attached durability manager (None when running volatile)."""
        return self._durability

    def attach_durability(self, durability) -> None:
        """Wire a durability manager into the pipeline.

        Every already-registered campaign must be known to the manager
        (true for a fresh service, and for recovery, which seeds the
        manager from the recovered state) — otherwise those campaigns
        could never be checkpointed or replayed.
        """
        if self._durability is not None:
            raise RuntimeError("a durability manager is already attached")
        missing = set(self._campaign_shard) - durability.known_campaigns
        if missing:
            raise ValueError(
                f"campaigns registered before durability was attached: "
                f"{sorted(missing)}; attach durability first"
            )
        self._durability = durability
        for shard in self._shards:
            shard.durability = durability
        durability.bind(self)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def num_workers(self) -> int:
        """Worker processes behind the shards (0 = fully in-process)."""
        return 0 if self._pool is None else self._pool.num_workers

    @property
    def worker_pool(self):
        """The attached worker pool (None when running in-process)."""
        return self._pool

    @property
    def campaign_ids(self) -> list[str]:
        return sorted(self._campaign_shard)

    def has_campaign(self, campaign_id: str) -> bool:
        """O(1) registration check (``campaign_ids`` sorts every call)."""
        return campaign_id in self._campaign_shard

    def shard_of(self, campaign_id: str) -> int:
        """Shard index owning ``campaign_id`` (registered or not)."""
        return shard_for(campaign_id, len(self._shards))

    # ------------------------------------------------------------------
    def register_campaign(
        self,
        campaign_id: str,
        object_ids: Sequence,
        *,
        max_users: int,
        user_ids: Optional[Sequence[str]] = None,
        method: str = "crh",
        aggregator: str = "auto",
        cost: Optional[LDPGuarantee] = None,
        **method_kwargs,
    ) -> int:
        """Create campaign state on its shard; returns the shard index.

        ``max_users`` caps the user-slot table (claims from additional
        distinct users are rejected with reason ``"capacity"``).
        ``cost`` is the per-submission privacy charge applied through
        the service's ledger, if one is configured.
        """
        if campaign_id in self._campaign_shard:
            raise ValueError(f"campaign {campaign_id!r} already registered")
        ensure_int(max_users, "max_users", minimum=1)
        object_ids = tuple(object_ids)
        cfg = self._config
        # Resolve "auto" to the concrete backend once, up front: the
        # durable REGISTER record and the worker spec both persist the
        # *resolved* kind, so replaying them is immune to future
        # changes in the auto-selection rules (a logged campaign's
        # backend — and therefore its aggregation semantics — is fixed
        # at registration time).
        aggregator = resolve_backend(
            max_users,
            len(object_ids),
            kind=aggregator,
            method=method,
            decay=cfg.decay,
            full_refit_max_cells=cfg.full_refit_max_cells,
            method_kwargs=method_kwargs,
        )
        shard_index = self.shard_of(campaign_id)
        state = CampaignState(
            campaign_id,
            object_ids,
            capacity=max_users,
            user_ids=user_ids,
            cost=cost,
            max_batch=cfg.max_batch,
            aggregator=self._build_aggregator(
                campaign_id,
                shard_index,
                max_users,
                len(object_ids),
                aggregator_kind=aggregator,
                method=method,
                method_kwargs=method_kwargs,
            ),
        )
        if self._durability is not None:
            # Log the registration before claims can reference it.  The
            # spec must round-trip through JSON, so durable campaigns
            # need JSON-representable object ids and method kwargs.
            self._durability.log_register(
                {
                    "campaign_id": campaign_id,
                    "object_ids": list(object_ids),
                    "max_users": max_users,
                    "user_ids": (
                        None if user_ids is None else list(user_ids)
                    ),
                    "method": method,
                    "aggregator": aggregator,
                    "cost": (
                        None
                        if cost is None
                        else {"epsilon": cost.epsilon, "delta": cost.delta}
                    ),
                    "method_kwargs": dict(method_kwargs),
                }
            )
        if self._pool is not None:
            # The worker must know the campaign before any batch frame
            # can reference it (frames are processed strictly in order,
            # so sending the registration first is sufficient).
            spec = {
                "campaign_id": campaign_id,
                "num_users": max_users,
                "num_objects": len(object_ids),
                "method": method,
                "aggregator": aggregator,
                "method_kwargs": dict(method_kwargs),
            }
            self._worker_specs[campaign_id] = spec
            self._pool.handle_for(shard_index).register(spec)
        shard = self._shards[shard_index]
        shard.register(state)
        self._campaign_shard[campaign_id] = shard
        _LOGGER.debug(
            "campaign %s registered on shard %d (%d objects, <=%d users)",
            campaign_id,
            shard.index,
            len(state.object_ids),
            max_users,
        )
        return shard.index

    def unregister_campaign(self, campaign_id: str) -> None:
        """Drop a campaign's state from its shard.

        Work items still queued for the campaign are skipped (dropped
        unprocessed) at pump time; ledger charges are not refunded —
        privacy budget spent on released data stays spent.
        """
        shard = self._campaign_shard.pop(campaign_id, None)
        if shard is None:
            raise KeyError(f"campaign {campaign_id!r} not registered")
        del shard.campaigns[campaign_id]
        self._worker_specs.pop(campaign_id, None)
        if self._durability is not None:
            self._durability.log_unregister(campaign_id)
        if self._pool is not None:
            self._pool.handle_for(shard.index).unregister(campaign_id)

    def campaign_state(self, campaign_id: str) -> CampaignState:
        """The shard-side state of a campaign (read-mostly; for tests)."""
        shard = self._campaign_shard.get(campaign_id)
        if shard is None:
            raise KeyError(f"campaign {campaign_id!r} not registered")
        return shard.campaigns[campaign_id]

    def _build_aggregator(
        self,
        campaign_id: str,
        shard_index: int,
        num_users: int,
        num_objects: int,
        *,
        aggregator_kind: str,
        method: str,
        method_kwargs: dict,
    ):
        cfg = self._config
        if self._pool is None:
            return make_aggregator(
                num_users,
                num_objects,
                kind=aggregator_kind,
                method=method,
                decay=cfg.decay,
                refine_sweeps=cfg.refine_sweeps,
                refine_every=cfg.refine_every,
                full_refit_max_cells=cfg.full_refit_max_cells,
                **method_kwargs,
            )
        from repro.workers.handles import RemoteAggregator

        # register_campaign resolved "auto" to the concrete kind before
        # calling here (a bad configuration already failed there, with
        # a local traceback), and the worker spec carries the same
        # resolved kind — so the proxy's bookkeeping
        # (refresh_changes_state) mirrors the real backend exactly.
        return RemoteAggregator(
            self._pool.handle_for(shard_index),
            campaign_id,
            num_users,
            num_objects,
            backend=aggregator_kind,
            refine_every=cfg.refine_every,
        )

    # ------------------------------------------------------------------
    def submit(self, submission: ClaimSubmission) -> IngestResult:
        """Validate, admit, and queue one protocol submission."""
        stats = self.stats
        stats.submissions += 1
        n = len(submission.values)
        trace = self.telemetry.traces.maybe_start(submission.campaign_id, n)
        shard = self._campaign_shard.get(submission.campaign_id)
        if shard is None:
            stats.rejected_unknown_campaign += n
            return IngestResult(0, n, "unknown-campaign")
        shard_rejected = self.telemetry.shard_claims_rejected
        state = shard.campaigns[submission.campaign_id]
        object_slots = state.object_slots(submission.object_ids)
        if object_slots is None:
            stats.rejected_unknown_object += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "unknown-object")
        values = np.asarray(submission.values, dtype=float)
        if not np.isfinite(values).all():
            stats.rejected_invalid_value += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "invalid-value")
        # Peek capacity without consuming a slot: rejected traffic must
        # not exhaust the campaign's user table.
        slot = state.user_index.get(submission.user_id)
        if slot is None and len(state.user_table) >= state.capacity:
            stats.rejected_capacity += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "capacity")
        reserved = False
        if self._config.overflow == "reject":
            # Backpressure fires before the budget charge: a submission
            # the queue refuses must not spend the user's epsilon.  The
            # reservation (not a bare has_room peek) keeps that true
            # under concurrent producers.
            if not shard.try_reserve():
                stats.rejected_overflow += n
                shard_rejected[shard.index] += n
                return IngestResult(0, n, "overflow")
            reserved = True
        if state.cost is not None and self._ledger is not None:
            # Admission and its write-ahead charge record form one
            # atomic section under the ledger lock, so a concurrent
            # checkpoint (which snapshots the ledger and the log
            # position under the same lock) sees either both or
            # neither — a charge can never fall between a checkpoint's
            # ledger records and its replayed log suffix.
            with self._ledger.lock:
                decision = self._ledger.admit(
                    submission.user_id,
                    state.cost,
                    label=submission.campaign_id,
                )
                if decision.admitted and self._durability is not None:
                    # Charges are logged at admission, not at
                    # aggregation: if the claims are lost in a crash
                    # before their batch becomes durable, the budget
                    # stays spent (safe side).
                    self._durability.log_charge(
                        submission.user_id,
                        state.cost,
                        label=submission.campaign_id,
                    )
            if not decision.admitted:
                if reserved:
                    shard.cancel_reservation()
                stats.rejected_budget += n
                shard_rejected[shard.index] += n
                return IngestResult(0, n, "budget")
        if slot is None:
            slot = state.user_slot(submission.user_id)
            if slot < 0:
                # Concurrent submitters filled the user table between
                # the capacity peek and the assignment.  The budget
                # charge (if any) stands — over-charging is the safe
                # direction — but the claims are refused.
                if reserved:
                    shard.cancel_reservation()
                stats.rejected_capacity += n
                shard_rejected[shard.index] += n
                return IngestResult(0, n, "capacity")
        user_slots = np.full(n, slot, dtype=np.int64)
        return self._enqueue(
            shard, state, user_slots, object_slots, values,
            reserved=reserved, trace=trace,
        )

    def submit_columns(
        self,
        campaign_id: str,
        user_slots: np.ndarray,
        object_slots: np.ndarray,
        values: np.ndarray,
    ) -> IngestResult:
        """Queue a pre-resolved columnar chunk (the bulk hot path).

        ``user_slots``/``object_slots`` are integer indices into the
        campaign's user-slot table and object universe; whole-chunk
        validation is vectorised and the chunk is accepted or rejected
        atomically.  Budget admission treats every bulk claim as an
        independent release: each distinct user is charged the campaign
        cost composed over their claim count in the chunk, and any user
        without headroom rejects the whole chunk (charging no one).
        """
        stats = self.stats
        stats.submissions += 1
        shard = self._campaign_shard.get(campaign_id)
        values = np.asarray(values, dtype=float)
        n = values.size
        trace = self.telemetry.traces.maybe_start(campaign_id, n)
        if shard is None:
            stats.rejected_unknown_campaign += n
            return IngestResult(0, n, "unknown-campaign")
        shard_rejected = self.telemetry.shard_claims_rejected
        state = shard.campaigns[campaign_id]
        user_slots = np.asarray(user_slots, dtype=np.int64)
        object_slots = np.asarray(object_slots, dtype=np.int64)
        if not (user_slots.shape == object_slots.shape == values.shape):
            raise ValueError("user/object/value columns must share a shape")
        if values.ndim != 1:
            # Reject here: a multi-dimensional chunk would only blow up
            # later inside pump(), poisoning the whole shard queue.
            raise ValueError("claim columns must be 1-D arrays")
        if n == 0:
            return IngestResult(0, 0, "")
        if (object_slots.min() < 0
                or object_slots.max() >= len(state.object_ids)):
            stats.rejected_unknown_object += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "unknown-object")
        if user_slots.min() < 0 or user_slots.max() >= state.capacity:
            stats.rejected_capacity += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "capacity")
        if not np.isfinite(values).all():
            stats.rejected_invalid_value += n
            shard_rejected[shard.index] += n
            return IngestResult(0, n, "invalid-value")
        reserved = False
        if self._config.overflow == "reject":
            # As in submit(): refuse before charging anyone's budget,
            # atomically against concurrent producers.
            if not shard.try_reserve():
                stats.rejected_overflow += n
                shard_rejected[shard.index] += n
                return IngestResult(0, n, "overflow")
            reserved = True
        if state.cost is not None and self._ledger is not None:
            # Two-phase atomic admission: resolve each distinct slot to
            # its (possibly prospective) user id, check every user's
            # headroom first, and only then charge — so a rejected
            # chunk spends no one's budget.  Unlike the protocol path
            # (one submission = one release under a shared variance
            # draw), each bulk claim is an independent release, so a
            # user is charged ``cost`` composed over their claim count
            # in the chunk — merging submissions into chunks cannot
            # under-charge.
            unique_slots, claim_counts = np.unique(
                user_slots, return_counts=True
            )
            chunk_charges = [
                (
                    state.user_table[s]
                    if s < len(state.user_table)
                    else f"slot:{s}",
                    LDPGuarantee(
                        epsilon=state.cost.epsilon * int(c),
                        delta=min(state.cost.delta * int(c), 1.0),
                    ),
                )
                for s, c in zip(unique_slots, claim_counts)
            ]
            # The whole check-then-charge sequence holds the ledger
            # lock: concurrent producers cannot admit against the same
            # headroom between our check and our charge, and a
            # concurrent checkpoint sees the chunk's charges and their
            # log records together or not at all.
            with self._ledger.lock:
                rejected_user = None
                for user_id, charge in chunk_charges:
                    if not self._ledger.can_admit(user_id, charge):
                        rejected_user = user_id
                        break
                if rejected_user is None:
                    for user_id, charge in chunk_charges:
                        decision = self._ledger.admit(
                            user_id, charge, label=campaign_id
                        )
                        if (
                            decision.admitted
                            and self._durability is not None
                        ):
                            self._durability.log_charge(
                                user_id, charge, label=campaign_id
                            )
                        if not decision.admitted:  # pragma: no cover
                            # Cannot happen while slots map to distinct
                            # users (can_admit passed above, under the
                            # same lock hold); never swallow a failed
                            # charge for accepted claims.
                            raise RuntimeError(
                                f"budget charge failed after admission "
                                f"check for {user_id!r}"
                            )
            if rejected_user is not None:
                if reserved:
                    shard.cancel_reservation()
                stats.rejected_budget += n
                shard_rejected[shard.index] += n
                _LOGGER.debug(
                    "chunk for %s rejected: %s out of budget",
                    campaign_id,
                    rejected_user,
                )
                return IngestResult(0, n, "budget")
        # Columnar callers address users by slot; make sure the slots
        # exist in the id table so snapshots can name contributors.  The
        # "slot:" namespace cannot collide with protocol user ids that
        # were (or will be) assigned through user_slot() — register
        # explicit user_ids to get real names in snapshots.
        top_slot = int(user_slots.max())
        if len(state.user_table) <= top_slot:
            state.ensure_placeholder_slots(top_slot)
        return self._enqueue(
            shard, state, user_slots, object_slots, values,
            reserved=reserved, trace=trace,
        )

    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Move queued work through batchers into aggregators.

        With durability attached this is also the group-commit point:
        batches logged during the pump are synced (under the ``batch``
        fsync policy) and automatic checkpoints fire here.
        """
        if self._pool is not None:
            # Surface a crashed worker as a clear error now, not as a
            # broken pipe halfway through shipping this pump's batches.
            self._pool.check()
        moved = sum(shard.pump() for shard in self._shards)
        if self._durability is not None:
            self._durability.after_pump()
            self._sample_wal_stats()
        self._pumps += 1
        if (
            self._pool is not None
            and self.telemetry.enabled
            and self._pumps % 64 == 0
        ):
            # Refresh the cached worker/host registry snapshots from
            # here — the pump thread owns the frame protocol; the HTTP
            # scrape thread must never issue RPCs of its own.
            self.telemetry.refresh_remote(self._pool)
            self._fold_supervision()
        return moved

    def flush(self) -> int:
        """Pump everything, then force partial batches and refinements."""
        moved = self.pump()
        for shard in self._shards:
            shard.flush()
        if self._durability is not None:
            self._durability.after_pump()
            self._sample_wal_stats()
        return moved

    def _sample_wal_stats(self) -> None:
        """Fold the WAL's commit activity into the telemetry layer.

        :class:`ServiceStats` reads the WAL counters live (they are
        properties now), so this only has to (1) refresh the stats
        object's fallback cache and (2) drain newly completed group
        commits into the ``repro_wal_commit_seconds`` histogram and
        resolve traces the durable-ack watermark now covers.
        """
        durability = self._durability
        wal = durability.wal
        stats = self.stats
        stats._wal_appends = wal.records_written
        stats._wal_commit_groups = wal.groups_committed
        stats._wal_commit_seconds = wal.commit_seconds
        stats._wal_durable_lag = wal.last_lsn - wal.durable_lsn
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.drain_wal(wal, durability.config.fsync)
        if telemetry.traces.enabled:
            telemetry.traces.resolve_durable(wal.durable_lsn)

    def _fold_supervision(self) -> None:
        """Mirror supervisor failover timings into the histogram."""
        supervisor = getattr(self._pool, "supervisor", None)
        if supervisor is not None:
            self.telemetry.on_failover(supervisor)

    def snapshot(self, campaign_id: str) -> TruthSnapshot:
        """Fresh read-side view of one campaign.

        Forces only that campaign's partial batch and refinement;
        co-sharded campaigns are pumped but not refined.
        """
        shard = self._campaign_shard.get(campaign_id)
        if shard is None:
            raise KeyError(f"campaign {campaign_id!r} not registered")
        start = time.perf_counter()
        shard.flush_campaign(campaign_id)
        if self._durability is not None:
            # The read may have forced a tail batch into the log; make
            # it durable before handing out truths derived from it
            # (blocks on the durable-ack watermark under async commit).
            self._durability.sync()
            self._sample_wal_stats()
        snapshot = shard.campaigns[campaign_id].snapshot()
        elapsed = time.perf_counter() - start
        self.stats.snapshot_reads += 1
        self.stats.snapshot_read_seconds += elapsed
        self.telemetry.snapshot_read.observe(elapsed)
        return snapshot

    def sync_workers(self) -> None:
        """Barrier: return once workers aggregated every shipped batch.

        In-process mode this is a no-op (pump already aggregated
        synchronously).  Benchmarks call it before stopping the clock
        so multi-process throughput counts finished aggregation, not
        frames parked in a pipe.
        """
        if self._pool is not None:
            self._pool.sync()
            if self.telemetry.enabled:
                self.telemetry.refresh_remote(self._pool)
                self._fold_supervision()

    # ------------------------------------------------------------------
    def rebalance_shard(self, shard_index: int, target_worker: int) -> int:
        """Move one shard's campaigns to another worker/host, online.

        Works identically over pipes (:class:`~repro.workers.pool.
        WorkerPool`) and sockets (:class:`~repro.net.fabric.FabricPool`)
        because both route through the same
        :class:`~repro.net.placement.PlacementMap`.  Per campaign on the
        shard: register the spec on the target, ship ``state_dict``
        (the RPC is ordered after every frame already sent, so shipped
        batches — staged claims included — arrive in the state, bit for
        bit), drop the source copy, and re-home the
        :class:`~repro.workers.handles.RemoteAggregator` proxy.  Claims
        still queued parent-side need nothing: they resolve their
        handle at pump time, after the placement move.  Returns the
        number of campaigns moved.
        """
        if self._pool is None:
            raise RuntimeError(
                "rebalancing requires a worker pool or fabric "
                "(workers=N or hosts=N)"
            )
        if not 0 <= shard_index < len(self._shards):
            raise IndexError(
                f"shard {shard_index} outside 0..{len(self._shards) - 1}"
            )
        source = self._pool.handle_for(shard_index)
        target = self._pool.handles[target_worker]
        if target is source:
            return 0
        shard = self._shards[shard_index]
        moved = 0
        for campaign_id in sorted(shard.campaigns):
            target.register(self._worker_specs[campaign_id])
            state = source.state_dict(campaign_id)
            target.load_state(campaign_id, state)
            source.unregister(campaign_id)
            shard.campaigns[campaign_id].aggregator.rehome(target)
            moved += 1
        self._pool.move_shard(shard_index, target_worker)
        _LOGGER.debug(
            "shard %d re-homed: worker %d -> %d (%d campaign(s))",
            shard_index,
            source.worker_id,
            target.worker_id,
            moved,
        )
        return moved

    def _repoint_campaign(self, campaign_id: str, handle) -> None:
        """Supervisor re-home hook: point one campaign's aggregator
        proxy at the survivor that adopted its state.

        Claims still queued parent-side need nothing — they resolve
        their handle through the placement map at pump time, after the
        supervisor's placement moves."""
        shard = self._shards[self.shard_of(campaign_id)]
        campaign = shard.campaigns.get(campaign_id)
        if campaign is not None:
            rehome = getattr(campaign.aggregator, "rehome", None)
            if rehome is not None:
                rehome(handle)

    def fabric_stats(self) -> Optional[dict]:
        """Placement and supervision counters (None without a pool)."""
        if self._pool is None:
            return None
        stats: dict = {"workers": self._pool.num_workers}
        placement = getattr(self._pool, "placement", None)
        if placement is not None:
            stats["placement"] = placement.describe()
        supervisor = getattr(self._pool, "supervisor", None)
        if supervisor is not None:
            stats["supervision"] = supervisor.stats()
        return stats

    def close(self) -> None:
        """Shut down the worker pool (if any); idempotent.

        Safe to call twice, and safe after a
        :class:`~repro.workers.handles.WorkerCrashedError` — shutdown
        never writes to a pipe it cannot prove alive without catching
        the failure, so a dead worker is simply reaped.

        Queued-but-unpumped work is dropped, exactly like abandoning an
        in-process service.  A durability *manager* the caller attached
        is *not* closed here — its WAL may outlive the service for
        recovery — but one the service built itself (``durability=`` as
        a config or directory path) is, since nothing else holds it.  A
        ``replicated`` topology's sender and standby processes *are*
        closed: the service owns them (a standby that should survive
        this primary is promoted first).
        """
        if self._closed:
            return
        self._closed = True
        if self._watchdog_proc is not None:
            # Stand the watchdogs down *first*: a planned shutdown must
            # not read as a primary death, or the fleet would promote a
            # standby we are about to close.
            fleet = self._watchdog_procs or [self._watchdog_proc]
            for proc in fleet:
                proc.terminate()
            for proc in fleet:
                try:
                    proc.wait(10.0)
                except Exception:  # pragma: no cover - stuck watchdog
                    proc.kill()
                    proc.wait()
            self._watchdog_proc = None
            self._watchdog_procs = []
        if self._status_server is not None:
            self._status_server.stop()
            self._status_server = None
        if self.watchdog is not None:
            self.watchdog.stop()
        if self._durability is not None:
            # Final WAL sample: a stats object read after close must
            # report the log's closing counters, not the last pump's.
            self._sample_wal_stats()
        if self._replication is not None:
            self._replication.close()
        if self._pool is not None:
            self._pool.close()
        if self._standby_pool is not None:
            self._standby_pool.close()
        if self._owns_durability and self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "IngestService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def queue_depths(self) -> list[int]:
        """Per-shard queued work items (observability)."""
        return [shard.queue_depth for shard in self._shards]

    def batch_latencies(self) -> np.ndarray:
        """All recorded per-batch aggregation latencies, in seconds."""
        lats = [
            lat for shard in self._shards for lat in shard.batch_latencies
        ]
        return np.asarray(lats, dtype=float)

    def metrics_snapshot(self):
        """The full metric view (:class:`~repro.obs.RegistrySnapshot`).

        Safe from any thread: reads only live registry objects, plain
        counters, and the *cached* remote snapshots — never the frame
        protocol.  This is the provider a
        :class:`~repro.obs.MetricsServer` should serve.
        """
        self._fold_supervision()
        return self.telemetry.snapshot(self)

    # ------------------------------------------------------------------
    def _enqueue(
        self,
        shard: Shard,
        state: CampaignState,
        user_slots: np.ndarray,
        object_slots: np.ndarray,
        values: np.ndarray,
        *,
        reserved: bool = False,
        trace=None,
    ) -> IngestResult:
        n = values.size
        now = time.perf_counter()
        if trace is not None:
            trace.enqueue_ts = now
        queued = shard.enqueue(
            # The timestamp feeds the queue-wait histogram at pump time;
            # the trace (almost always None) rides along to be stamped
            # through flush/durable/aggregated.
            (state, user_slots, object_slots, values, now, trace),
            overflow=self._config.overflow,
            reserved=reserved,
        )
        if not queued:
            self.stats.rejected_overflow += n
            self.telemetry.shard_claims_rejected[shard.index] += n
            return IngestResult(0, n, "overflow")
        self.stats.claims_accepted += n
        self.telemetry.shard_claims_accepted[shard.index] += n
        return IngestResult(n)
    # NOTE: under "drop_oldest" an *evicted* item's claims stay in the
    # service-level ``claims_accepted`` (they were admitted, then shed —
    # visible via ``Shard.items_dropped``), but per-campaign contributor
    # accounting happens at pump time, so shed claims never count toward
    # contributors or quorum.
