"""Incremental aggregation backends for the ingestion service.

Two interchangeable backends sit behind every campaign:

* :class:`StreamingAggregator` — wraps
  :class:`~repro.truthdiscovery.streaming.StreamingCRH`.  Micro-batches
  are appended to cheap columnar staging arrays; the O(S x N) refinement
  sweeps only run once ``refine_every`` claims have accumulated (or a
  reader asks for fresh truths), which keeps per-batch cost near the
  cost of a memcpy while bounding staleness.
* :class:`FullRefitAggregator` — retains all claims columnarly and
  refits a registered batch method (CRH, GTM, ...) from scratch, lazily
  and only when the result is actually read.  The right choice for
  small campaigns, where a full refit is cheaper than maintaining
  streaming statistics, and for methods with no streaming counterpart.

Both expose the same surface (``ingest`` / ``truths`` / ``weights`` /
counters), so shards treat them uniformly; :func:`make_aggregator`
picks a backend from the campaign's size.

Semantics note: the streaming backend applies its decay once per
``refine_every`` ingested claims — not per micro-batch, and not on
read-forced refreshes, so polling a campaign cannot change its
forgetting rate — and counts duplicate (user, object) claims as
repeated evidence; the full-refit backend keeps the last
claim per (user, object), matching ``ClaimMatrix.from_records``.  With
``decay=1.0`` and duplicate-free dense input the two agree to within
iteration tolerance (asserted by the service benchmark).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.truthdiscovery.streaming import ClaimBatch, StreamingCRH
from repro.utils.validation import ensure_int


class IncrementalAggregator(ABC):
    """Common surface of the per-campaign aggregation backends."""

    def __init__(self, num_users: int, num_objects: int) -> None:
        self._num_users = ensure_int(num_users, "num_users", minimum=1)
        self._num_objects = ensure_int(num_objects, "num_objects", minimum=1)
        self.claims_ingested = 0
        self.batches_ingested = 0

    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @abstractmethod
    def ingest(self, batch: ClaimBatch) -> None:
        """Absorb one micro-batch (cheap; heavy work may be deferred)."""

    @abstractmethod
    def refresh(self) -> None:
        """Force deferred work so ``truths``/``weights`` are current."""

    @property
    def refresh_changes_state(self) -> bool:
        """Whether a refresh *now* would alter future aggregate values.

        Durability uses this to decide if a read-forced refresh must be
        write-ahead logged: the streaming backend folds staged claims
        with sweep timing that depends on when refreshes happen, while
        the full-refit backend recomputes from all retained claims and
        is timing-independent (never logged).
        """
        return False

    @abstractmethod
    def truths(self) -> np.ndarray:
        """Current ``(N,)`` truths (0.0 for never-seen objects)."""

    @abstractmethod
    def weights(self) -> np.ndarray:
        """Current ``(S,)`` user weights (1.0 for silent users)."""

    @abstractmethod
    def seen_objects(self) -> np.ndarray:
        """``(N,)`` mask of objects with at least one ingested claim."""

    @abstractmethod
    def state_dict(self) -> dict:
        """Complete serialisable state (for durable checkpoints).

        ``load_state`` on a freshly constructed aggregator of the same
        configuration restores the stream bit-for-bit — including work
        the backend has deferred (staged batches, retained claims), so
        checkpointing never forces a refinement and cannot perturb the
        stream relative to an uncheckpointed run.
        """

    @abstractmethod
    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this aggregator."""


class StreamingAggregator(IncrementalAggregator):
    """StreamingCRH behind a staging buffer with deferred refinement.

    Parameters
    ----------
    decay:
        Exponential forgetting per refinement (1.0 = never forget).
    refine_sweeps:
        CRH sweeps per refinement; raise it when truths must track the
        batch fixed point closely (see the service benchmark).
    refine_every:
        Staged claims that trigger a refinement.  Larger values trade
        read staleness for throughput.
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        decay: float = 1.0,
        refine_sweeps: int = 2,
        refine_every: int = 8192,
    ) -> None:
        super().__init__(num_users, num_objects)
        self._crh = StreamingCRH(
            num_users,
            num_objects,
            decay=decay,
            refine_sweeps=refine_sweeps,
        )
        self._refine_every = ensure_int(refine_every, "refine_every", minimum=1)
        self._staged: list[ClaimBatch] = []
        self._staged_claims = 0
        # Decay is scheduled by claim count, not by refinement count:
        # read-forced refreshes fold claims without forgetting, so how
        # often a campaign is polled cannot change its decay rate.
        self._claims_since_decay = 0

    def ingest(self, batch: ClaimBatch) -> None:
        self._staged.append(batch)
        self._staged_claims += batch.size
        self._claims_since_decay += batch.size
        self.claims_ingested += batch.size
        self.batches_ingested += 1
        if self._staged_claims >= self._refine_every:
            self.refresh()

    @property
    def refresh_changes_state(self) -> bool:
        return bool(self._staged)

    def refresh(self) -> None:
        if not self._staged:
            return
        if len(self._staged) == 1:
            merged = self._staged[0]
        else:
            merged = ClaimBatch(
                users=np.concatenate([b.users for b in self._staged]),
                objects=np.concatenate([b.objects for b in self._staged]),
                values=np.concatenate([b.values for b in self._staged]),
            )
        self._staged.clear()
        self._staged_claims = 0
        # One forgetting step per full refine_every window of claims —
        # a refresh covering several windows' worth applies decay**k.
        steps = self._claims_since_decay // self._refine_every
        self._claims_since_decay -= steps * self._refine_every
        self._crh.ingest(merged, decay_steps=steps)

    def truths(self) -> np.ndarray:
        self.refresh()
        return self._crh.truths

    def weights(self) -> np.ndarray:
        self.refresh()
        return self._crh.weights

    def seen_objects(self) -> np.ndarray:
        self.refresh()
        return self._crh.seen_objects

    def state_dict(self) -> dict:
        # Array form: the cell statistics dominate the state and go
        # straight into binary checkpoint entries.
        crh = self._crh.snapshot(arrays=True)
        if self._staged:
            staged_users = np.concatenate([b.users for b in self._staged])
            staged_objects = np.concatenate([b.objects for b in self._staged])
            staged_values = np.concatenate([b.values for b in self._staged])
        else:
            staged_users = np.empty(0, dtype=np.int64)
            staged_objects = np.empty(0, dtype=np.int64)
            staged_values = np.empty(0, dtype=float)
        return {
            "kind": "streaming",
            "claims_ingested": self.claims_ingested,
            "batches_ingested": self.batches_ingested,
            "refine_every": self._refine_every,
            "claims_since_decay": self._claims_since_decay,
            "staged_users": staged_users,
            "staged_objects": staged_objects,
            "staged_values": staged_values,
            "crh": crh,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "streaming":
            raise ValueError(
                f"state is for a {state.get('kind')!r} backend, "
                f"not 'streaming'"
            )
        self._crh.restore(state["crh"])
        self._refine_every = ensure_int(
            state["refine_every"], "refine_every", minimum=1
        )
        self._claims_since_decay = int(state["claims_since_decay"])
        self.claims_ingested = int(state["claims_ingested"])
        self.batches_ingested = int(state["batches_ingested"])
        users = np.asarray(state["staged_users"], dtype=np.int64)
        objects = np.asarray(state["staged_objects"], dtype=np.int64)
        values = np.asarray(state["staged_values"], dtype=float)
        # Staged batches are merged at refresh regardless of their
        # original boundaries, so restoring them as one batch is exact.
        if users.size:
            self._staged = [
                ClaimBatch(users=users, objects=objects, values=values)
            ]
        else:
            self._staged = []
        self._staged_claims = int(users.size)


class FullRefitAggregator(IncrementalAggregator):
    """Retain all claims, refit a batch method lazily on read.

    Parameters
    ----------
    method:
        Registry name of the batch method to refit ("crh", "gtm", ...).
    method_kwargs:
        Forwarded to the registry factory on every refit.
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        method: str = "crh",
        **method_kwargs,
    ) -> None:
        super().__init__(num_users, num_objects)
        self._method = method
        self._method_kwargs = dict(method_kwargs)
        self._users: list[np.ndarray] = []
        self._objects: list[np.ndarray] = []
        self._values: list[np.ndarray] = []
        self._dirty = False
        self._truths = np.zeros(num_objects)
        self._weights = np.ones(num_users)
        self._seen = np.zeros(num_objects, dtype=bool)

    def ingest(self, batch: ClaimBatch) -> None:
        self._users.append(batch.users)
        self._objects.append(batch.objects)
        self._values.append(batch.values)
        self.claims_ingested += batch.size
        self.batches_ingested += 1
        self._dirty = True

    def refresh(self) -> None:
        if not self._dirty:
            return
        users = np.concatenate(self._users)
        objects = np.concatenate(self._objects)
        values = np.concatenate(self._values)
        # Refit on the active sub-rectangle only: silent users and unseen
        # objects would violate ClaimMatrix's coverage invariant.
        active_users = np.unique(users)
        seen_objects = np.unique(objects)
        claims = ClaimMatrix.from_columns(
            np.searchsorted(active_users, users),
            np.searchsorted(seen_objects, objects),
            values,
            user_ids=tuple(int(u) for u in active_users),
            object_ids=tuple(int(o) for o in seen_objects),
        )
        result = create_method(self._method, **self._method_kwargs).fit(claims)
        self._truths = np.zeros(self._num_objects)
        self._truths[seen_objects] = result.truths
        self._weights = np.ones(self._num_users)
        self._weights[active_users] = result.weights
        self._seen = np.zeros(self._num_objects, dtype=bool)
        self._seen[seen_objects] = True
        self._dirty = False

    def truths(self) -> np.ndarray:
        self.refresh()
        return self._truths.copy()

    def weights(self) -> np.ndarray:
        self.refresh()
        return self._weights.copy()

    def seen_objects(self) -> np.ndarray:
        self.refresh()
        return self._seen.copy()

    def state_dict(self) -> dict:
        if self._users:
            users = np.concatenate(self._users)
            objects = np.concatenate(self._objects)
            values = np.concatenate(self._values)
        else:
            users = np.empty(0, dtype=np.int64)
            objects = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=float)
        return {
            "kind": "full",
            "claims_ingested": self.claims_ingested,
            "batches_ingested": self.batches_ingested,
            "users": users,
            "objects": objects,
            "values": values,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "full":
            raise ValueError(
                f"state is for a {state.get('kind')!r} backend, not 'full'"
            )
        users = np.asarray(state["users"], dtype=np.int64)
        objects = np.asarray(state["objects"], dtype=np.int64)
        values = np.asarray(state["values"], dtype=float)
        self.claims_ingested = int(state["claims_ingested"])
        self.batches_ingested = int(state["batches_ingested"])
        if users.size:
            self._users = [users]
            self._objects = [objects]
            self._values = [values]
            # The refit is deterministic in the retained claims, so the
            # lazy recompute reproduces the checkpointed results exactly.
            self._dirty = True
        else:
            self._users, self._objects, self._values = [], [], []
            self._dirty = False


def resolve_backend(
    num_users: int,
    num_objects: int,
    *,
    kind: str = "auto",
    method: str = "crh",
    decay: float = 1.0,
    full_refit_max_cells: int = 4096,
) -> str:
    """Resolve ``kind`` to the concrete backend a campaign will run.

    This is :func:`make_aggregator`'s selection logic, split out so a
    caller that is *not* constructing the backend locally — the
    multi-process proxy, which must mirror the worker-side backend's
    behaviour — resolves to exactly the same choice, including the same
    configuration errors.
    """
    if kind not in ("auto", "streaming", "full"):
        raise ValueError(f"unknown aggregator kind {kind!r}")
    if kind == "auto":
        small = num_users * num_objects <= full_refit_max_cells
        if decay < 1.0:
            kind = "streaming"
        else:
            kind = "full" if (small or method != "crh") else "streaming"
    if kind == "full" and decay < 1.0:
        raise ValueError(
            "the full-refit backend cannot forget (decay < 1 "
            "requires the streaming backend)"
        )
    if kind == "streaming" and method != "crh":
        raise ValueError(
            f"streaming backend only supports 'crh', got {method!r}"
        )
    return kind


def make_aggregator(
    num_users: int,
    num_objects: int,
    *,
    kind: str = "auto",
    method: str = "crh",
    decay: float = 1.0,
    refine_sweeps: int = 2,
    refine_every: int = 8192,
    full_refit_max_cells: int = 4096,
    **method_kwargs,
) -> IncrementalAggregator:
    """Build an aggregation backend for one campaign.

    ``kind`` is ``"streaming"``, ``"full"``, or ``"auto"`` — auto picks
    the full-refit backend when the campaign's dense state (S x N cells)
    is at most ``full_refit_max_cells``, and streaming otherwise.  Any
    non-CRH ``method`` forces the full-refit backend (StreamingCRH has
    no GTM/CATD counterpart).  ``decay < 1`` forces the streaming
    backend (and errors on ``"full"``): the full-refit backend retains
    every claim forever and silently ignoring the configured forgetting
    rate would make two same-config campaigns diverge by size alone.
    """
    kind = resolve_backend(
        num_users,
        num_objects,
        kind=kind,
        method=method,
        decay=decay,
        full_refit_max_cells=full_refit_max_cells,
    )
    if kind == "full":
        return FullRefitAggregator(
            num_users, num_objects, method=method, **method_kwargs
        )
    return StreamingAggregator(
        num_users,
        num_objects,
        decay=decay,
        refine_sweeps=refine_sweeps,
        refine_every=refine_every,
    )
