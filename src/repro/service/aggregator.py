"""Incremental aggregation backends for the ingestion service.

Two interchangeable backends sit behind every campaign:

* :class:`StreamingAggregator` — wraps a streaming
  sufficient-statistics estimator from
  :mod:`repro.truthdiscovery.streaming` (:class:`StreamingCRH`,
  :class:`StreamingGTM`, or :class:`StreamingCATD`, chosen by the
  campaign's ``method``).  Micro-batches are appended to cheap columnar
  staging arrays; the O(S x N) refinement sweeps only run once
  ``refine_every`` claims have accumulated (or a reader asks for fresh
  truths), which keeps per-batch cost near the cost of a memcpy while
  bounding staleness.  Reads are O(S x N) regardless of how many
  claims the campaign has ever ingested.
* :class:`FullRefitAggregator` — retains all claims columnarly and
  refits a registered batch method from scratch, lazily and only when
  the result is actually read — an O(total claims) read path.  The
  right choice for small campaigns, where a full refit is cheaper than
  maintaining streaming statistics, and the *only* choice for methods
  with no streaming counterpart (baselines, ablation variants).

Backend selection (:func:`resolve_backend`, used by
:func:`make_aggregator` and mirrored by the multi-process proxy):

* ``kind="streaming"`` / ``kind="full"`` force a backend; forcing
  streaming for a method without a streaming estimator is an error, as
  is forcing full-refit with ``decay < 1`` (it cannot forget).
* ``kind="auto"`` picks full-refit only for tiny campaigns (dense
  state of at most ``full_refit_max_cells`` cells), for methods absent
  from :data:`~repro.truthdiscovery.streaming.STREAMING_ESTIMATORS`,
  and for campaigns whose ``method_kwargs`` carry batch-only fitting
  knobs the streaming estimator cannot honour (``convergence``,
  ``distance``, ...); every plain CRH/GTM/CATD campaign at scale
  streams.  ``decay < 1`` always forces streaming: the full-refit
  backend retains every claim forever and silently ignoring the
  configured forgetting rate would make two same-config campaigns
  diverge by size alone.

Both backends expose the same surface (``ingest`` / ``truths`` /
``weights`` / counters), so shards treat them uniformly.  Each also
counts its deferred-work cost — ``refreshes`` and ``refresh_seconds``
— so the service benchmark can show what a read actually pays per
backend (the streaming-vs-full read-latency comparison in
``repro service-bench``).

Semantics note: the streaming backend applies its decay once per
``refine_every`` ingested claims — not per micro-batch, and not on
read-forced refreshes, so polling a campaign cannot change its
forgetting rate — and counts duplicate (user, object) claims as
repeated evidence; the full-refit backend keeps the last
claim per (user, object), matching ``ClaimMatrix.from_records``.  With
``decay=1.0`` and duplicate-free dense input the two agree to within
iteration tolerance for every streaming-capable method (asserted by
the service benchmark's per-method RMSE section).
"""

from __future__ import annotations

import inspect
import time
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.truthdiscovery.streaming import (
    STREAMING_ESTIMATORS,
    ClaimBatch,
)
from repro.utils.validation import ensure_int


class IncrementalAggregator(ABC):
    """Common surface of the per-campaign aggregation backends."""

    def __init__(self, num_users: int, num_objects: int) -> None:
        self._num_users = ensure_int(num_users, "num_users", minimum=1)
        self._num_objects = ensure_int(num_objects, "num_objects", minimum=1)
        self.claims_ingested = 0
        self.batches_ingested = 0
        #: Refreshes that actually did deferred work (refinement folds
        #: for the streaming backend, full refits for the full-refit
        #: backend), and the seconds they cost.  Process-local
        #: observability — not part of :meth:`state_dict`.
        self.refreshes = 0
        self.refresh_seconds = 0.0

    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @abstractmethod
    def ingest(self, batch: ClaimBatch) -> None:
        """Absorb one micro-batch (cheap; heavy work may be deferred)."""

    @abstractmethod
    def refresh(self) -> None:
        """Force deferred work so ``truths``/``weights`` are current."""

    @property
    def refresh_changes_state(self) -> bool:
        """Whether a refresh *now* would alter future aggregate values.

        Durability uses this to decide if a read-forced refresh must be
        write-ahead logged: the streaming backend folds staged claims
        with sweep timing that depends on when refreshes happen, while
        the full-refit backend recomputes from all retained claims and
        is timing-independent (never logged).
        """
        return False

    @abstractmethod
    def truths(self) -> np.ndarray:
        """Current ``(N,)`` truths (0.0 for never-seen objects)."""

    @abstractmethod
    def weights(self) -> np.ndarray:
        """Current ``(S,)`` user weights (1.0 for silent users)."""

    @abstractmethod
    def seen_objects(self) -> np.ndarray:
        """``(N,)`` mask of objects with at least one ingested claim."""

    @abstractmethod
    def state_dict(self) -> dict:
        """Complete serialisable state (for durable checkpoints).

        ``load_state`` on a freshly constructed aggregator of the same
        configuration restores the stream bit-for-bit — including work
        the backend has deferred (staged batches, retained claims), so
        checkpointing never forces a refinement and cannot perturb the
        stream relative to an uncheckpointed run.
        """

    @abstractmethod
    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this aggregator."""


class StreamingAggregator(IncrementalAggregator):
    """A streaming estimator behind a staging buffer with deferred refinement.

    Parameters
    ----------
    method:
        Registry name of the estimator ("crh", "gtm", "catd") — must
        have a streaming counterpart in
        :data:`~repro.truthdiscovery.streaming.STREAMING_ESTIMATORS`.
    decay:
        Exponential forgetting per refinement (1.0 = never forget).
    refine_sweeps:
        Refinement sweeps per fold; raise it when truths must track the
        batch fixed point closely (see the service benchmark).
    refine_every:
        Staged claims that trigger a refinement.  Larger values trade
        read staleness for throughput.
    method_kwargs:
        Forwarded to the streaming estimator's constructor (the same
        names the batch method accepts, e.g. GTM's priors or CATD's
        ``significance``).
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        method: str = "crh",
        decay: float = 1.0,
        refine_sweeps: int = 2,
        refine_every: int = 8192,
        **method_kwargs,
    ) -> None:
        super().__init__(num_users, num_objects)
        try:
            estimator_cls = STREAMING_ESTIMATORS[method]
        except KeyError:
            raise ValueError(
                f"no streaming estimator for method {method!r}; "
                f"available: {sorted(STREAMING_ESTIMATORS)}"
            ) from None
        self._method = method
        self._stream = estimator_cls(
            num_users,
            num_objects,
            decay=decay,
            refine_sweeps=refine_sweeps,
            **method_kwargs,
        )
        self._refine_every = ensure_int(refine_every, "refine_every", minimum=1)
        self._staged: list[ClaimBatch] = []
        self._staged_claims = 0
        # Decay is scheduled by claim count, not by refinement count:
        # read-forced refreshes fold claims without forgetting, so how
        # often a campaign is polled cannot change its decay rate.
        self._claims_since_decay = 0

    @property
    def method(self) -> str:
        return self._method

    def ingest(self, batch: ClaimBatch) -> None:
        self._staged.append(batch)
        self._staged_claims += batch.size
        self._claims_since_decay += batch.size
        self.claims_ingested += batch.size
        self.batches_ingested += 1
        if self._staged_claims >= self._refine_every:
            self.refresh()

    @property
    def refresh_changes_state(self) -> bool:
        return bool(self._staged)

    def refresh(self) -> None:
        if not self._staged:
            return
        start = time.perf_counter()
        if len(self._staged) == 1:
            merged = self._staged[0]
        else:
            merged = ClaimBatch(
                users=np.concatenate([b.users for b in self._staged]),
                objects=np.concatenate([b.objects for b in self._staged]),
                values=np.concatenate([b.values for b in self._staged]),
            )
        self._staged.clear()
        self._staged_claims = 0
        # One forgetting step per full refine_every window of claims —
        # a refresh covering several windows' worth applies decay**k.
        steps = self._claims_since_decay // self._refine_every
        self._claims_since_decay -= steps * self._refine_every
        self._stream.ingest(merged, decay_steps=steps)
        self.refreshes += 1
        self.refresh_seconds += time.perf_counter() - start

    def truths(self) -> np.ndarray:
        self.refresh()
        return self._stream.truths

    def weights(self) -> np.ndarray:
        self.refresh()
        return self._stream.weights

    def seen_objects(self) -> np.ndarray:
        self.refresh()
        return self._stream.seen_objects

    def state_dict(self) -> dict:
        # Array form: the cell statistics dominate the state and go
        # straight into binary checkpoint entries.
        stream = self._stream.snapshot(arrays=True)
        if self._staged:
            staged_users = np.concatenate([b.users for b in self._staged])
            staged_objects = np.concatenate([b.objects for b in self._staged])
            staged_values = np.concatenate([b.values for b in self._staged])
        else:
            staged_users = np.empty(0, dtype=np.int64)
            staged_objects = np.empty(0, dtype=np.int64)
            staged_values = np.empty(0, dtype=float)
        return {
            "kind": "streaming",
            "method": self._method,
            "claims_ingested": self.claims_ingested,
            "batches_ingested": self.batches_ingested,
            "refine_every": self._refine_every,
            "claims_since_decay": self._claims_since_decay,
            "staged_users": staged_users,
            "staged_objects": staged_objects,
            "staged_values": staged_values,
            "stream": stream,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "streaming":
            raise ValueError(
                f"state is for a {state.get('kind')!r} backend, "
                f"not 'streaming'"
            )
        # Pre-ISSUE-4 checkpoints carry no "method" entry and store the
        # estimator snapshot under "crh" (CRH was the only streaming
        # backend); accept both spellings so existing durability
        # directories keep recovering.
        method = state.get("method", "crh")
        if method != self._method:
            raise ValueError(
                f"state is for a {method!r} stream, this campaign runs "
                f"{self._method!r}"
            )
        stream_state = state["stream"] if "stream" in state else state["crh"]
        self._stream.restore(stream_state)
        self._refine_every = ensure_int(
            state["refine_every"], "refine_every", minimum=1
        )
        self._claims_since_decay = int(state["claims_since_decay"])
        self.claims_ingested = int(state["claims_ingested"])
        self.batches_ingested = int(state["batches_ingested"])
        users = np.asarray(state["staged_users"], dtype=np.int64)
        objects = np.asarray(state["staged_objects"], dtype=np.int64)
        values = np.asarray(state["staged_values"], dtype=float)
        # Staged batches are merged at refresh regardless of their
        # original boundaries, so restoring them as one batch is exact.
        if users.size:
            self._staged = [
                ClaimBatch(users=users, objects=objects, values=values)
            ]
        else:
            self._staged = []
        self._staged_claims = int(users.size)


class FullRefitAggregator(IncrementalAggregator):
    """Retain all claims, refit a batch method lazily on read.

    Parameters
    ----------
    method:
        Registry name of the batch method to refit ("crh", "gtm", ...).
    method_kwargs:
        Forwarded to the registry factory on every refit.
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        *,
        method: str = "crh",
        **method_kwargs,
    ) -> None:
        super().__init__(num_users, num_objects)
        self._method = method
        self._method_kwargs = dict(method_kwargs)
        self._users: list[np.ndarray] = []
        self._objects: list[np.ndarray] = []
        self._values: list[np.ndarray] = []
        self._dirty = False
        self._truths = np.zeros(num_objects)
        self._weights = np.ones(num_users)
        self._seen = np.zeros(num_objects, dtype=bool)

    @property
    def method(self) -> str:
        return self._method

    def ingest(self, batch: ClaimBatch) -> None:
        self._users.append(batch.users)
        self._objects.append(batch.objects)
        self._values.append(batch.values)
        self.claims_ingested += batch.size
        self.batches_ingested += 1
        self._dirty = True

    def refresh(self) -> None:
        if not self._dirty:
            return
        start = time.perf_counter()
        users = np.concatenate(self._users)
        objects = np.concatenate(self._objects)
        values = np.concatenate(self._values)
        # Refit on the active sub-rectangle only: silent users and unseen
        # objects would violate ClaimMatrix's coverage invariant.
        active_users = np.unique(users)
        seen_objects = np.unique(objects)
        claims = ClaimMatrix.from_columns(
            np.searchsorted(active_users, users),
            np.searchsorted(seen_objects, objects),
            values,
            user_ids=tuple(int(u) for u in active_users),
            object_ids=tuple(int(o) for o in seen_objects),
        )
        result = create_method(self._method, **self._method_kwargs).fit(claims)
        self._truths = np.zeros(self._num_objects)
        self._truths[seen_objects] = result.truths
        self._weights = np.ones(self._num_users)
        self._weights[active_users] = result.weights
        self._seen = np.zeros(self._num_objects, dtype=bool)
        self._seen[seen_objects] = True
        self._dirty = False
        self.refreshes += 1
        self.refresh_seconds += time.perf_counter() - start

    def truths(self) -> np.ndarray:
        self.refresh()
        return self._truths.copy()

    def weights(self) -> np.ndarray:
        self.refresh()
        return self._weights.copy()

    def seen_objects(self) -> np.ndarray:
        self.refresh()
        return self._seen.copy()

    def state_dict(self) -> dict:
        if self._users:
            users = np.concatenate(self._users)
            objects = np.concatenate(self._objects)
            values = np.concatenate(self._values)
        else:
            users = np.empty(0, dtype=np.int64)
            objects = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=float)
        return {
            "kind": "full",
            "claims_ingested": self.claims_ingested,
            "batches_ingested": self.batches_ingested,
            "users": users,
            "objects": objects,
            "values": values,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "full":
            raise ValueError(
                f"state is for a {state.get('kind')!r} backend, not 'full'"
            )
        users = np.asarray(state["users"], dtype=np.int64)
        objects = np.asarray(state["objects"], dtype=np.int64)
        values = np.asarray(state["values"], dtype=float)
        self.claims_ingested = int(state["claims_ingested"])
        self.batches_ingested = int(state["batches_ingested"])
        if users.size:
            self._users = [users]
            self._objects = [objects]
            self._values = [values]
            # The refit is deterministic in the retained claims, so the
            # lazy recompute reproduces the checkpointed results exactly.
            self._dirty = True
        else:
            self._users, self._objects, self._values = [], [], []
            self._dirty = False


def _streaming_unsupported_kwargs(method: str, method_kwargs: dict) -> list:
    """Kwargs the method's streaming estimator cannot accept.

    Batch methods take fitting knobs (``convergence``, ``distance``,
    ...) that have no streaming counterpart; a campaign registered
    with them must stay on the full-refit backend rather than crash —
    or, worse, have the knob silently dropped.
    """
    estimator_cls = STREAMING_ESTIMATORS.get(method)
    if estimator_cls is None:
        return sorted(method_kwargs)
    accepted = set(inspect.signature(estimator_cls.__init__).parameters)
    accepted -= {"self", "num_users", "num_objects", "decay", "refine_sweeps"}
    return sorted(set(method_kwargs) - accepted)


def resolve_backend(
    num_users: int,
    num_objects: int,
    *,
    kind: str = "auto",
    method: str = "crh",
    decay: float = 1.0,
    full_refit_max_cells: int = 4096,
    method_kwargs: Optional[dict] = None,
) -> str:
    """Resolve ``kind`` to the concrete backend a campaign will run.

    This is :func:`make_aggregator`'s selection logic, split out so a
    caller that is *not* constructing the backend locally — the
    multi-process proxy, which must mirror the worker-side backend's
    behaviour — resolves to exactly the same choice, including the same
    configuration errors.  Pass the campaign's ``method_kwargs`` so
    batch-only fitting knobs route to the full-refit backend (the
    mirror must see them too, or parent and worker could pick
    different backends).
    """
    if kind not in ("auto", "streaming", "full"):
        raise ValueError(f"unknown aggregator kind {kind!r}")
    unsupported = _streaming_unsupported_kwargs(method, method_kwargs or {})
    streamable = method in STREAMING_ESTIMATORS and not unsupported
    if kind == "auto":
        small = num_users * num_objects <= full_refit_max_cells
        if decay < 1.0:
            kind = "streaming"
        else:
            kind = "streaming" if (streamable and not small) else "full"
    if kind == "full" and decay < 1.0:
        raise ValueError(
            "the full-refit backend cannot forget (decay < 1 "
            "requires the streaming backend)"
        )
    if kind == "streaming" and not streamable:
        if method in STREAMING_ESTIMATORS:
            raise ValueError(
                f"streaming {method!r} does not accept "
                f"{unsupported} (batch-only fitting knobs need the "
                f"full-refit backend)"
            )
        raise ValueError(
            f"no streaming estimator for method {method!r}; "
            f"available: {sorted(STREAMING_ESTIMATORS)}"
        )
    return kind


def make_aggregator(
    num_users: int,
    num_objects: int,
    *,
    kind: str = "auto",
    method: str = "crh",
    decay: float = 1.0,
    refine_sweeps: int = 2,
    refine_every: int = 8192,
    full_refit_max_cells: int = 4096,
    **method_kwargs,
) -> IncrementalAggregator:
    """Build an aggregation backend for one campaign.

    ``kind`` is ``"streaming"``, ``"full"``, or ``"auto"`` — see the
    module docstring for the selection rules.  ``method_kwargs`` reach
    whichever backend is built: streaming estimators accept their
    batch counterpart's model hyper-parameters (GTM's priors, CATD's
    ``significance``), while batch-only fitting knobs (``convergence``,
    ``distance``, ...) keep an ``"auto"`` campaign on the full-refit
    backend and are an error with ``kind="streaming"``.
    """
    kind = resolve_backend(
        num_users,
        num_objects,
        kind=kind,
        method=method,
        decay=decay,
        full_refit_max_cells=full_refit_max_cells,
        method_kwargs=method_kwargs,
    )
    if kind == "full":
        return FullRefitAggregator(
            num_users, num_objects, method=method, **method_kwargs
        )
    return StreamingAggregator(
        num_users,
        num_objects,
        method=method,
        decay=decay,
        refine_sweeps=refine_sweeps,
        refine_every=refine_every,
        **method_kwargs,
    )
