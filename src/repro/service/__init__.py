"""High-throughput claim-ingestion service (serving-layer subsystem).

The paper's protocol assumes a cloud server absorbing perturbed claims
from large crowds; this package is that server's serving layer, built
for rate rather than for protocol fidelity (which lives in
``repro.crowdsensing``):

* :class:`IngestService` — the front door: validation, privacy-budget
  admission (:class:`BudgetLedger`), campaign sharding
  (:func:`shard_for`), bounded queues with reject/drop-oldest overflow
  policies;
* :class:`MicroBatcher` — columnar micro-batches: accepted claims live
  in NumPy index/value arrays, never per-claim Python objects;
* :class:`StreamingAggregator` / :class:`FullRefitAggregator` —
  incremental truth discovery per campaign: streaming CRH/GTM/CATD
  sufficient statistics for campaigns at scale (O(S x N) reads), a
  full-refit fallback for tiny campaigns and unstreamable methods;
* :class:`TruthSnapshot` — immutable read-side truth/weight views,
  queryable at any time mid-stream;
* :class:`ServiceCampaignAdapter` — runs the existing crowdsensing
  protocol on top of the service;
* :class:`LoadGenerator` and :func:`run_service_bench` — synthetic
  traffic and the throughput benchmark behind ``repro service-bench``.
"""

from repro.service.aggregator import (
    FullRefitAggregator,
    IncrementalAggregator,
    StreamingAggregator,
    make_aggregator,
    resolve_backend,
)
from repro.service.adapter import ServiceCampaignAdapter
from repro.service.batcher import MicroBatcher
from repro.service.bench import (
    bench_method_reads,
    run_service_bench,
    streaming_agreement_rmse,
)
from repro.service.ingest import (
    IngestResult,
    IngestService,
    ServiceConfig,
    ServiceStats,
)
from repro.service.ledger import AdmissionDecision, BudgetLedger
from repro.service.loadgen import ColumnChunk, LoadGenerator
from repro.service.shard import CampaignState, Shard, shard_for
from repro.service.snapshot import TruthSnapshot
from repro.service.topology import Topology

__all__ = [
    "AdmissionDecision",
    "BudgetLedger",
    "CampaignState",
    "ColumnChunk",
    "FullRefitAggregator",
    "IncrementalAggregator",
    "IngestResult",
    "IngestService",
    "LoadGenerator",
    "MicroBatcher",
    "ServiceCampaignAdapter",
    "ServiceConfig",
    "ServiceStats",
    "Shard",
    "StreamingAggregator",
    "Topology",
    "TruthSnapshot",
    "bench_method_reads",
    "make_aggregator",
    "resolve_backend",
    "run_service_bench",
    "shard_for",
    "streaming_agreement_rmse",
]
