"""Read-side views of the ingestion service's aggregation state.

The write path (queues, batchers, shards) never hands out references to
its mutable buffers.  Readers instead receive a :class:`TruthSnapshot` —
an immutable copy of one campaign's current truths, weights, and
ingestion counters — so a dashboard or the crowdsensing adapter can poll
fresh aggregates at any time without racing the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np


@dataclass(frozen=True)
class TruthSnapshot:
    """One campaign's aggregation state at a point in the ingest stream.

    Attributes
    ----------
    campaign_id:
        The campaign this snapshot describes.
    object_ids:
        The campaign's object universe; ``truths[i]`` corresponds to
        ``object_ids[i]``.
    truths:
        ``(N,)`` current aggregated values.  Objects with no retained
        claims hold 0.0; consult ``seen_objects`` before trusting them.
    seen_objects:
        ``(N,)`` boolean mask — True where at least one claim has been
        aggregated for the object.
    weights_by_user:
        Current reliability weight for every user that has contributed
        at least one accepted claim.
    claims_ingested:
        Accepted claims aggregated so far (excludes queued/pending).
    batches_ingested:
        Micro-batches the campaign's aggregator has absorbed.
    pending_claims:
        Claims accepted but still sitting in the campaign's partial
        micro-batch (not yet visible in ``truths``).
    """

    campaign_id: str
    object_ids: tuple
    truths: np.ndarray
    seen_objects: np.ndarray
    weights_by_user: Mapping[str, float] = field(default_factory=dict)
    claims_ingested: int = 0
    batches_ingested: int = 0
    pending_claims: int = 0

    def __post_init__(self) -> None:
        truths = np.asarray(self.truths, dtype=float)
        seen = np.asarray(self.seen_objects, dtype=bool)
        if truths.shape != (len(self.object_ids),):
            raise ValueError(
                f"truths has shape {truths.shape} for "
                f"{len(self.object_ids)} objects"
            )
        if seen.shape != truths.shape:
            raise ValueError("seen_objects must match truths in shape")
        truths.setflags(write=False)
        seen.setflags(write=False)
        object.__setattr__(self, "truths", truths)
        object.__setattr__(self, "seen_objects", seen)
        object.__setattr__(self, "weights_by_user", dict(self.weights_by_user))

    @property
    def num_contributors(self) -> int:
        """Users with at least one aggregated claim."""
        return len(self.weights_by_user)

    @property
    def coverage(self) -> float:
        """Fraction of the object universe with at least one claim."""
        if len(self.object_ids) == 0:
            return 0.0
        return float(self.seen_objects.mean())

    def truth_for(self, object_id) -> float:
        """Current truth for one object id (KeyError if unknown)."""
        try:
            index = self.object_ids.index(object_id)
        except ValueError:
            raise KeyError(f"unknown object id {object_id!r}") from None
        return float(self.truths[index])

    def summary(self) -> str:
        """One-line human summary (for logs and examples)."""
        return (
            f"campaign {self.campaign_id}: {self.claims_ingested} claims "
            f"in {self.batches_ingested} batches from "
            f"{self.num_contributors} users, coverage {self.coverage:.0%}"
            + (f", {self.pending_claims} pending" if self.pending_claims else "")
        )
