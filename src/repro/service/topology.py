"""The service-topology API: one object says how a service deploys.

Construction used to be a sprawl of mutually-exclusive keywords
(``IngestService(config, workers=N, hosts=N, durability=...,
supervise=..., start_method=...)``).  A :class:`Topology` replaces them
with one value describing the whole deployment shape, built by a named
factory per shape::

    IngestService(config, topology=Topology.in_process())
    IngestService(config, topology=Topology.workers(4))
    IngestService(config, topology=Topology.fabric(2, supervise=True))
    IngestService(config, topology=Topology.replicated(
        standbys=2, durability="run/wal", sync="semi-sync"))

Every factory accepts ``durability=`` — a
:class:`~repro.durable.manager.DurabilityManager`, a
:class:`~repro.durable.manager.DurabilityConfig`, or a bare directory
path — because durability composes with every shape.
``Topology.replicated`` *requires* it: the write-ahead log is the
replicated object.

The old keywords still work as thin shims emitting
``DeprecationWarning`` (see ``IngestService``); ``docs/api.md`` is the
migration guide.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.utils.validation import ensure_int

#: Deployment shapes a topology can describe.
TOPOLOGY_KINDS = ("in_process", "workers", "fabric", "replicated")

#: Replication sync modes (mirrors repro.replication.sender.SYNC_MODES
#: without importing the package at module load).
REPLICATION_SYNC_MODES = ("async", "semi-sync")


@dataclass(frozen=True)
class Topology:
    """One deployment shape for an :class:`~repro.service.ingest.
    IngestService` (build via the factory classmethods).

    Attributes
    ----------
    kind:
        ``"in_process"`` / ``"workers"`` / ``"fabric"`` /
        ``"replicated"``.
    processes:
        Worker processes (``workers``) or shard hosts (``fabric``).
    supervise:
        Fabric only: restart and replay dead shard hosts.
    start_method:
        Workers only: the ``multiprocessing`` start method.
    standbys:
        Replicated only: warm standbys receiving the WAL stream.
    sync:
        Replicated only: ``"async"`` or ``"semi-sync"``.
    durability:
        A :class:`~repro.durable.manager.DurabilityManager`, a
        :class:`~repro.durable.manager.DurabilityConfig`, or a bare
        directory path; ``None`` runs volatile (not with
        ``replicated``).
    standby_dirs:
        Replicated only: explicit standby directories (defaults to
        ``<primary_dir>.standby<i>``).
    standby_fsync:
        Replicated only: commit policy of each standby's own WAL.
    ack_timeout:
        Replicated only: semi-sync back-pressure bound in seconds.
    auto_failover:
        Replicated only: arm the failover watchdog — a detached
        ``repro watchdog`` process heartbeats the primary over its
        status listener and, when the primary dies, elects the freshest
        standby (highest replicated watermark) and promotes it without
        operator involvement.  See ``docs/operations.md``.
    heartbeat_interval:
        Replicated only: seconds between watchdog heartbeats.
    heartbeat_misses:
        Replicated only: consecutive missed heartbeats before the
        watchdog declares the primary dead (detection timeout is
        roughly ``interval * misses``).
    watchdogs:
        Replicated + ``auto_failover`` only: size of the watchdog
        fleet.  More than one switches on quorum voting — a strict
        majority must agree the primary is dead before any member
        promotes, and the winner fences the promotion with a monotone
        epoch the standby persists.  Use an odd count (3 tolerates one
        partitioned watchdog).
    """

    kind: str = "in_process"
    processes: int = 0
    supervise: bool = True
    start_method: str = "spawn"
    standbys: int = 0
    sync: str = "async"
    durability: Optional[object] = None
    standby_dirs: Optional[tuple] = None
    standby_fsync: str = "batch"
    ack_timeout: float = 30.0
    auto_failover: bool = False
    heartbeat_interval: float = 0.5
    heartbeat_misses: int = 4
    watchdogs: int = 1

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"kind must be one of {TOPOLOGY_KINDS}, got {self.kind!r}"
            )
        if self.kind in ("workers", "fabric"):
            ensure_int(self.processes, "processes", minimum=1)
        if self.kind == "replicated":
            ensure_int(self.standbys, "standbys", minimum=1)
            if self.sync not in REPLICATION_SYNC_MODES:
                raise ValueError(
                    f"sync must be one of {REPLICATION_SYNC_MODES}, "
                    f"got {self.sync!r}"
                )
            if self.durability is None:
                raise ValueError(
                    "Topology.replicated requires durability= (the "
                    "write-ahead log is what gets replicated)"
                )
            if (
                self.standby_dirs is not None
                and len(self.standby_dirs) != self.standbys
            ):
                raise ValueError(
                    f"{len(self.standby_dirs)} standby_dirs for "
                    f"{self.standbys} standbys"
                )
            if self.auto_failover:
                if self.heartbeat_interval <= 0:
                    raise ValueError(
                        f"heartbeat_interval must be > 0, got "
                        f"{self.heartbeat_interval}"
                    )
                ensure_int(
                    self.heartbeat_misses, "heartbeat_misses", minimum=1
                )
                ensure_int(self.watchdogs, "watchdogs", minimum=1)

    # ------------------------------------------------------------------
    @classmethod
    def in_process(cls, *, durability=None) -> "Topology":
        """Single process, shards as a state partition (the default)."""
        return cls(kind="in_process", durability=durability)

    @classmethod
    def workers(
        cls,
        processes: int,
        *,
        start_method: str = "spawn",
        durability=None,
    ) -> "Topology":
        """Shard aggregation in ``processes`` pipe-connected workers."""
        return cls(
            kind="workers",
            processes=processes,
            start_method=start_method,
            durability=durability,
        )

    @classmethod
    def fabric(
        cls,
        processes: int,
        *,
        supervise: bool = True,
        durability=None,
    ) -> "Topology":
        """Shard hosts on sockets (``repro serve-shard`` processes)."""
        return cls(
            kind="fabric",
            processes=processes,
            supervise=supervise,
            durability=durability,
        )

    @classmethod
    def replicated(
        cls,
        standbys: int = 1,
        *,
        durability,
        sync: str = "async",
        standby_dirs: Optional[Sequence[Union[str, Path]]] = None,
        standby_fsync: str = "batch",
        ack_timeout: float = 30.0,
        auto_failover: bool = False,
        heartbeat_interval: float = 0.5,
        heartbeat_misses: int = 4,
        watchdogs: int = 1,
    ) -> "Topology":
        """A durable primary shipping its WAL to warm standbys.

        With ``auto_failover=True`` the service also runs a status
        listener and spawns ``watchdogs`` detached failover watchdogs:
        if this process dies, they elect the freshest standby and —
        with ``watchdogs > 1`` — promote it only after a strict
        majority of the fleet agrees, fenced by a monotone epoch the
        standby persists (``repro.replication.watchdog``).  Odd fleet
        sizes tolerate ``(watchdogs - 1) // 2`` partitioned members.
        """
        return cls(
            kind="replicated",
            standbys=standbys,
            sync=sync,
            durability=durability,
            standby_dirs=(
                None
                if standby_dirs is None
                else tuple(str(d) for d in standby_dirs)
            ),
            standby_fsync=standby_fsync,
            ack_timeout=ack_timeout,
            auto_failover=auto_failover,
            heartbeat_interval=heartbeat_interval,
            heartbeat_misses=heartbeat_misses,
            watchdogs=watchdogs,
        )

    # ------------------------------------------------------------------
    @classmethod
    def _from_legacy_kwargs(
        cls,
        *,
        durability=None,
        workers: int = 0,
        hosts: int = 0,
        supervise: bool = True,
        start_method: str = "spawn",
    ) -> "Topology":
        """The deprecation shim behind the old ``IngestService`` kwargs."""
        if workers and hosts:
            raise ValueError(
                "workers (pipe pool) and hosts (socket fabric) are "
                "mutually exclusive; pick one"
            )
        if workers:
            return cls.workers(
                workers, start_method=start_method, durability=durability
            )
        if hosts:
            return cls.fabric(
                hosts, supervise=supervise, durability=durability
            )
        return cls.in_process(durability=durability)
