"""Columnar micro-batching for the ingestion hot path.

The per-message server keeps one Python object per submission and pays
attribute/dispatch overhead per claim at finalise.  The service instead
lands every accepted claim directly into three preallocated NumPy
columns — user slot, object index, value — and emits a
:class:`~repro.truthdiscovery.streaming.ClaimBatch` whenever the buffer
fills.  Between a claim's arrival and its aggregation there is exactly
one array write; no per-claim Python objects survive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.truthdiscovery.streaming import ClaimBatch
from repro.utils.validation import ensure_int


class MicroBatcher:
    """Fixed-capacity columnar claim buffer emitting full batches.

    Parameters
    ----------
    max_batch:
        Claims per emitted batch.  The buffer is preallocated at this
        size; ``add`` fills it and returns completed batches as copies,
        so the buffer is immediately reusable.
    """

    def __init__(self, max_batch: int = 1024) -> None:
        self._capacity = ensure_int(max_batch, "max_batch", minimum=1)
        self._users = np.empty(self._capacity, dtype=np.int64)
        self._objects = np.empty(self._capacity, dtype=np.int64)
        self._values = np.empty(self._capacity, dtype=float)
        self._fill = 0
        self.batches_emitted = 0
        self.claims_buffered = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def pending(self) -> int:
        """Claims currently buffered, not yet emitted."""
        return self._fill

    # ------------------------------------------------------------------
    def add(
        self,
        user_slot: int,
        object_indices: np.ndarray,
        values: np.ndarray,
    ) -> list[ClaimBatch]:
        """Append one user's claims; return any batches that filled up."""
        objects = np.asarray(object_indices, dtype=np.int64)
        vals = np.asarray(values, dtype=float)
        return self.add_columns(
            np.full(objects.shape, user_slot, dtype=np.int64), objects, vals
        )

    def add_columns(
        self,
        user_slots: np.ndarray,
        object_indices: np.ndarray,
        values: np.ndarray,
    ) -> list[ClaimBatch]:
        """Append aligned claim columns; return any completed batches.

        Inputs longer than the remaining buffer space are split across
        consecutive batches, so arbitrarily large chunks are fine.
        """
        emitted: list[ClaimBatch] = []
        n = len(values)
        start = 0
        while n - start > 0:
            take = min(self._capacity - self._fill, n - start)
            stop = start + take
            lo, hi = self._fill, self._fill + take
            self._users[lo:hi] = user_slots[start:stop]
            self._objects[lo:hi] = object_indices[start:stop]
            self._values[lo:hi] = values[start:stop]
            self._fill = hi
            self.claims_buffered += take
            start = stop
            if self._fill == self._capacity:
                emitted.append(self._emit())
        return emitted

    def flush(self) -> Optional[ClaimBatch]:
        """Emit the partial batch (None when the buffer is empty)."""
        if self._fill == 0:
            return None
        return self._emit()

    # ------------------------------------------------------------------
    def _emit(self) -> ClaimBatch:
        batch = ClaimBatch(
            users=self._users[: self._fill].copy(),
            objects=self._objects[: self._fill].copy(),
            values=self._values[: self._fill].copy(),
        )
        self._fill = 0
        self.batches_emitted += 1
        return batch
