"""repro — Differentially Private Truth Discovery for Crowd Sensing Systems.

A full reproduction of Li et al., "Towards Differentially Private Truth
Discovery for Crowd Sensing Systems" (ICDCS 2020): the perturbation
mechanism (Algorithm 2), the truth discovery substrate (CRH, GTM, CATD,
naive baselines), the Section 4 theory, dataset generators standing in
for the paper's synthetic and indoor-floorplan evaluations, a simulated
crowd sensing system, and an experiment harness regenerating every
figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import ClaimMatrix, PrivateTruthDiscovery
>>> rng = np.random.default_rng(7)
>>> claims = ClaimMatrix(rng.normal(20.0, 2.0, size=(50, 12)))
>>> pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
>>> outcome = pipeline.run(claims, random_state=7)
>>> outcome.truths.shape
(12,)
"""

from repro.core import (
    PrivacyConfig,
    PrivateAggregationOutcome,
    PrivateTruthDiscovery,
    UtilityEvaluation,
)
from repro.privacy import (
    ExponentialVarianceGaussianMechanism,
    FixedGaussianMechanism,
    LDPGuarantee,
    LaplaceMechanism,
    PrivacyAccountant,
)
from repro.truthdiscovery import (
    CATD,
    CRH,
    GTM,
    ClaimMatrix,
    MeanAggregator,
    MedianAggregator,
    TruthDiscoveryMethod,
    TruthDiscoveryResult,
    available_methods,
    create_method,
)

__version__ = "1.0.0"

__all__ = [
    "CATD",
    "CRH",
    "ClaimMatrix",
    "ExponentialVarianceGaussianMechanism",
    "FixedGaussianMechanism",
    "GTM",
    "LDPGuarantee",
    "LaplaceMechanism",
    "MeanAggregator",
    "MedianAggregator",
    "PrivacyAccountant",
    "PrivacyConfig",
    "PrivateAggregationOutcome",
    "PrivateTruthDiscovery",
    "TruthDiscoveryMethod",
    "TruthDiscoveryResult",
    "UtilityEvaluation",
    "available_methods",
    "create_method",
    "__version__",
]
