"""Dataset persistence: claim matrices and dataset bundles on disk.

Formats:

* ``.npz`` — lossless round-trip of :class:`ClaimMatrix` /
  :class:`SyntheticDataset` (values, mask, ids, metadata);
* ``.csv`` — interoperable long format ``user_id,object_id,value`` for
  exchanging claims with external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.synthetic import SyntheticDataset
from repro.truthdiscovery.claims import ClaimMatrix

PathLike = Union[str, Path]


def save_claims_npz(path: PathLike, claims: ClaimMatrix) -> None:
    """Write a :class:`ClaimMatrix` to ``path`` (.npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        values=claims.values,
        mask=claims.mask,
        user_ids=json.dumps(list(claims.user_ids)),
        object_ids=json.dumps(list(claims.object_ids)),
    )


def load_claims_npz(path: PathLike) -> ClaimMatrix:
    """Read a :class:`ClaimMatrix` written by :func:`save_claims_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        return ClaimMatrix(
            values=data["values"],
            mask=data["mask"],
            user_ids=tuple(json.loads(str(data["user_ids"]))),
            object_ids=tuple(json.loads(str(data["object_ids"]))),
        )


def save_dataset_npz(path: PathLike, dataset: SyntheticDataset) -> None:
    """Write a :class:`SyntheticDataset` bundle to ``path`` (.npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        values=dataset.claims.values,
        mask=dataset.claims.mask,
        user_ids=json.dumps(list(dataset.claims.user_ids)),
        object_ids=json.dumps(list(dataset.claims.object_ids)),
        ground_truth=dataset.ground_truth,
        error_variances=dataset.error_variances,
        lambda1=np.array(
            dataset.lambda1 if dataset.lambda1 is not None else np.nan
        ),
    )


def load_dataset_npz(path: PathLike) -> SyntheticDataset:
    """Read a :class:`SyntheticDataset` written by :func:`save_dataset_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        claims = ClaimMatrix(
            values=data["values"],
            mask=data["mask"],
            user_ids=tuple(json.loads(str(data["user_ids"]))),
            object_ids=tuple(json.loads(str(data["object_ids"]))),
        )
        lambda1 = float(data["lambda1"])
        return SyntheticDataset(
            claims=claims,
            ground_truth=data["ground_truth"],
            error_variances=data["error_variances"],
            lambda1=None if np.isnan(lambda1) else lambda1,
        )


def save_claims_csv(path: PathLike, claims: ClaimMatrix) -> None:
    """Write observed claims as ``user_id,object_id,value`` rows."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user_id", "object_id", "value"])
        for user_id, object_id, value in claims.to_records():
            writer.writerow([user_id, object_id, repr(value)])


def load_claims_csv(path: PathLike) -> ClaimMatrix:
    """Read claims from :func:`save_claims_csv` output.

    Ids are kept as strings (CSV has no type information); numeric ids
    written by :func:`save_claims_csv` therefore round-trip as strings —
    use the .npz format when id types matter.
    """
    path = Path(path)
    records = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["user_id", "object_id", "value"]:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected "
                "['user_id', 'object_id', 'value']"
            )
        for row in reader:
            if len(row) != 3:
                raise ValueError(f"malformed CSV row: {row!r}")
            records.append((row[0], row[1], float(row[2])))
    if not records:
        raise ValueError(f"no claims found in {path}")
    return ClaimMatrix.from_records(records)
